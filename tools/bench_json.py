#!/usr/bin/env python3
"""Run the benchmark suite and merge results into one JSON artifact.

Runs every `bench_*` binary under the build directory with
`--benchmark_format=json` and merges the outputs into a single file,
`BENCH_<date>.json` at the repo root by default. The merged document
keeps one machine `context` (they are identical across binaries on one
host) and groups the per-benchmark entries by binary:

    {
      "date": "2026-08-06",
      "context": { ...google-benchmark context of the first binary... },
      "benchmarks": {
        "bench_coding": [ {"name": ..., "real_time": ...}, ... ],
        ...
      }
    }

Usage:
    python3 tools/bench_json.py                      # full suite
    python3 tools/bench_json.py --only bench_coding,bench_collation
    python3 tools/bench_json.py --benchmark-filter 'Varint' --out /tmp/b.json

Exit status: 0 when every selected binary ran and parsed, 1 otherwise
(partial results are still written so a long run is never wasted).
"""

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path


def find_bench_binaries(build_dir: Path):
    bench_dir = build_dir / "bench"
    if not bench_dir.is_dir():
        return []
    binaries = []
    for path in sorted(bench_dir.iterdir()):
        if path.name.startswith("bench_") and path.is_file():
            # Skip CMake build byproducts; binaries have the exec bit.
            if path.stat().st_mode & 0o111:
                binaries.append(path)
    return binaries


def run_one(binary: Path, benchmark_filter: str, timeout_s: int):
    cmd = [str(binary), "--benchmark_format=json"]
    if benchmark_filter:
        cmd.append(f"--benchmark_filter={benchmark_filter}")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout_s
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary.name} exited {proc.returncode}: {proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--build-dir",
        default="build",
        help="CMake build directory holding bench/ (default: build)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="Output path (default: BENCH_<date>.json at the repo root)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="Comma-separated binary names to run (default: all bench_*)",
    )
    parser.add_argument(
        "--benchmark-filter",
        default=None,
        help="Regex forwarded to every binary as --benchmark_filter",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=1800,
        help="Per-binary timeout in seconds (default: 1800)",
    )
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir

    binaries = find_bench_binaries(build_dir)
    if args.only:
        wanted = {name.strip() for name in args.only.split(",")}
        binaries = [b for b in binaries if b.name in wanted]
        missing = wanted - {b.name for b in binaries}
        if missing:
            print(f"error: no such bench binaries: {sorted(missing)}",
                  file=sys.stderr)
            return 1
    if not binaries:
        print(f"error: no bench_* binaries under {build_dir}/bench "
              "(build the repo first)", file=sys.stderr)
        return 1

    date = datetime.date.today().isoformat()
    out_path = Path(args.out) if args.out else root / f"BENCH_{date}.json"

    merged = {"date": date, "context": None, "benchmarks": {}}
    failures = []
    for binary in binaries:
        print(f"running {binary.name} ...", flush=True)
        try:
            doc = run_one(binary, args.benchmark_filter, args.timeout)
        except (RuntimeError, subprocess.TimeoutExpired,
                json.JSONDecodeError) as err:
            print(f"  FAILED: {err}", file=sys.stderr)
            failures.append(binary.name)
            continue
        if merged["context"] is None:
            merged["context"] = doc.get("context")
        merged["benchmarks"][binary.name] = doc.get("benchmarks", [])
        print(f"  {len(merged['benchmarks'][binary.name])} benchmarks")

    out_path.write_text(json.dumps(merged, indent=1) + "\n")
    total = sum(len(v) for v in merged["benchmarks"].values())
    print(f"wrote {out_path} ({total} benchmarks from "
          f"{len(merged['benchmarks'])} binaries)")
    if failures:
        print(f"error: {len(failures)} binaries failed: {failures}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
