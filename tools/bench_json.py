#!/usr/bin/env python3
"""Run the benchmark suite and merge results into one JSON artifact.

Runs every `bench_*` binary under the build directory with
`--benchmark_format=json` and merges the outputs into a single file,
`BENCH_<date>.json` at the repo root by default. The merged document
keeps one machine `context` (they are identical across binaries on one
host) and groups the per-benchmark entries by binary:

    {
      "date": "2026-08-06",
      "context": { ...google-benchmark context of the first binary... },
      "benchmarks": {
        "bench_coding": [ {"name": ..., "real_time": ...}, ... ],
        ...
      }
    }

With `--diff BASELINE.json`, the freshly merged results are also
compared against a previous artifact: every benchmark present in both
files is matched by (binary, name) and its real_time delta reported
when it moved more than `--diff-threshold` percent (default 10) in
either direction. The diff is a report, not a gate — timing noise on
shared CI runners would make a hard threshold flaky — so it never
changes the exit status.

Usage:
    python3 tools/bench_json.py                      # full suite
    python3 tools/bench_json.py --only bench_coding,bench_collation
    python3 tools/bench_json.py --benchmark-filter 'Varint' --out /tmp/b.json
    python3 tools/bench_json.py --diff BENCH_2026-08-06.json

Exit status: 0 when every selected binary ran and parsed, 1 otherwise
(partial results are still written so a long run is never wasted).
"""

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path


def find_bench_binaries(build_dir: Path):
    bench_dir = build_dir / "bench"
    if not bench_dir.is_dir():
        return []
    binaries = []
    for path in sorted(bench_dir.iterdir()):
        if path.name.startswith("bench_") and path.is_file():
            # Skip CMake build byproducts; binaries have the exec bit.
            if path.stat().st_mode & 0o111:
                binaries.append(path)
    return binaries


def run_one(binary: Path, benchmark_filter: str, timeout_s: int):
    cmd = [str(binary), "--benchmark_format=json"]
    if benchmark_filter:
        cmd.append(f"--benchmark_filter={benchmark_filter}")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout_s
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary.name} exited {proc.returncode}: {proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def diff_against_baseline(merged, baseline_path: Path, threshold_pct: float):
    """Prints real_time deltas beyond the threshold. Report-only."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"diff: cannot read baseline {baseline_path}: {err}",
              file=sys.stderr)
        return
    base_times = {}
    for binary, entries in baseline.get("benchmarks", {}).items():
        for entry in entries:
            if "real_time" in entry and "name" in entry:
                base_times[(binary, entry["name"])] = entry["real_time"]

    moved = []
    compared = 0
    for binary, entries in merged["benchmarks"].items():
        for entry in entries:
            key = (binary, entry.get("name"))
            base = base_times.get(key)
            now = entry.get("real_time")
            if base is None or now is None or base <= 0:
                continue
            compared += 1
            delta_pct = (now - base) / base * 100.0
            if abs(delta_pct) > threshold_pct:
                moved.append((delta_pct, binary, entry["name"], base, now))

    date = baseline.get("date", "?")
    print(f"diff vs {baseline_path.name} (baseline date {date}): "
          f"{compared} comparable benchmarks, {len(moved)} moved more than "
          f"{threshold_pct:g}%")
    for delta_pct, binary, name, base, now in sorted(moved, reverse=True):
        direction = "slower" if delta_pct > 0 else "faster"
        print(f"  {binary}/{name}: {base:.0f} -> {now:.0f} ns "
              f"({abs(delta_pct):.1f}% {direction})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--build-dir",
        default="build",
        help="CMake build directory holding bench/ (default: build)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="Output path (default: BENCH_<date>.json at the repo root)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="Comma-separated binary names to run (default: all bench_*)",
    )
    parser.add_argument(
        "--benchmark-filter",
        default=None,
        help="Regex forwarded to every binary as --benchmark_filter",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=1800,
        help="Per-binary timeout in seconds (default: 1800)",
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="BASELINE",
        help="Previous merged artifact to compare real_time against "
             "(report-only, never affects the exit status)",
    )
    parser.add_argument(
        "--diff-threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="Report benchmarks whose real_time moved more than PCT "
             "percent vs the --diff baseline (default: 10)",
    )
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir

    binaries = find_bench_binaries(build_dir)
    if args.only:
        wanted = {name.strip() for name in args.only.split(",")}
        binaries = [b for b in binaries if b.name in wanted]
        missing = wanted - {b.name for b in binaries}
        if missing:
            print(f"error: no such bench binaries: {sorted(missing)}",
                  file=sys.stderr)
            return 1
    if not binaries:
        print(f"error: no bench_* binaries under {build_dir}/bench "
              "(build the repo first)", file=sys.stderr)
        return 1

    date = datetime.date.today().isoformat()
    out_path = Path(args.out) if args.out else root / f"BENCH_{date}.json"

    merged = {"date": date, "context": None, "benchmarks": {}}
    failures = []
    for binary in binaries:
        print(f"running {binary.name} ...", flush=True)
        try:
            doc = run_one(binary, args.benchmark_filter, args.timeout)
        except (RuntimeError, subprocess.TimeoutExpired,
                json.JSONDecodeError) as err:
            print(f"  FAILED: {err}", file=sys.stderr)
            failures.append(binary.name)
            continue
        if merged["context"] is None:
            merged["context"] = doc.get("context")
        merged["benchmarks"][binary.name] = doc.get("benchmarks", [])
        print(f"  {len(merged['benchmarks'][binary.name])} benchmarks")

    out_path.write_text(json.dumps(merged, indent=1) + "\n")
    total = sum(len(v) for v in merged["benchmarks"].values())
    print(f"wrote {out_path} ({total} benchmarks from "
          f"{len(merged['benchmarks'])} binaries)")
    if args.diff:
        diff_against_baseline(merged, Path(args.diff), args.diff_threshold)
    if failures:
        print(f"error: {len(failures)} binaries failed: {failures}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
