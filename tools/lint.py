#!/usr/bin/env python3
"""Repo-invariant checker for authidx (see docs/TOOLING.md).

Enforces the rules clang-tidy cannot express:

  1. Include-guard hygiene: every header under src/authidx/ carries the
     canonical guard derived from its path (AUTHIDX_COMMON_STATUS_H_ for
     src/authidx/common/status.h), with matching #ifndef/#define and a
     trailing "#endif  // GUARD" comment.
  2. Header hygiene: no `using namespace` at namespace scope in headers,
     no tabs, no trailing whitespace in src/.
  3. No `assert(` in library code (src/authidx/): invariants must use
     AUTHIDX_INTERNAL_CHECK, which stays active under NDEBUG.
  4. Build completeness: every .cc under src/authidx/ is listed in
     src/CMakeLists.txt (an unlisted file silently never builds).
  5. No std::cout/std::cerr writes in library code; user-facing output
     belongs in examples/. (std::cerr is allowed in status.cc's abort
     helpers via the explicit allowlist below.)
  6. Contract-surface doc comments: every public declaration in
     src/authidx/obs/ and src/authidx/net/ headers carries a `///` doc
     comment — the obs API is the contract dashboards are built on, and
     the net API is the contract remote clients are built on (its
     opcode/status tables additionally doc-sync against
     docs/PROTOCOL.md via tests/net_protocol_test.cc). Covers
     metrics.h, trace.h, log.h, slowlog.h, http_server.h, protocol.h,
     server.h, client.h. Defaulted/deleted special members and
     enumerators are exempt (nothing to document).
  7. Markdown link integrity: every intra-repo link target in tracked
     .md files must exist (broken pointers rot fastest in docs).
  8. Lock-protocol hygiene: raw std::mutex / std::shared_mutex /
     std::condition_variable are banned in src/ outside
     common/mutex.h — library code must use the annotated Mutex /
     SharedMutex / CondVar wrappers so Clang Thread Safety Analysis
     (the thread-safety preset) can check the lock protocol. Every
     Mutex/SharedMutex member declared in a src/ header must have at
     least one AUTHIDX_GUARDED_BY sibling referencing it, or carry a
     waiver comment containing "unguarded" on the lines above it
     explaining why nothing is guarded (e.g. it only serializes calls).

Exit status: 0 when clean, 1 when any invariant is violated.
Run from the repo root (or pass --root): python3 tools/lint.py
Docs-only subset (checks 6–7, used by the CI docs job):
python3 tools/lint.py --docs
"""

import argparse
import re
import sys
from pathlib import Path

# Files allowed to bypass specific rules, with the reason recorded here.
ASSERT_ALLOWLIST: set = set()  # No exceptions: use AUTHIDX_INTERNAL_CHECK.
STREAM_ALLOWLIST = {
    # CheckOkFailed/InternalCheckFailed write to stderr via fprintf, not
    # iostreams; nothing currently needs an exception. Kept for future use.
}


def iter_source_files(root: Path, subdir: str, suffixes=(".h", ".cc")):
    base = root / subdir
    for path in sorted(base.rglob("*")):
        if path.suffix in suffixes and path.is_file():
            yield path


def expected_guard(root: Path, header: Path) -> str:
    rel = header.relative_to(root / "src")
    return re.sub(r"[^A-Za-z0-9]", "_", str(rel)).upper() + "_"


def check_include_guards(root: Path, errors: list) -> None:
    for header in iter_source_files(root, "src/authidx", suffixes=(".h",)):
        rel = header.relative_to(root)
        text = header.read_text()
        lines = text.splitlines()
        guard = expected_guard(root, header)

        ifndef = f"#ifndef {guard}"
        define = f"#define {guard}"
        endif = f"#endif  // {guard}"

        code_lines = [
            (i, l) for i, l in enumerate(lines, 1)
            if l.strip() and not l.lstrip().startswith("//")
        ]
        if not code_lines:
            errors.append(f"{rel}:1: empty header")
            continue
        first_no, first = code_lines[0]
        if first.strip() != ifndef:
            errors.append(
                f"{rel}:{first_no}: first directive must be '{ifndef}' "
                f"(found {first.strip()!r})")
            continue
        second_no, second = code_lines[1]
        if second.strip() != define:
            errors.append(
                f"{rel}:{second_no}: '{ifndef}' must be followed by "
                f"'{define}' (found {second.strip()!r})")
        last_no, last = code_lines[-1]
        if last.strip() != endif:
            errors.append(
                f"{rel}:{last_no}: header must end with '{endif}' "
                f"(found {last.strip()!r})")


def check_header_hygiene(root: Path, errors: list) -> None:
    for path in iter_source_files(root, "src/authidx"):
        rel = path.relative_to(root)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "\t" in line:
                errors.append(f"{rel}:{lineno}: tab character")
            if line != line.rstrip():
                errors.append(f"{rel}:{lineno}: trailing whitespace")
            if path.suffix == ".h" and re.search(
                    r"^\s*using\s+namespace\s", line):
                errors.append(
                    f"{rel}:{lineno}: 'using namespace' in a header "
                    "leaks into every includer")


def check_no_assert(root: Path, errors: list) -> None:
    pattern = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
    for path in iter_source_files(root, "src/authidx"):
        rel = path.relative_to(root)
        if str(rel) in ASSERT_ALLOWLIST:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("//", 1)[0]
            if "static_assert" in stripped:
                stripped = stripped.replace("static_assert", "")
            if pattern.search(stripped):
                errors.append(
                    f"{rel}:{lineno}: assert() compiles out under NDEBUG; "
                    "use AUTHIDX_INTERNAL_CHECK")


def check_cc_listed(root: Path, errors: list) -> None:
    cmake = (root / "src/CMakeLists.txt").read_text()
    listed = set(re.findall(r"authidx/[\w/]+\.cc", cmake))
    for path in iter_source_files(root, "src/authidx", suffixes=(".cc",)):
        rel_src = path.relative_to(root / "src")
        if str(rel_src) not in listed:
            errors.append(
                f"{path.relative_to(root)}:1: not listed in "
                "src/CMakeLists.txt — it will never be compiled")


def check_no_cout(root: Path, errors: list) -> None:
    pattern = re.compile(r"std::(cout|cerr)\b")
    for subdir in ("src/authidx", "tests", "bench"):
        for path in iter_source_files(root, subdir):
            rel = path.relative_to(root)
            if str(rel) in STREAM_ALLOWLIST:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("//", 1)[0]
                m = pattern.search(stripped)
                if m:
                    errors.append(
                        f"{rel}:{lineno}: std::{m.group(1)} outside "
                        "examples/ — return a Status or use the logging "
                        "seam instead")


def check_obs_doc_comments(root: Path, errors: list) -> None:
    """Public declarations in obs/net headers must carry /// comments."""
    exempt = re.compile(r"=\s*(default|delete)\s*;?\s*$")
    opener = re.compile(
        r"^(class|struct)\s+(\w+\s+)*\w+\s*(final\s*)?({|$)")
    headers = [
        *iter_source_files(root, "src/authidx/obs", suffixes=(".h",)),
        *iter_source_files(root, "src/authidx/net", suffixes=(".h",)),
    ]
    for header in headers:
        rel = header.relative_to(root)
        # Each stack entry is the kind of the enclosing brace scope:
        # 'ns' (namespace), 'pub'/'priv' (class body by current access),
        # 'enum', or 'other' (function bodies, initializers).
        stack: list = []
        prev_doc = False
        continuation = False
        for lineno, raw in enumerate(header.read_text().splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                prev_doc = False
                continue
            if line.startswith("///"):
                prev_doc = True
                continue
            if line.startswith("//"):
                continue  # Plain comments neither document nor reset.
            if line in ("public:", "protected:", "private:"):
                if stack and stack[-1] in ("pub", "priv"):
                    stack[-1] = "pub" if line == "public:" else "priv"
                prev_doc = False
                continue
            if line.startswith("}"):
                if stack:
                    stack.pop()
                prev_doc = False
                continuation = False
                continue

            scope = stack[-1] if stack else None
            documented_scope = scope == "ns" or scope == "pub"
            needs_doc = (documented_scope and not continuation
                         and not exempt.search(line))
            if needs_doc and not prev_doc:
                errors.append(
                    f"{rel}:{lineno}: public declaration without a /// "
                    "doc comment (rule 6: the obs API is documented)")

            # Maintain scope for the next line. A type nested in an
            # undocumented scope (private section, function body) is
            # itself undocumented.
            if line.endswith("{"):
                if line.startswith("namespace"):
                    stack.append("ns")
                elif line.startswith("enum"):
                    stack.append("enum")
                elif opener.match(line) and documented_scope:
                    stack.append("priv" if line.startswith("class")
                                 else "pub")
                else:
                    stack.append("other")
            continuation = not line.endswith((";", "{", "}", ":"))
            prev_doc = False


LOCK_WRAPPER_HEADER = "src/authidx/common/mutex.h"
RAW_LOCK_PATTERN = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b")
LOCK_MEMBER_PATTERN = re.compile(
    r"^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+(\w+)\s*;")


def check_lock_protocol(root: Path, errors: list) -> None:
    """Annotated wrappers only; every lock member guards something."""
    for path in iter_source_files(root, "src/authidx"):
        rel = path.relative_to(root)
        if str(rel) == LOCK_WRAPPER_HEADER:
            continue  # The one place allowed to touch the std types.
        text = path.read_text()
        lines = text.splitlines()
        for lineno, line in enumerate(lines, 1):
            stripped = line.split("//", 1)[0]
            m = RAW_LOCK_PATTERN.search(stripped)
            if m:
                errors.append(
                    f"{rel}:{lineno}: raw std::{m.group(1)} in library "
                    "code — use the annotated wrappers in common/mutex.h "
                    "so the thread-safety analysis sees the lock (rule 8)")
        if path.suffix != ".h":
            continue
        for lineno, line in enumerate(lines, 1):
            m = LOCK_MEMBER_PATTERN.match(line.split("//", 1)[0])
            if not m:
                continue
            name = m.group(1)
            if f"AUTHIDX_GUARDED_BY({name})" in text:
                continue
            context = "\n".join(lines[max(0, lineno - 7):lineno])
            if "unguarded" in context.lower():
                continue  # Waiver comment explains why nothing is guarded.
            errors.append(
                f"{rel}:{lineno}: lock member '{name}' has no "
                f"AUTHIDX_GUARDED_BY({name}) sibling and no 'unguarded' "
                "waiver comment above it (rule 8)")


MD_SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def check_markdown_links(root: Path, errors: list) -> None:
    """Intra-repo markdown link targets must exist."""
    link = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    md_files = [p for p in sorted(root.rglob("*.md"))
                if not any(part.startswith((".", "build"))
                           for part in p.relative_to(root).parts)]
    for path in md_files:
        rel = path.relative_to(root)
        in_fence = False
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in link.findall(line):
                if target.startswith(MD_SKIP_SCHEMES):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = (path.parent / target_path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{rel}:{lineno}: broken intra-repo link "
                        f"'{target}'")


CHECKS = (
    check_include_guards,
    check_header_hygiene,
    check_no_assert,
    check_cc_listed,
    check_no_cout,
    check_obs_doc_comments,
    check_markdown_links,
    check_lock_protocol,
)

DOCS_CHECKS = (
    check_obs_doc_comments,
    check_markdown_links,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--docs", action="store_true",
        help="run only the documentation checks (obs doc comments, "
             "markdown link integrity)")
    args = parser.parse_args()

    errors: list = []
    for check in (DOCS_CHECKS if args.docs else CHECKS):
        check(args.root, errors)

    for err in errors:
        print(err)
    if errors:
        print(f"lint.py: {len(errors)} problem(s) found", file=sys.stderr)
        return 1
    print("lint.py: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
