#include "authidx/format/kwic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "authidx/parse/tsv.h"
#include "authidx/text/collate.h"
#include "authidx/workload/sample_data.h"

namespace authidx::format {
namespace {

std::unique_ptr<core::AuthorIndex> SmallCatalog() {
  const char* tsv =
      "Minow, Martha\tAll in the Family\t95:275 (1992)\n"
      "Lewin, Jeff L.\tThe Silent Revolution in Nuisance Law\t92:235 (1989)\n"
      "Olson, Dale P.\tThin Copyrights\t95:147 (1992)\n";
  auto entries = ParseTsv(tsv);
  EXPECT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

TEST(KwicTest, EveryContentWordBecomesALine) {
  auto catalog = SmallCatalog();
  auto lines = BuildKwicIndex(*catalog);
  // Content words: all, family | silent, revolution, nuisance, law |
  // thin, copyrights. ("in", "the" are stopwords/short.)
  std::vector<std::string> keywords;
  for (const auto& line : lines) {
    keywords.push_back(line.keyword);
  }
  EXPECT_EQ(keywords,
            (std::vector<std::string>{"all", "copyrights", "family", "law",
                                      "nuisance", "revolution", "silent",
                                      "thin"}));
}

TEST(KwicTest, KeywordsSortedByCollation) {
  auto catalog = SmallCatalog();
  auto lines = BuildKwicIndex(*catalog);
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(text::Compare(lines[i - 1].keyword, lines[i].keyword), 0);
  }
}

TEST(KwicTest, KeywordIsCapitalizedWithContext) {
  auto catalog = SmallCatalog();
  KwicOptions options;
  auto lines = BuildKwicIndex(*catalog, options);
  // Find the "revolution" line: left context ends with "The Silent",
  // keyword upcased, right context follows.
  bool found = false;
  for (const auto& line : lines) {
    if (line.keyword == "revolution") {
      found = true;
      EXPECT_NE(line.text.find("The Silent REVOLUTION in Nuisance"),
                std::string::npos)
          << line.text;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KwicTest, ContextRespectsWidths) {
  auto catalog = SmallCatalog();
  KwicOptions options;
  options.left_width = 10;
  options.right_width = 12;
  for (const auto& line : BuildKwicIndex(*catalog, options)) {
    EXPECT_LE(line.text.size(), options.left_width + 1 + options.right_width)
        << line.text;
    // Left part is right-aligned: the keyword column starts at
    // left_width + 1.
    EXPECT_GE(line.text.size(), options.left_width + 1);
  }
}

TEST(KwicTest, MinKeywordLengthFilters) {
  auto catalog = SmallCatalog();
  KwicOptions options;
  options.min_keyword_length = 7;
  auto lines = BuildKwicIndex(*catalog, options);
  for (const auto& line : lines) {
    EXPECT_GE(line.keyword.size(), 7u);
  }
  EXPECT_FALSE(lines.empty());  // "copyrights", "revolution", "nuisance".
}

TEST(KwicTest, RenderedIndexCarriesCitations) {
  auto catalog = SmallCatalog();
  std::string rendered = KwicIndexToString(*catalog);
  EXPECT_NE(rendered.find("95:147 (1992)"), std::string::npos);
  EXPECT_NE(rendered.find("92:235 (1989)"), std::string::npos);
  // One line per KWIC entry.
  EXPECT_EQ(static_cast<size_t>(
                std::count(rendered.begin(), rendered.end(), '\n')),
            BuildKwicIndex(*catalog).size());
}

TEST(KwicTest, SampleCorpusScale) {
  auto entries = authidx::workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto lines = BuildKwicIndex(*catalog);
  // Far more keyword lines than entries (titles average ~8 words).
  EXPECT_GT(lines.size(), catalog->entry_count() * 3);
  // "coal" appears in many titles of the sample.
  size_t coal_lines = 0;
  for (const auto& line : lines) {
    coal_lines += (line.keyword == "coal");
  }
  EXPECT_GE(coal_lines, 5u);
}

TEST(KwicTest, EmptyCatalog) {
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(BuildKwicIndex(*catalog).empty());
  EXPECT_EQ(KwicIndexToString(*catalog), "");
}

}  // namespace
}  // namespace authidx::format
