#include <gtest/gtest.h>

#include "authidx/format/subject_index.h"
#include <set>
#include "authidx/format/title_index.h"
#include "authidx/parse/tsv.h"
#include "authidx/text/collate.h"
#include "authidx/workload/sample_data.h"

namespace authidx::format {
namespace {

std::unique_ptr<core::AuthorIndex> SmallCatalog() {
  const char* tsv =
      "Ausness, Richard C.\tAdministering State Water Resources: The Need "
      "for Long-Range Planning\t73:209 (1971)\tMaloney, Frank E.\n"
      "Maloney, Frank E.\tAdministering State Water Resources: The Need "
      "for Long-Range Planning\t73:209 (1971)\tAusness, Richard C.\n"
      "Minow, Martha\tAll in the Family\t95:275 (1992)\n"
      "Olson, Dale P.\tThin Copyrights\t95:147 (1992)\n"
      "McGinley, Patrick C.\tThe Prohibition of Strip Mining\t78:445 (1976)\n"
      "Neely, Richard\tA Theory of Taxation\t79:1 (1976)\n";
  auto entries = ParseTsv(tsv);
  EXPECT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

TEST(TitleIndexTest, CoauthoredWorkAppearsOnceWithFullByline) {
  auto catalog = SmallCatalog();
  auto rows = BuildTitleIndex(*catalog);
  // 6 entries but 5 distinct works (the water-resources article twice).
  ASSERT_EQ(rows.size(), 5u);
  size_t water = SIZE_MAX;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].title.rfind("Administering", 0) == 0) {
      water = i;
    }
  }
  ASSERT_NE(water, SIZE_MAX);
  EXPECT_EQ(rows[water].byline,
            "Ausness, Richard C.; Maloney, Frank E.");
  EXPECT_EQ(rows[water].citation, (Citation{73, 209, 1971}));
}

TEST(TitleIndexTest, LeadingArticlesIgnoredInOrdering) {
  auto catalog = SmallCatalog();
  auto rows = BuildTitleIndex(*catalog);
  std::vector<std::string> titles;
  for (const auto& row : rows) {
    titles.push_back(row.title);
  }
  // Order keys: administering, all, prohibition(The), theory(A), thin.
  std::vector<std::string> expected = {
      "Administering State Water Resources: The Need for Long-Range "
      "Planning",
      "All in the Family",
      "The Prohibition of Strip Mining",
      "A Theory of Taxation",
      "Thin Copyrights",
  };
  EXPECT_EQ(titles, expected);
}

TEST(TitleIndexTest, TypesetPagesCarryHeadingAndRows) {
  auto catalog = SmallCatalog();
  TitleIndexOptions options;
  auto pages = TypesetTitleIndex(*catalog, options);
  ASSERT_FALSE(pages.empty());
  const std::string& text = pages[0].text;
  EXPECT_NE(text.find("TITLE INDEX"), std::string::npos);
  EXPECT_NE(text.find("Thin Copyrights"), std::string::npos);
  EXPECT_NE(text.find("95:147 (1992)"), std::string::npos);
  // Coauthor byline wrapped into the author column.
  EXPECT_NE(text.find("Ausness, Richard C.;"), std::string::npos);
}

TEST(TitleIndexTest, SampleCorpusDedupCount) {
  auto entries = authidx::workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto rows = BuildTitleIndex(*catalog);
  // Every distinct (title, citation) exactly once, ordered by collation.
  EXPECT_LE(rows.size(), catalog->entry_count());
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].sort_key.compare(rows[i].sort_key), 0);
  }
  std::set<std::pair<std::string, std::string>> distinct;
  for (const auto& row : rows) {
    EXPECT_TRUE(
        distinct.emplace(row.title, row.citation.ToString()).second);
  }
}

TEST(SubjectIndexTest, EntriesFileUnderMatchingHeadings) {
  auto catalog = SmallCatalog();
  auto sections =
      BuildSubjectIndex(*catalog, SubjectVocabulary::LegalDefault());
  auto find = [&](std::string_view heading) -> const SubjectSection* {
    for (const auto& section : sections) {
      if (section.heading == heading) {
        return &section;
      }
    }
    return nullptr;
  };
  const SubjectSection* mining = find("COAL AND MINING LAW");
  ASSERT_NE(mining, nullptr);
  ASSERT_EQ(mining->entries.size(), 1u);
  EXPECT_EQ(catalog->GetEntry(mining->entries[0])->title,
            "The Prohibition of Strip Mining");
  const SubjectSection* tax = find("TAXATION");
  ASSERT_NE(tax, nullptr);
  EXPECT_EQ(tax->entries.size(), 1u);
  // "Thin Copyrights" and "All in the Family" match nothing:
  // both land in MISCELLANEOUS (with "family" though... "family" is a
  // DOMESTIC RELATIONS term).
  const SubjectSection* family = find("DOMESTIC RELATIONS");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(catalog->GetEntry(family->entries[0])->title,
            "All in the Family");
  const SubjectSection* misc = find("MISCELLANEOUS");
  ASSERT_NE(misc, nullptr);
  EXPECT_EQ(catalog->GetEntry(misc->entries[0])->title, "Thin Copyrights");
}

TEST(SubjectIndexTest, MultiHeadingAssignmentAndDedup) {
  auto catalog = SmallCatalog();
  auto sections =
      BuildSubjectIndex(*catalog, SubjectVocabulary::LegalDefault());
  // The water-resources article ("Administering State Water Resources")
  // matches ENVIRONMENTAL LAW ("water") — and appears once there despite
  // two coauthor entries.
  for (const auto& section : sections) {
    size_t count = 0;
    for (EntryId id : section.entries) {
      count += catalog->GetEntry(id)->title.rfind("Administering", 0) == 0;
    }
    EXPECT_LE(count, 1u) << section.heading;
  }
}

TEST(SubjectIndexTest, SectionsSortedAndNonEmpty) {
  auto entries = authidx::workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto sections =
      BuildSubjectIndex(*catalog, SubjectVocabulary::LegalDefault());
  ASSERT_GT(sections.size(), 5u);  // The sample spans many subjects.
  for (const auto& section : sections) {
    EXPECT_FALSE(section.entries.empty()) << section.heading;
  }
  // Alphabetical except the trailing fallback.
  for (size_t i = 2; i < sections.size(); ++i) {
    if (sections[i].heading == "MISCELLANEOUS") {
      continue;
    }
    EXPECT_LT(text::Compare(sections[i - 1].heading, sections[i].heading),
              0);
  }
  // Coal heading must be rich in this corpus.
  for (const auto& section : sections) {
    if (section.heading == "COAL AND MINING LAW") {
      EXPECT_GE(section.entries.size(), 10u);
    }
  }
}

TEST(SubjectIndexTest, CustomVocabularyAndNoFallback) {
  auto catalog = SmallCatalog();
  SubjectVocabulary vocab;
  vocab.headings = {{"WATER LAW", {"water"}}};
  vocab.fallback_heading.clear();  // Drop unmatched entries.
  auto sections = BuildSubjectIndex(*catalog, vocab);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].heading, "WATER LAW");
  EXPECT_EQ(sections[0].entries.size(), 1u);
}

TEST(SubjectIndexTest, RenderedTextHasDotLeaders) {
  auto catalog = SmallCatalog();
  std::string rendered = SubjectIndexToString(
      *catalog, SubjectVocabulary::LegalDefault(), 70);
  EXPECT_NE(rendered.find("COAL AND MINING LAW"), std::string::npos);
  EXPECT_NE(rendered.find("... "), std::string::npos);
  EXPECT_NE(rendered.find("78:445 (1976)"), std::string::npos);
  // Lines stay within the width budget.
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) {
      end = rendered.size();
    }
    EXPECT_LE(end - start, 70u + 1);
    start = end + 1;
  }
}

TEST(EmptyCatalogTest, BothIndexesEmpty) {
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(BuildTitleIndex(*catalog).empty());
  EXPECT_TRUE(
      BuildSubjectIndex(*catalog, SubjectVocabulary::LegalDefault())
          .empty());
}

}  // namespace
}  // namespace authidx::format
