#include "authidx/text/distance.h"

#include <gtest/gtest.h>

#include <string>

#include "authidx/common/random.h"

namespace authidx::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("smith", "smyth"), 1u);
  EXPECT_EQ(Levenshtein("johnson", "jonson"), 1u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(DamerauTest, TranspositionsCountOnce) {
  EXPECT_EQ(DamerauLevenshtein("teh", "the"), 1u);
  EXPECT_EQ(Levenshtein("teh", "the"), 2u);
  EXPECT_EQ(DamerauLevenshtein("abcd", "abdc"), 1u);
  EXPECT_EQ(DamerauLevenshtein("ca", "ac"), 1u);
  EXPECT_EQ(DamerauLevenshtein("abc", "abc"), 0u);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  Random rng(31);
  for (int i = 0; i < 500; ++i) {
    std::string a, b;
    for (size_t j = rng.Uniform(10); j > 0; --j) {
      a += static_cast<char>('a' + rng.Uniform(4));
    }
    for (size_t j = rng.Uniform(10); j > 0; --j) {
      b += static_cast<char>('a' + rng.Uniform(4));
    }
    EXPECT_LE(DamerauLevenshtein(a, b), Levenshtein(a, b))
        << a << " vs " << b;
  }
}

TEST(BoundedTest, ExactWithinBudget) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedLevenshtein("same", "same", 0), 0u);
}

TEST(BoundedTest, CapsWhenOverBudget) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 2), 3u);  // max+1.
  EXPECT_EQ(BoundedLevenshtein("abcdefgh", "zzzzzzzz", 3), 4u);
  EXPECT_EQ(BoundedLevenshtein("short", "muchlongerstring", 2), 3u);
}

TEST(BoundedTest, WithinEditDistanceWrapper) {
  EXPECT_TRUE(WithinEditDistance("jonson", "johnson", 1));
  EXPECT_FALSE(WithinEditDistance("jonson", "johnsen", 1));
  EXPECT_TRUE(WithinEditDistance("jonson", "johnsen", 2));
}

// Property: bounded distance equals full distance whenever the full
// distance fits the budget, and max+1 otherwise.
class BoundedPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BoundedPropertyTest, AgreesWithFullDp) {
  const size_t budget = GetParam();
  Random rng(1000 + budget);
  for (int i = 0; i < 1000; ++i) {
    std::string a, b;
    for (size_t j = rng.Uniform(14); j > 0; --j) {
      a += static_cast<char>('a' + rng.Uniform(5));
    }
    for (size_t j = rng.Uniform(14); j > 0; --j) {
      b += static_cast<char>('a' + rng.Uniform(5));
    }
    size_t full = Levenshtein(a, b);
    size_t bounded = BoundedLevenshtein(a, b, budget);
    if (full <= budget) {
      EXPECT_EQ(bounded, full) << a << " vs " << b;
    } else {
      EXPECT_EQ(bounded, budget + 1) << a << " vs " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BoundedPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST(JaroWinklerTest, BoundsAndKnownPairs) {
  EXPECT_DOUBLE_EQ(JaroWinkler("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  double martha = JaroWinkler("martha", "marhta");
  EXPECT_NEAR(martha, 0.9611, 0.001);  // Classic example.
  double dixon = JaroWinkler("dixon", "dicksonx");
  EXPECT_NEAR(dixon, 0.8133, 0.005);
}

TEST(JaroWinklerTest, PrefixBoostOrdersCandidates) {
  // Shared prefix should beat same-distance suffix variation.
  double prefix_match = JaroWinkler("mcginley", "mcginlay");
  double scattered = JaroWinkler("mcginley", "acginlem");
  EXPECT_GT(prefix_match, scattered);
}

TEST(JaroWinklerTest, InUnitInterval) {
  Random rng(77);
  for (int i = 0; i < 500; ++i) {
    std::string a, b;
    for (size_t j = 1 + rng.Uniform(10); j > 0; --j) {
      a += static_cast<char>('a' + rng.Uniform(6));
    }
    for (size_t j = 1 + rng.Uniform(10); j > 0; --j) {
      b += static_cast<char>('a' + rng.Uniform(6));
    }
    double sim = JaroWinkler(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace authidx::text
