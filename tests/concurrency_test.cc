// Thread-safety stress tests for the storage engine and the catalog
// (run under the tsan preset in CI; see docs/ARCHITECTURE.md §threading).
//
// These tests are about *absence of races and hangs*, not timing: every
// assertion holds for any legal interleaving, including the fully
// serialized one a single-core machine produces.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authidx/common/strings.h"
#include "authidx/core/author_index.h"
#include "authidx/model/record.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

std::string FreshDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "/authidx_conc_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

uint64_t MetricValueOf(const StorageEngine& engine, std::string_view name) {
  obs::MetricsSnapshot snapshot = engine.metrics().Snapshot();
  const obs::MetricValue* metric = snapshot.Find(name);
  return metric != nullptr ? static_cast<uint64_t>(metric->counter) : 0;
}

// Env decorator whose file Sync takes ~1ms. On a single core this is
// what makes group commit observable: while the leader sleeps inside
// the WAL fsync, the other writer threads get scheduled and enqueue, so
// the next leader commits a multi-writer group.
class SlowSyncEnv final : public Env {
 public:
  explicit SlowSyncEnv(Env* base) : base_(base) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    AUTHIDX_ASSIGN_OR_RETURN(auto base, base_->NewWritableFile(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<SlowSyncFile>(std::move(base)));
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return base_->NewRandomAccessFile(path);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status WriteStringToFileSync(const std::string& path,
                               std::string_view data) override {
    return base_->WriteStringToFileSync(path, data);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return base_->CreateDirIfMissing(dir);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }

 private:
  class SlowSyncFile final : public WritableFile {
   public:
    explicit SlowSyncFile(std::unique_ptr<WritableFile> base)
        : base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
};

TEST(EngineConcurrencyTest, ParallelWritersAndReadersWithBackgroundWork) {
  std::string dir = FreshDir("rw");
  EngineOptions options;
  options.memtable_bytes = 16 * 1024;  // Force seals + flushes mid-run.
  options.l0_compaction_trigger = 4;   // And background compactions.
  auto opened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& engine = *opened;

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kKeysPerWriter = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> write_failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        std::string key = StringPrintf("w%d-key%05d", w, i);
        std::string value = StringPrintf("value-%d-%d", w, i);
        if (!engine->Put(key, value).ok()) {
          ++write_failures;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      uint64_t probe = static_cast<uint64_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        int w = static_cast<int>(probe % kWriters);
        int i = static_cast<int>(probe % kKeysPerWriter);
        probe = probe * 2862933555777941757ULL + 3037000493ULL;
        auto found = engine->Get(StringPrintf("w%d-key%05d", w, i));
        ASSERT_TRUE(found.ok()) << found.status();
        if (found->has_value()) {
          // A value, once visible, is exactly what its writer put.
          EXPECT_EQ(**found, StringPrintf("value-%d-%d", w, i));
        }
        // Iterators pin their own snapshot; stepping one while flushes
        // and compactions retire files underneath must stay valid.
        auto it = engine->NewIterator();
        it->SeekToFirst();
        if (it->Valid()) {
          it->Next();
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads[t].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_TRUE(engine->background_error().ok());
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      auto found = engine->Get(StringPrintf("w%d-key%05d", w, i));
      ASSERT_TRUE(found.ok()) << found.status();
      ASSERT_TRUE(found->has_value()) << "w" << w << " i" << i;
      EXPECT_EQ(**found, StringPrintf("value-%d-%d", w, i));
    }
  }
  EXPECT_GT(engine->stats().flushes, 0u);
  ASSERT_TRUE(engine->Close().ok());
}

TEST(EngineConcurrencyTest, MetricsAndIntegrityScansDuringWrites) {
  std::string dir = FreshDir("verify");
  EngineOptions options;
  options.memtable_bytes = 16 * 1024;
  // Compaction disabled: VerifyIntegrity scans files without the engine
  // lock, so a concurrent compaction may legally retire a table mid-scan
  // and surface as a transient per-file error. With flush-only
  // background work the store stays append-only and every scan is clean.
  options.l0_compaction_trigger = 1 << 20;
  auto opened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& engine = *opened;

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(
          engine->Put(StringPrintf("key%05d", i), std::string(100, 'v'))
              .ok());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  while (!stop.load(std::memory_order_relaxed)) {
    auto report = engine->VerifyIntegrity();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->corrupt_files, 0u);
    EXPECT_TRUE(report->manifest_status.ok()) << report->manifest_status;
    (void)engine->stats();
    (void)engine->metrics().Snapshot();
    EXPECT_FALSE(engine->degraded());
  }
  writer.join();
  ASSERT_TRUE(engine->Close().ok());
}

TEST(EngineConcurrencyTest, CloseRacesWithWritersFlushAndCompact) {
  std::string dir = FreshDir("close");
  EngineOptions options;
  options.memtable_bytes = 16 * 1024;
  options.l0_compaction_trigger = 4;
  auto opened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& engine = *opened;

  // Every operation racing Close must return definitively — OK if it got
  // in before the barrier, FailedPrecondition("engine closed") after —
  // and nothing may hang or crash.
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 300; ++i) {
        Status s = engine->Put(StringPrintf("w%d-%05d", w, i), "v");
        if (!s.ok()) {
          EXPECT_TRUE(s.IsFailedPrecondition()) << s;
          break;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      Status s = engine->Flush();
      if (!s.ok()) {
        EXPECT_TRUE(s.IsFailedPrecondition()) << s;
        break;
      }
    }
  });
  threads.emplace_back([&] {
    Status s = engine->Compact();
    if (!s.ok()) {
      EXPECT_TRUE(s.IsFailedPrecondition()) << s;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(engine->Close().ok());
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(engine->Put("after", "v").IsFailedPrecondition());

  // Everything that was acked before Close is durable across reopen.
  auto reopened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto report = (*reopened)->VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt_files, 0u);
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST(EngineConcurrencyTest, GroupCommitAmortizesSyncsAcrossWriters) {
  std::string dir = FreshDir("group");
  SlowSyncEnv slow_env(Env::Default());
  EngineOptions options;
  options.env = &slow_env;
  options.sync_writes = true;
  auto opened = StorageEngine::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& engine = *opened;

  constexpr int kWriters = 8;
  constexpr int kWritesEach = 25;
  constexpr uint64_t kTotalWrites = kWriters * kWritesEach;
  uint64_t syncs_before = MetricValueOf(*engine, "authidx_wal_syncs_total");
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kWritesEach; ++i) {
        ASSERT_TRUE(
            engine->Put(StringPrintf("w%d-%04d", w, i), "value").ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Every write went through group commit...
  EXPECT_EQ(MetricValueOf(*engine, "authidx_group_commit_writes_total"),
            kTotalWrites);
  uint64_t batches =
      MetricValueOf(*engine, "authidx_group_commit_batches_total");
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, kTotalWrites);
  // ...and with 8 writers queueing behind a deliberately slow fsync,
  // batching MUST have occurred: strictly fewer fsyncs than writes, and
  // exactly one fsync per commit group.
  uint64_t syncs =
      MetricValueOf(*engine, "authidx_wal_syncs_total") - syncs_before;
  EXPECT_EQ(syncs, batches);
  EXPECT_LT(batches, kTotalWrites);

  // Group commit must not have weakened durability: everything acked is
  // there after reopen with no Close (the crash case).
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kWritesEach; ++i) {
      auto found = engine->Get(StringPrintf("w%d-%04d", w, i));
      ASSERT_TRUE(found.ok() && found->has_value());
    }
  }
  ASSERT_TRUE(engine->Close().ok());
}

TEST(CatalogConcurrencyTest, SearchesRunAgainstConcurrentIngest) {
  std::string dir = FreshDir("catalog");
  auto catalog = core::AuthorIndex::OpenPersistent(dir);
  ASSERT_TRUE(catalog.ok()) << catalog.status();

  constexpr int kEntries = 150;
  std::thread ingester([&] {
    for (int i = 0; i < kEntries; ++i) {
      Entry entry;
      entry.author.surname = StringPrintf("Surname%03d", i);
      entry.author.given = "Given";
      entry.title = StringPrintf("Title number %d of collected works", i);
      entry.citation.volume = 80 + (i % 20);
      entry.citation.page = 1 + i;
      entry.citation.year = 1990 + (i % 30);
      auto added = (*catalog)->Add(std::move(entry));
      ASSERT_TRUE(added.ok()) << added.status();
    }
  });
  std::atomic<bool> done{false};
  std::thread prober([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto result = (*catalog)->Search("author:surname007");
      ASSERT_TRUE(result.ok()) << result.status();
      auto groups = (*catalog)->GroupsInOrder();
      // Group walk sees a consistent catalog: every listed entry id
      // resolves (entries are append-only, ids dense).
      for (const auto& group : groups) {
        for (EntryId id : group.entries) {
          EXPECT_NE((*catalog)->GetEntry(id), nullptr);
        }
      }
      (void)(*catalog)->GetMetricsSnapshot();
      (void)(*catalog)->group_count();
    }
  });
  ingester.join();
  done.store(true, std::memory_order_relaxed);
  prober.join();

  auto result = (*catalog)->Search("author:surname042");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 1u);
  EXPECT_EQ((*catalog)->group_count(), static_cast<size_t>(kEntries));
  ASSERT_TRUE((*catalog)->Flush().ok());
}

}  // namespace
}  // namespace authidx::storage
