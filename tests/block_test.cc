#include "authidx/storage/block.h"

#include <gtest/gtest.h>

#include <map>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"

namespace authidx::storage {
namespace {

std::unique_ptr<Block> Build(const std::map<std::string, std::string>& kvs,
                             int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (const auto& [key, value] : kvs) {
    builder.Add(key, value);
  }
  Result<std::unique_ptr<Block>> block =
      Block::Parse(std::string(builder.Finish()));
  EXPECT_TRUE(block.ok()) << block.status();
  return std::move(block).value();
}

TEST(BlockTest, EmptyBlockIterates) {
  BlockBuilder builder;
  auto block = Block::Parse(std::string(builder.Finish()));
  ASSERT_TRUE(block.ok());
  auto it = (*block)->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("anything");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, RoundTripInOrder) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 300; ++i) {
    kvs[StringPrintf("key%05d", i)] = StringPrintf("value-%d", i * 7);
  }
  auto block = Build(kvs);
  auto it = block->NewIterator();
  auto expected = kvs.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, kvs.end());
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, kvs.end());
  EXPECT_TRUE(it->status().ok());
}

TEST(BlockTest, PrefixCompressionShrinksSharedKeys) {
  // Long shared prefixes compress well vs restart_interval=1 (none).
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 200; ++i) {
    kvs[StringPrintf("averylongsharedprefixkey%05d", i)] = "v";
  }
  BlockBuilder compressed(16), uncompressed(1);
  for (const auto& [key, value] : kvs) {
    compressed.Add(key, value);
    uncompressed.Add(key, value);
  }
  EXPECT_LT(compressed.Finish().size(), uncompressed.Finish().size() / 2);
}

TEST(BlockTest, SeekFindsFirstKeyGreaterOrEqual) {
  std::map<std::string, std::string> kvs = {
      {"b", "1"}, {"d", "2"}, {"f", "3"}, {"h", "4"}};
  auto block = Build(kvs);
  auto it = block->NewIterator();
  it->Seek("d");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("e");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "f");
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
  it->Seek("z");
  EXPECT_FALSE(it->Valid());
}

// Parameterized over restart interval: behaviour must be identical.
class BlockRestartTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockRestartTest, SeekEveryKeyAndMisses) {
  std::map<std::string, std::string> kvs;
  Random rng(42);
  for (int i = 0; i < 500; ++i) {
    std::string key;
    for (size_t j = 1 + rng.Uniform(20); j > 0; --j) {
      key += static_cast<char>('a' + rng.Uniform(8));
    }
    kvs[key] = StringPrintf("v%d", i);
  }
  BlockBuilder builder(GetParam());
  for (const auto& [key, value] : kvs) {
    builder.Add(key, value);
  }
  auto block = Block::Parse(std::string(builder.Finish()));
  ASSERT_TRUE(block.ok());
  auto it = (*block)->NewIterator();
  for (const auto& [key, value] : kvs) {
    it->Seek(key);
    ASSERT_TRUE(it->Valid()) << key;
    ASSERT_EQ(it->key(), key);
    ASSERT_EQ(it->value(), value);
    // Seeking just past the key lands on the successor.
    std::string past = key + "\x01";
    it->Seek(past);
    auto successor = kvs.upper_bound(key);
    if (successor == kvs.end()) {
      ASSERT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      ASSERT_EQ(it->key(), successor->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRestartTest,
                         ::testing::Values(1, 2, 4, 16, 64, 1000));

TEST(BlockTest, BinaryKeysAndValues) {
  std::map<std::string, std::string> kvs = {
      {std::string("\x00\x01", 2), std::string("\xff\x00z", 3)},
      {std::string("\x00\x02", 2), ""},
      {std::string("\xfe", 1), std::string(1000, '\x7f')},
  };
  auto block = Build(kvs);
  auto it = block->NewIterator();
  auto expected = kvs.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    EXPECT_EQ(it->key(), expected->first);
    EXPECT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, kvs.end());
}

TEST(BlockTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Block::Parse("").ok());
  EXPECT_FALSE(Block::Parse("abc").ok());
  // num_restarts that exceeds the block size.
  std::string bogus(8, '\xff');
  EXPECT_TRUE(Block::Parse(bogus).status().IsCorruption());
}

TEST(BlockTest, BuilderReset) {
  BlockBuilder builder;
  builder.Add("a", "1");
  builder.Finish();
  builder.Reset();
  EXPECT_TRUE(builder.empty());
  builder.Add("b", "2");
  auto block = Block::Parse(std::string(builder.Finish()));
  ASSERT_TRUE(block.ok());
  auto it = (*block)->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
  it->Next();
  EXPECT_FALSE(it->Valid());
}

// Regression: a corrupted restart array used to make Seek call
// substr() with an out-of-range offset, throwing std::out_of_range
// instead of reporting Corruption through the iterator status.
TEST(BlockTest, CorruptRestartOffsetIsCorruptionNotCrash) {
  BlockBuilder builder(/*restart_interval=*/1);  // Every entry restarts.
  builder.Add("aaa", "1");
  builder.Add("bbb", "2");
  builder.Add("ccc", "3");
  builder.Add("ddd", "4");
  std::string contents(builder.Finish());

  // Layout: entries | restarts[4 x uint32] | num_restarts. Smash the
  // middle restart offset (the first probe of the binary search) to an
  // address far outside the block.
  const size_t restarts_offset = contents.size() - 4 - 4 * 4;
  std::string corrupted = contents;
  for (int i = 0; i < 4; ++i) {
    corrupted[restarts_offset + 4 * 2 + static_cast<size_t>(i)] = '\xFF';
  }

  Result<std::unique_ptr<Block>> block = Block::Parse(std::move(corrupted));
  ASSERT_TRUE(block.ok()) << block.status();  // Trailer itself is intact.
  auto it = (*block)->NewIterator();
  it->Seek("ccc");  // Binary search reads the smashed restart entry.
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().IsCorruption()) << it->status();
}

}  // namespace
}  // namespace authidx::storage
