// End-to-end tests exercising the whole stack: synthetic corpus ->
// persistent AuthorIndex (LSM storage) -> reopen -> structured queries ->
// typeset/export, plus brute-force cross-validation of query results.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/export.h"
#include "authidx/format/typeset.h"
#include "authidx/query/parser.h"
#include "authidx/text/collate.h"
#include "authidx/text/normalize.h"
#include "authidx/text/tokenize.h"
#include "authidx/workload/corpus.h"

namespace authidx {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/integration_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    workload::CorpusOptions options;
    options.entries = 3000;
    options.authors = 400;
    options.seed = 0xC0FFEE;
    entries_ = workload::GenerateCorpus(options);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::vector<Entry> entries_;
};

TEST_F(IntegrationTest, FullLifecycleWithReopen) {
  {
    storage::EngineOptions options;
    options.memtable_bytes = 128 * 1024;  // Force flushes/compactions.
    options.l0_compaction_trigger = 3;
    auto catalog = core::AuthorIndex::OpenPersistent(dir_, options);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    ASSERT_TRUE((*catalog)->AddAll(entries_).ok());
    EXPECT_GT((*catalog)->StorageStats().flushes, 0u);
  }
  auto catalog = core::AuthorIndex::OpenPersistent(dir_);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_EQ((*catalog)->entry_count(), entries_.size());

  // Every query result cross-validated against a brute-force scan.
  struct Case {
    const char* query;
  };
  const Case cases[] = {
      {"author:miller limit:10000"},
      {"author:mc* limit:10000"},
      {"year:1975..1985 limit:10000"},
      {"vol:82 limit:10000"},
      {"student:yes year:1980..1990 limit:10000"},
      {"title:coal limit:10000"},
      {"mining safety limit:10000"},
      {"title:mining -safety limit:10000"},
  };
  for (const Case& c : cases) {
    auto result = (*catalog)->Search(c.query);
    ASSERT_TRUE(result.ok()) << c.query << ": " << result.status();
    // Brute force evaluation.
    query::Query q = *query::ParseQuery(c.query);
    size_t expected = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (q.author_exact) {
        std::string folded_group =
            text::NormalizeForIndex(e.author.GroupKey());
        std::string folded_surname =
            text::NormalizeForIndex(e.author.surname);
        if (folded_group != *q.author_exact &&
            folded_surname != *q.author_exact) {
          continue;
        }
      }
      if (q.author_prefix) {
        std::string folded =
            text::NormalizeForIndex(e.author.GroupKey());
        if (folded.compare(0, q.author_prefix->size(), *q.author_prefix) !=
            0) {
          continue;
        }
      }
      if (q.year && !q.year->Contains(e.citation.year)) continue;
      if (q.volume && !q.volume->Contains(e.citation.volume)) continue;
      if (q.student && e.author.student_material != *q.student) continue;
      auto tokens = text::Tokenize(e.title);
      bool ok = true;
      for (const std::string& term : q.title_terms) {
        if (std::find(tokens.begin(), tokens.end(), term) == tokens.end()) {
          ok = false;
          break;
        }
      }
      for (const std::string& term : q.not_terms) {
        if (std::find(tokens.begin(), tokens.end(), term) != tokens.end()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ++expected;
      }
    }
    EXPECT_EQ(result->total_matches, expected) << c.query;
  }
}

TEST_F(IntegrationTest, TypesetAndExportOverPersistentCatalog) {
  {
    auto catalog = core::AuthorIndex::OpenPersistent(dir_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE((*catalog)->AddAll(entries_).ok());
  }
  auto catalog = core::AuthorIndex::OpenPersistent(dir_);
  ASSERT_TRUE(catalog.ok());

  auto pages = format::TypesetAuthorIndex(**catalog);
  EXPECT_GT(pages.size(), 10u);
  // Total typeset rows == entries: count citation-bearing lines.
  size_t citations = 0;
  for (const auto& page : pages) {
    size_t pos = 0;
    while ((pos = page.text.find(" (19", pos)) != std::string::npos) {
      ++citations;
      pos += 1;
    }
  }
  EXPECT_EQ(citations, entries_.size());

  std::string csv = format::CatalogToCsv(**catalog);
  EXPECT_EQ(static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n')),
            entries_.size() + 1);
  std::string json = format::CatalogToJson(**catalog);
  EXPECT_GT(json.size(), entries_.size() * 40);

  core::CatalogStats stats = core::ComputeStats(**catalog);
  EXPECT_EQ(stats.entries, entries_.size());
  EXPECT_EQ(stats.distinct_authors, (*catalog)->group_count());
}

TEST_F(IntegrationTest, GroupOrderEqualsCollationOfSortKeys) {
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(entries_).ok());
  auto groups = catalog->GroupsInOrder();
  size_t total = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    total += groups[i].entries.size();
    if (i > 0) {
      EXPECT_LT(text::Compare(groups[i - 1].display, groups[i].display), 0);
    }
  }
  EXPECT_EQ(total, entries_.size());
}

TEST_F(IntegrationTest, InMemoryAndPersistentAgreeOnQueries) {
  auto mem = core::AuthorIndex::Create();
  ASSERT_TRUE(mem->AddAll(entries_).ok());
  {
    auto disk = core::AuthorIndex::OpenPersistent(dir_);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AddAll(entries_).ok());
  }
  auto disk = core::AuthorIndex::OpenPersistent(dir_);
  ASSERT_TRUE(disk.ok());
  for (const char* q :
       {"author:smith limit:10000", "coal order:relevance limit:50",
        "author:b* year:1970..1980 limit:10000", "student:yes limit:10000"}) {
    auto a = mem->Search(q);
    auto b = (*disk)->Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->total_matches, b->total_matches) << q;
    ASSERT_EQ(a->hits.size(), b->hits.size()) << q;
    for (size_t i = 0; i < a->hits.size(); ++i) {
      EXPECT_EQ(a->hits[i].id, b->hits[i].id) << q << " hit " << i;
    }
  }
}

}  // namespace
}  // namespace authidx
