#include <gtest/gtest.h>

#include "authidx/text/stem.h"
#include "authidx/text/tokenize.h"

namespace authidx::text {
namespace {

TEST(StemTest, ClassicPorterExamples) {
  // Canonical pairs from Porter's paper and reference vocabulary.
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");  // step 5a strips the e.
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("bled"), "bled");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("tanned"), "tan");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("fizzed"), "fizz");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("sky"), "sky");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("feudalism"), "feudal");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("formaliti"), "formal");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electrical"), "electr");  // step 4 then applies.
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("allowance"), "allow");
  EXPECT_EQ(PorterStem("inference"), "infer");
  EXPECT_EQ(PorterStem("airliner"), "airlin");
  EXPECT_EQ(PorterStem("adjustable"), "adjust");
  EXPECT_EQ(PorterStem("defensible"), "defens");
  EXPECT_EQ(PorterStem("irritant"), "irrit");
  EXPECT_EQ(PorterStem("replacement"), "replac");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("homologou"), "homolog");
  EXPECT_EQ(PorterStem("communism"), "commun");
  EXPECT_EQ(PorterStem("activate"), "activ");
  EXPECT_EQ(PorterStem("angulariti"), "angular");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("bowdlerize"), "bowdler");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("cease"), "ceas");
  EXPECT_EQ(PorterStem("controll"), "control");
  EXPECT_EQ(PorterStem("roll"), "roll");
}

TEST(StemTest, DomainVocabulary) {
  EXPECT_EQ(PorterStem("mining"), "mine");
  EXPECT_EQ(PorterStem("regulations"), PorterStem("regulation"));
  EXPECT_EQ(PorterStem("liability"), PorterStem("liabilities"));
  EXPECT_EQ(PorterStem("constitutional"), PorterStem("constitution"));
}

TEST(StemTest, ShortAndNonAlphaInputsUnchanged) {
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
  EXPECT_EQ(PorterStem("Mixed"), "Mixed");  // Uppercase: passthrough.
  EXPECT_EQ(PorterStem("x123"), "x123");
}

TEST(StopwordTest, CommonWordsDetected) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("coal"));
  EXPECT_FALSE(IsStopword(""));
}

TEST(TokenizeTest, FoldsSplitsAndStems) {
  auto tokens = Tokenize("The Regulation of Coal Mining in West Virginia");
  // "the"/"of"/"in" dropped; remaining words stemmed and lowercased.
  std::vector<std::string> expected = {
      PorterStem("regulation"), "coal", PorterStem("mining"),
      "west",                   "virginia"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, NumbersAreStandaloneTokens) {
  auto tokens = Tokenize("Act of 1977 Amendments");
  EXPECT_EQ(tokens, (std::vector<std::string>{"act", "1977",
                                              PorterStem("amendments")}));
}

TEST(TokenizeTest, PunctuationSeparates) {
  auto tokens = Tokenize("employer-employee relationship");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], PorterStem("employer"));
  EXPECT_EQ(tokens[1], PorterStem("employee"));
}

TEST(TokenizeTest, OptionsControlPipeline) {
  TokenizeOptions raw;
  raw.remove_stopwords = false;
  raw.stem = false;
  auto tokens = Tokenize("The Mining", raw);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "mining"}));

  TokenizeOptions min3;
  min3.min_length = 3;
  min3.remove_stopwords = false;
  min3.stem = false;
  EXPECT_EQ(Tokenize("an ox ran far", min3),
            (std::vector<std::string>{"ran", "far"}));
}

TEST(TokenizeTest, AccentedTitles) {
  auto tokens = Tokenize("Décisions Économiques");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].substr(0, 5), "decis");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("—–!!!").empty());
}

}  // namespace
}  // namespace authidx::text
