#include "authidx/common/env.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace authidx {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/env_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/file";
  {
    auto file = Env::Default()->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
}

TEST_F(EnvTest, LargeAppendsSpillBuffer) {
  std::string path = dir_ + "/big";
  std::string chunk(200 * 1024, 'x');  // Larger than the 64K buffer.
  {
    auto file = Env::Default()->NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("head-").ok());
    ASSERT_TRUE((*file)->Append(chunk).ok());
    ASSERT_TRUE((*file)->Append("-tail").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, chunk.size() + 10);
}

TEST_F(EnvTest, RandomAccessReadsAtOffsets) {
  std::string path = dir_ + "/ra";
  ASSERT_TRUE(
      Env::Default()->WriteStringToFileSync(path, "0123456789abcdef").ok());
  auto file = Env::Default()->NewRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  std::string scratch;
  std::string_view out;
  ASSERT_TRUE((*file)->Read(4, 6, &scratch, &out).ok());
  EXPECT_EQ(out, "456789");
  // Reading past EOF returns the available prefix.
  ASSERT_TRUE((*file)->Read(12, 100, &scratch, &out).ok());
  EXPECT_EQ(out, "cdef");
  ASSERT_TRUE((*file)->Read(100, 10, &scratch, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(*(*file)->Size(), 16u);
}

TEST_F(EnvTest, AtomicWriteReplacesExisting) {
  std::string path = dir_ + "/atomic";
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(path, "old").ok());
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(path, "new-data").ok());
  EXPECT_EQ(*Env::Default()->ReadFileToString(path), "new-data");
  // No temp file left behind.
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
}

TEST_F(EnvTest, FileOpsAndErrors) {
  std::string path = dir_ + "/ops";
  EXPECT_FALSE(Env::Default()->FileExists(path));
  EXPECT_TRUE(
      Env::Default()->ReadFileToString(path).status().IsNotFound());
  EXPECT_TRUE(Env::Default()->RemoveFile(path).IsNotFound());
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(path, "x").ok());
  EXPECT_TRUE(Env::Default()->FileExists(path));
  ASSERT_TRUE(Env::Default()->RenameFile(path, path + "2").ok());
  EXPECT_FALSE(Env::Default()->FileExists(path));
  EXPECT_TRUE(Env::Default()->FileExists(path + "2"));
  ASSERT_TRUE(Env::Default()->RemoveFile(path + "2").ok());
}

TEST_F(EnvTest, ListDirSkipsDotEntries) {
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(dir_ + "/a", "1").ok());
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(dir_ + "/b", "2").ok());
  auto names = Env::Default()->ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  EXPECT_TRUE(Env::Default()->ListDir(dir_ + "/absent").status().IsNotFound());
}

TEST_F(EnvTest, CreateDirIfMissingIsIdempotent) {
  std::string sub = dir_ + "/sub";
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(sub).ok());
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(sub).ok());
}

TEST_F(EnvTest, AppendAfterCloseFails) {
  auto file = Env::Default()->NewWritableFile(dir_ + "/closed");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE((*file)->Append("x").IsFailedPrecondition());
  EXPECT_TRUE((*file)->Close().ok());  // Idempotent.
}

TEST_F(EnvTest, BinaryContentPreserved) {
  std::string path = dir_ + "/bin";
  std::string data;
  for (int i = 0; i < 256; ++i) {
    data.push_back(static_cast<char>(i));
  }
  ASSERT_TRUE(Env::Default()->WriteStringToFileSync(path, data).ok());
  EXPECT_EQ(*Env::Default()->ReadFileToString(path), data);
}

}  // namespace
}  // namespace authidx
