#include "authidx/query/parser.h"

#include <gtest/gtest.h>

#include "authidx/text/stem.h"

namespace authidx::query {
namespace {

TEST(QueryParserTest, AuthorExact) {
  Result<Query> q = ParseQuery("author:McGinley");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->author_exact.has_value());
  EXPECT_EQ(*q->author_exact, "mcginley");  // Folded.
  EXPECT_FALSE(q->author_prefix);
  EXPECT_FALSE(q->author_fuzzy);
}

TEST(QueryParserTest, AuthorPrefixStar) {
  Result<Query> q = ParseQuery("author:mc*");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->author_prefix.has_value());
  EXPECT_EQ(*q->author_prefix, "mc");
}

TEST(QueryParserTest, AuthorFuzzyTilde) {
  Result<Query> q = ParseQuery("author~Jonson");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->author_fuzzy.has_value());
  EXPECT_EQ(*q->author_fuzzy, "jonson");
}

TEST(QueryParserTest, QuotedAuthorKeepsSpaces) {
  Result<Query> q = ParseQuery("author:\"Minow, Martha\"");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->author_exact.has_value());
  EXPECT_EQ(*q->author_exact, "minow, martha");
}

TEST(QueryParserTest, TitleTermsAnalyzed) {
  Result<Query> q = ParseQuery("title:\"Surface Mining\" regulation");
  ASSERT_TRUE(q.ok());
  std::vector<std::string> expected = {"surfac", text::PorterStem("mining"),
                                       text::PorterStem("regulation")};
  EXPECT_EQ(q->title_terms, expected);
}

TEST(QueryParserTest, StopwordsDropFromBareTerms) {
  Result<Query> q = ParseQuery("the law of coal");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->title_terms, (std::vector<std::string>{"law", "coal"}));
}

TEST(QueryParserTest, NegatedTerms) {
  Result<Query> q = ParseQuery("coal -tax -mining");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->title_terms, std::vector<std::string>{"coal"});
  ASSERT_EQ(q->not_terms.size(), 2u);
  EXPECT_EQ(q->not_terms[0], "tax");
  EXPECT_EQ(q->not_terms[1], text::PorterStem("mining"));
}

TEST(QueryParserTest, YearAndVolumeRanges) {
  Result<Query> q = ParseQuery("year:1980..1990 vol:82");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->year.has_value());
  EXPECT_EQ(q->year->lo, 1980u);
  EXPECT_EQ(q->year->hi, 1990u);
  ASSERT_TRUE(q->volume.has_value());
  EXPECT_EQ(q->volume->lo, 82u);
  EXPECT_EQ(q->volume->hi, 82u);
}

TEST(QueryParserTest, OpenEndedRanges) {
  Result<Query> q = ParseQuery("year:1985..");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->year->lo, 1985u);
  EXPECT_EQ(q->year->hi, UINT32_MAX);
  q = ParseQuery("year:..1985");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->year->lo, 0u);
  EXPECT_EQ(q->year->hi, 1985u);
}

TEST(QueryParserTest, StudentOrderLimitOffset) {
  Result<Query> q = ParseQuery(
      "student:yes order:relevance limit:25 offset:50 coal");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->student, true);
  EXPECT_EQ(q->rank, RankMode::kRelevance);
  EXPECT_EQ(q->limit, 25u);
  EXPECT_EQ(q->offset, 50u);
  q = ParseQuery("student:no order:index");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->student, false);
  EXPECT_EQ(q->rank, RankMode::kCollation);
}

TEST(QueryParserTest, Rejections) {
  EXPECT_FALSE(ParseQuery("unknownfield:x").ok());
  EXPECT_FALSE(ParseQuery("year:abc").ok());
  EXPECT_FALSE(ParseQuery("year:1990..1980").ok());
  EXPECT_FALSE(ParseQuery("student:maybe").ok());
  EXPECT_FALSE(ParseQuery("order:random").ok());
  EXPECT_FALSE(ParseQuery("author:a author:b").ok());
  EXPECT_FALSE(ParseQuery("author:a author~b").ok());
  EXPECT_FALSE(ParseQuery("author:").ok());
}

TEST(QueryParserTest, CoauthorClause) {
  Result<Query> q = ParseQuery("coauthor:\"Scott, Philip\"");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->coauthor.has_value());
  EXPECT_EQ(*q->coauthor, "scott, philip");
  EXPECT_FALSE(ParseQuery("coauthor:").ok());
}

TEST(QueryParserTest, EmptyQueryIsUnconstrained) {
  Result<Query> q = ParseQuery("");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsUnconstrained());
  q = ParseQuery("year:1990");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsUnconstrained());  // Filter-only.
  q = ParseQuery("coal");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsUnconstrained());
}

TEST(QueryParserTest, ToStringIsStable) {
  Result<Query> q =
      ParseQuery("author:smith coal year:1980..1990 order:relevance");
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  EXPECT_NE(s.find("author=smith"), std::string::npos);
  EXPECT_NE(s.find("year=1980..1990"), std::string::npos);
  EXPECT_NE(s.find("order=relevance"), std::string::npos);
}

}  // namespace
}  // namespace authidx::query
