// The epoch-invalidated query result cache: LRU/eviction unit behavior,
// and the AuthorIndex integration — every mutation path (Add, AddAll,
// Flush, Compact) must bump the data epoch so a cached result is never
// served stale, and the trace tree must show the probe outcome.

#include "authidx/core/result_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "authidx/core/author_index.h"
#include "authidx/obs/trace.h"
#include "authidx/query/parser.h"
#include "authidx/workload/sample_data.h"

namespace authidx::core {
namespace {

query::QueryResult MakeResult(size_t hits) {
  query::QueryResult result;
  for (size_t i = 0; i < hits; ++i) {
    result.hits.push_back(query::Hit{static_cast<EntryId>(i), 1.0});
  }
  result.total_matches = hits;
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.Probe("q1", 0).has_value());
  cache.Insert("q1", 0, MakeResult(3));
  auto hit = cache.Probe("q1", 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hits.size(), 3u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.bytes_used(), 0u);
}

TEST(ResultCacheTest, EpochMismatchInvalidates) {
  ResultCache cache(1 << 20);
  cache.Insert("q1", 0, MakeResult(3));
  // Data changed: the stale entry must not be served, and is reclaimed.
  EXPECT_FALSE(cache.Probe("q1", 1).has_value());
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  // Re-inserted at the new epoch it hits again.
  cache.Insert("q1", 1, MakeResult(2));
  EXPECT_TRUE(cache.Probe("q1", 1).has_value());
}

TEST(ResultCacheTest, CapacityBoundEvictsLru) {
  ResultCache cache(4096);  // 512 bytes per shard.
  // Insert many entries hashing across shards; total bytes stay bounded.
  for (int i = 0; i < 200; ++i) {
    cache.Insert("query-" + std::to_string(i), 0, MakeResult(2));
  }
  EXPECT_LE(cache.bytes_used(), 4096u);
  EXPECT_LT(cache.entry_count(), 200u);
}

TEST(ResultCacheTest, OversizedEntryNotCached) {
  ResultCache cache(1024);  // 128 bytes per shard; any entry is bigger.
  cache.Insert("q1", 0, MakeResult(100));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.Probe("q1", 0).has_value());
}

TEST(ResultCacheTest, ReinsertReplaces) {
  ResultCache cache(1 << 20);
  cache.Insert("q1", 0, MakeResult(1));
  cache.Insert("q1", 1, MakeResult(5));
  EXPECT_EQ(cache.entry_count(), 1u);
  auto hit = cache.Probe("q1", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hits.size(), 5u);
}

TEST(ResultCacheTest, InstrumentsCount) {
  obs::MetricsRegistry registry;
  ResultCache cache(1 << 20);
  ResultCache::Instruments instruments;
  instruments.hits = registry.RegisterCounter("hits", "");
  instruments.misses = registry.RegisterCounter("misses", "");
  instruments.evictions = registry.RegisterCounter("evictions", "");
  instruments.invalidations = registry.RegisterCounter("invalidations", "");
  instruments.bytes = registry.RegisterGauge("bytes", "");
  cache.BindMetrics(instruments);

  cache.Probe("q1", 0);                 // Miss.
  cache.Insert("q1", 0, MakeResult(2));
  cache.Probe("q1", 0);                 // Hit.
  cache.Probe("q1", 3);                 // Invalidation (+ miss).
  EXPECT_EQ(instruments.hits->Value(), 1u);
  EXPECT_EQ(instruments.misses->Value(), 2u);
  EXPECT_EQ(instruments.invalidations->Value(), 1u);
  EXPECT_EQ(instruments.bytes->Value(), 0);  // Invalidation reclaimed it.
}

// --- AuthorIndex integration -------------------------------------------

uint64_t CounterValue(const AuthorIndex& catalog, std::string_view name) {
  // The snapshot must outlive the Find: a pointer into a temporary
  // would dangle as soon as this full-expression ends.
  obs::MetricsSnapshot snapshot = catalog.GetMetricsSnapshot();
  const obs::MetricValue* value = snapshot.Find(name);
  return value != nullptr ? value->counter : 0;
}

TEST(AuthorIndexResultCacheTest, RepeatQueryHitsUntilIngest) {
  auto catalog = AuthorIndex::Create();
  catalog->EnableResultCache(1 << 20);
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());
  const uint64_t epoch_after_ingest = catalog->data_epoch();
  EXPECT_GT(epoch_after_ingest, 0u);

  auto first = catalog->Search("author:minow");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_misses_total"), 1u);
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_hits_total"), 0u);

  auto second = catalog->Search("author:minow");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_hits_total"), 1u);
  EXPECT_EQ(second->total_matches, first->total_matches);
  ASSERT_EQ(second->hits.size(), first->hits.size());
  for (size_t i = 0; i < second->hits.size(); ++i) {
    EXPECT_EQ(second->hits[i].id, first->hits[i].id);
  }

  // Ingest bumps the epoch: the cached entry must never be served again.
  Entry entry;
  entry.author = {"Minow", "Newton N.", "", false};
  entry.title = "Television and the Public Interest";
  entry.citation = {80, 1, 1978};
  ASSERT_TRUE(catalog->Add(entry).ok());
  EXPECT_GT(catalog->data_epoch(), epoch_after_ingest);

  auto third = catalog->Search("author:minow");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->total_matches, first->total_matches + 1);
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_hits_total"), 1u);
  EXPECT_GE(CounterValue(*catalog, "authidx_result_cache_invalidations_total"),
            1u);
}

TEST(AuthorIndexResultCacheTest, DistinctQueriesDistinctEntries) {
  auto catalog = AuthorIndex::Create();
  catalog->EnableResultCache(1 << 20);
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());
  // Same terms, different limit/offset: distinct cache keys.
  ASSERT_TRUE(catalog->Search("author:minow limit:1").ok());
  ASSERT_TRUE(catalog->Search("author:minow limit:2").ok());
  ASSERT_TRUE(catalog->Search("author:minow limit:1").ok());
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_misses_total"), 2u);
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_hits_total"), 1u);
  EXPECT_EQ(catalog->result_cache()->entry_count(), 2u);
}

TEST(AuthorIndexResultCacheTest, CacheDisabledByDefault) {
  auto catalog = AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());
  ASSERT_TRUE(catalog->Search("author:minow").ok());
  ASSERT_TRUE(catalog->Search("author:minow").ok());
  EXPECT_EQ(catalog->result_cache(), nullptr);
  EXPECT_EQ(CounterValue(*catalog, "authidx_result_cache_hits_total"), 0u);
}

TEST(AuthorIndexResultCacheTest, TraceShowsProbeOutcome) {
  auto catalog = AuthorIndex::Create();
  catalog->EnableResultCache(1 << 20);
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());

  auto has_span = [](const obs::Trace& trace, std::string_view name) {
    for (const obs::Trace::Span& span : trace.spans()) {
      if (span.name == name) {
        return true;
      }
    }
    return false;
  };

  obs::Trace miss_trace;
  ASSERT_TRUE(catalog->SearchTraced("author:minow", &miss_trace).ok());
  EXPECT_TRUE(has_span(miss_trace, "cache_probe"));
  EXPECT_TRUE(has_span(miss_trace, "cache_miss"));
  EXPECT_FALSE(has_span(miss_trace, "cache_hit"));

  obs::Trace hit_trace;
  ASSERT_TRUE(catalog->SearchTraced("author:minow", &hit_trace).ok());
  EXPECT_TRUE(has_span(hit_trace, "cache_probe"));
  EXPECT_TRUE(has_span(hit_trace, "cache_hit"));
  EXPECT_FALSE(has_span(hit_trace, "cache_miss"));
}

TEST(AuthorIndexResultCacheTest, TopKPruneSpanOnPrunedPlan) {
  auto catalog = AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());
  obs::Trace trace;
  auto result =
      catalog->SearchTraced("television order:relevance limit:5", &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  bool saw_topk = false;
  for (const obs::Trace::Span& span : trace.spans()) {
    saw_topk = saw_topk || span.name == "topk_prune";
  }
  EXPECT_TRUE(saw_topk);
}

TEST(AuthorIndexResultCacheTest, FlushAndCompactInvalidate) {
  std::string dir = ::testing::TempDir() + "/authidx_result_cache";
  std::filesystem::remove_all(dir);
  auto opened = AuthorIndex::OpenPersistent(dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto catalog = std::move(*opened);
  catalog->EnableResultCache(1 << 20);
  ASSERT_TRUE(catalog->AddAll(*workload::LoadSampleEntries()).ok());

  ASSERT_TRUE(catalog->Search("author:minow").ok());
  uint64_t epoch = catalog->data_epoch();
  ASSERT_TRUE(catalog->Flush().ok());
  EXPECT_GT(catalog->data_epoch(), epoch);
  // The post-flush probe must not serve the pre-flush entry.
  ASSERT_TRUE(catalog->Search("author:minow").ok());
  EXPECT_GE(CounterValue(*catalog, "authidx_result_cache_invalidations_total"),
            1u);

  epoch = catalog->data_epoch();
  ASSERT_TRUE(catalog->Search("author:minow").ok());  // Re-primed.
  ASSERT_TRUE(catalog->CompactStorage().ok());
  EXPECT_GT(catalog->data_epoch(), epoch);
  uint64_t invalidations_before =
      CounterValue(*catalog, "authidx_result_cache_invalidations_total");
  ASSERT_TRUE(catalog->Search("author:minow").ok());
  EXPECT_GT(CounterValue(*catalog, "authidx_result_cache_invalidations_total"),
            invalidations_before - 1);
}

}  // namespace
}  // namespace authidx::core
