#include "authidx/query/executor.h"

#include <gtest/gtest.h>

#include "authidx/core/author_index.h"
#include "authidx/parse/tsv.h"
#include "authidx/query/parser.h"

namespace authidx {
namespace {

// A small hand-built catalog with known structure.
std::unique_ptr<core::AuthorIndex> BuildCatalog() {
  const char* tsv =
      "McGinley, Patrick C.\tProhibition of Strip Mining in West Virginia\t78:445 (1976)\n"
      "McGinley, Patrick C.\tPandora in the Coal Fields: Environmental Liabilities\t87:665 (1985)\n"
      "McGraw, Darrell V.\tPractical Political Considerations in Constitutional Revision\t71:320 (1969)\n"
      "McAteer, J. Davitt\tA Miner's Bill of Rights\t80:397 (1978)\n"
      "Smith, Thomas W.*\tWorker's Compensation-Statutory Construction\t77:370 (1975)\n"
      "Smyth, Alan\tCoal Mining Safety in Deep Mines\t83:977 (1981)\n"
      "Jonson, Ben\tThe Staggers Rail Act of 1980: Deregulation Gone Awry\t85:725 (1983)\n"
      "Johnson, Earl, Jr.\tA Conservative Rationale for the Legal Services Program\t70:350 (1968)\n"
      "Lewin, Jeff L.\tComparative Negligence in West Virginia\t89:1039 (1987)\n"
      "Lewin, Jeff L.\tThe Silent Revolution in West Virginia's Law of Nuisance\t92:235 (1989)\n";
  auto entries = ParseTsv(tsv);
  EXPECT_TRUE(entries.ok()) << entries.status();
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

std::vector<std::string> Surnames(const core::AuthorIndex& catalog,
                                  const query::QueryResult& result) {
  std::vector<std::string> out;
  for (const query::Hit& hit : result.hits) {
    out.push_back(catalog.GetEntry(hit.id)->author.surname);
  }
  return out;
}

TEST(ExecutorTest, AuthorExactGroupKeyAndSurnameFallback) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("author:\"McGinley, Patrick C.\"");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan, query::PlanKind::kAuthorExact);
  EXPECT_EQ(result->total_matches, 2u);

  // Surname-only fallback.
  result = catalog->Search("author:mcginley");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 2u);

  result = catalog->Search("author:lewin");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 2u);

  result = catalog->Search("author:nobody");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
}

TEST(ExecutorTest, AuthorPrefixCoversAllMcAuthors) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("author:mc*");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kAuthorPrefix);
  EXPECT_EQ(result->total_matches, 4u);  // 2x McGinley, McGraw, McAteer.
  auto surnames = Surnames(*catalog, *result);
  // Collation order: McAteer < McGinley < McGraw.
  EXPECT_EQ(surnames, (std::vector<std::string>{
                          "McAteer", "McGinley", "McGinley", "McGraw"}));
}

TEST(ExecutorTest, AuthorFuzzyFindsSoundAlikes) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("author~smith");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kAuthorFuzzy);
  // smith (exact) and smyth (distance 1).
  auto surnames = Surnames(*catalog, *result);
  ASSERT_EQ(surnames.size(), 2u);
  EXPECT_EQ(surnames[0], "Smith");
  EXPECT_EQ(surnames[1], "Smyth");

  result = catalog->Search("author~jonson");
  ASSERT_TRUE(result.ok());
  // jonson (exact) and johnson (distance 1).
  EXPECT_EQ(result->total_matches, 2u);
}

TEST(ExecutorTest, TitleConjunction) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("coal mining");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kTitleTerms);
  // "Pandora in the Coal Fields" has coal but not mining; only Smyth's
  // title has both.
  EXPECT_EQ(result->total_matches, 1u);
  EXPECT_EQ(Surnames(*catalog, *result)[0], "Smyth");
}

TEST(ExecutorTest, UnknownTermShortCircuits) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("coal xylophone");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
  EXPECT_TRUE(result->hits.empty());
}

TEST(ExecutorTest, NotTermsExclude) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("author:lewin -nuisance");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 1u);
  EXPECT_EQ(catalog->GetEntry(result->hits[0].id)->citation.volume, 89u);
}

TEST(ExecutorTest, ResidualTitleFilterOnAuthorPath) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("author:mcginley title:pandora");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kAuthorExact);
  EXPECT_EQ(result->total_matches, 1u);
  EXPECT_EQ(catalog->GetEntry(result->hits[0].id)->citation.volume, 87u);
}

TEST(ExecutorTest, YearVolumeStudentFilters) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("year:1975..1978");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kFullScan);
  EXPECT_EQ(result->total_matches, 3u);  // 1976, 1975, 1978.

  result = catalog->Search("vol:89..92");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 2u);

  result = catalog->Search("student:yes");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 1u);
  EXPECT_EQ(Surnames(*catalog, *result)[0], "Smith");

  result = catalog->Search("student:no");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 9u);
}

TEST(ExecutorTest, CoauthorFilterCrossReferences) {
  const char* tsv =
      "Ausness, Richard C.\tAdministering State Water Resources\t73:209 (1971)\tMaloney, Frank E.\n"
      "Maloney, Frank E.\tAdministering State Water Resources\t73:209 (1971)\tAusness, Richard C.\n"
      "Solo, Ann\tA Single-Author Piece\t80:1 (1977)\n";
  auto entries = ParseTsv(tsv);
  ASSERT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto result = catalog->Search("coauthor:maloney");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->total_matches, 1u);
  EXPECT_EQ(catalog->GetEntry(result->hits[0].id)->author.surname,
            "Ausness");
  // Composes with author clauses.
  result = catalog->Search("author:maloney coauthor:ausness");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 1u);
  result = catalog->Search("coauthor:nobody");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
}

TEST(ExecutorTest, CollationOrderIsPrintedOrder) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("limit:100");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 10u);
  auto surnames = Surnames(*catalog, *result);
  // Johnson < Jonson (h < s at position 2... "johnson" vs "jonson":
  // 'h' < 'n') < Lewin < McAteer < McGinley < McGraw < Smith < Smyth.
  std::vector<std::string> expected = {
      "Johnson", "Jonson",   "Lewin",  "Lewin", "McAteer",
      "McGinley", "McGinley", "McGraw", "Smith", "Smyth"};
  EXPECT_EQ(surnames, expected);
  // Within the Lewin and McGinley groups, volume ascends.
  EXPECT_LT(catalog->GetEntry(result->hits[2].id)->citation.volume,
            catalog->GetEntry(result->hits[3].id)->citation.volume);
}

TEST(ExecutorTest, RelevanceOrderPutsBestMatchFirst) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("coal order:relevance");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->total_matches, 2u);
  EXPECT_GT(result->hits[0].score, 0.0);
  EXPECT_GE(result->hits[0].score, result->hits[1].score);
}

TEST(ExecutorTest, RelevanceConjunctionRoutesToTopKPlan) {
  auto catalog = BuildCatalog();
  auto result = catalog->Search("coal order:relevance");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, query::PlanKind::kTitleTopK);
  // Unpruned run over a tiny corpus: exact totals, full accounting.
  EXPECT_EQ(result->total_matches, 2u);
  EXPECT_FALSE(result->total_is_lower_bound);
  EXPECT_GT(result->postings_decoded, 0u);
}

TEST(ExecutorTest, TopKPlanMatchesExhaustivePath) {
  auto catalog = BuildCatalog();
  // Same query with and without a residual filter that excludes
  // nothing: the filter forces the exhaustive kTitleTerms path, and
  // both must agree on hits, order, and score bits.
  auto pruned = catalog->Search("west virginia order:relevance limit:5");
  auto exhaustive =
      catalog->Search("west virginia order:relevance limit:5 year:1900..");
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_EQ(pruned->plan, query::PlanKind::kTitleTopK);
  EXPECT_EQ(exhaustive->plan, query::PlanKind::kTitleTerms);
  ASSERT_EQ(pruned->hits.size(), exhaustive->hits.size());
  for (size_t i = 0; i < pruned->hits.size(); ++i) {
    EXPECT_EQ(pruned->hits[i].id, exhaustive->hits[i].id) << i;
    EXPECT_EQ(pruned->hits[i].score, exhaustive->hits[i].score) << i;
  }
  EXPECT_EQ(pruned->total_matches, exhaustive->total_matches);
}

TEST(ExecutorTest, TopKPlanPaginates) {
  auto catalog = BuildCatalog();
  auto all = catalog->Search("west virginia order:relevance limit:10");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->plan, query::PlanKind::kTitleTopK);
  ASSERT_EQ(all->hits.size(), 3u);  // Three West Virginia titles.
  auto page = catalog->Search("west virginia order:relevance limit:2 "
                              "offset:1");
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->hits.size(), 2u);
  EXPECT_EQ(page->hits[0].id, all->hits[1].id);
  EXPECT_EQ(page->hits[1].id, all->hits[2].id);
}

TEST(ExecutorTest, PaginationOffsetLimit) {
  auto catalog = BuildCatalog();
  auto all = catalog->Search("limit:100");
  ASSERT_TRUE(all.ok());
  auto page = catalog->Search("limit:3 offset:2");
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->total_matches, 10u);  // Total unaffected by paging.
  ASSERT_EQ(page->hits.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(page->hits[i].id, all->hits[i + 2].id);
  }
  // Offset past the end yields empty hits.
  auto past = catalog->Search("offset:999");
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->hits.empty());
  EXPECT_EQ(past->total_matches, 10u);
}

TEST(ExecutorTest, EmptyCatalog) {
  auto catalog = core::AuthorIndex::Create();
  auto result = catalog->Search("anything goes");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
  result = catalog->Search("");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
}

}  // namespace
}  // namespace authidx
