// Differential test for block-max top-k pruning: over randomized
// namegen corpora, RankBm25TopKConjunctive must produce bit-identical
// output (doc ids AND fixed64 score bits) to the exhaustive
// conjunction + RankBm25 reference, for every k — including k = 1,
// k > corpus, tie-heavy corpora, and single-term queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/index/inverted.h"
#include "authidx/index/postings.h"
#include "authidx/index/ranker.h"
#include "authidx/text/tokenize.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

// Mirrors the executor's exhaustive relevance path: conjunction via
// postings intersection, scores from a full RankBm25 pass over the
// index, (score desc, doc asc) order, truncated to k.
std::vector<ScoredDoc> ExhaustiveReference(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    size_t k) {
  if (terms.empty() || k == 0) {
    return {};
  }
  std::vector<EntryId> matches = index.GetDocs(terms[0]);
  for (size_t i = 1; i < terms.size(); ++i) {
    matches = Intersect(matches, index.GetDocs(terms[i]));
  }
  std::vector<ScoredDoc> ranked =
      RankBm25(index, terms, index.doc_count());
  std::vector<double> score_of;
  for (const ScoredDoc& sd : ranked) {
    if (sd.doc >= score_of.size()) {
      score_of.resize(sd.doc + 1, 0.0);
    }
    score_of[sd.doc] = sd.score;
  }
  std::vector<ScoredDoc> out;
  for (EntryId id : matches) {
    out.push_back({id, id < score_of.size() ? score_of[id] : 0.0});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.doc < b.doc;
            });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

// Asserts bit-identity and returns the pruned run's stats.
TopKStats ExpectBitIdentical(const InvertedIndex& index,
                             const std::vector<std::string>& terms,
                             size_t k) {
  TopKStats stats;
  std::vector<ScoredDoc> pruned =
      RankBm25TopKConjunctive(index, terms, k, {}, &stats);
  std::vector<ScoredDoc> reference = ExhaustiveReference(index, terms, k);
  EXPECT_EQ(pruned.size(), reference.size());
  for (size_t i = 0; i < std::min(pruned.size(), reference.size()); ++i) {
    EXPECT_EQ(pruned[i].doc, reference[i].doc) << "rank " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(pruned[i].score),
              std::bit_cast<uint64_t>(reference[i].score))
        << "rank " << i << " doc " << pruned[i].doc;
  }
  return stats;
}

InvertedIndex BuildNamegenIndex(uint64_t seed, size_t docs,
                                std::vector<std::vector<std::string>>* tokens_of) {
  workload::NameGenerator names(seed);
  InvertedIndex index;
  for (EntryId doc = 0; doc < docs; ++doc) {
    std::vector<std::string> tokens = text::Tokenize(names.NextTitle());
    index.AddDocument(doc, tokens);
    tokens_of->push_back(std::move(tokens));
  }
  return index;
}

TEST(TopKDifferentialTest, RandomNamegenCorpora) {
  uint64_t total_skipped = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<std::vector<std::string>> tokens_of;
    const size_t docs = seed == 1 ? 300 : 3000;
    InvertedIndex index = BuildNamegenIndex(seed, docs, &tokens_of);
    Random rng(seed * 17);
    for (int trial = 0; trial < 40; ++trial) {
      // Draw 1-3 terms from a random doc so the conjunction is
      // usually nonempty; occasionally mix in a term from another doc
      // (possibly-empty conjunctions must agree too).
      const auto& base = tokens_of[rng.Uniform(tokens_of.size())];
      if (base.empty()) {
        continue;
      }
      std::vector<std::string> terms;
      size_t want = 1 + rng.Uniform(3);
      for (size_t i = 0; i < want && i < base.size(); ++i) {
        terms.push_back(base[rng.Uniform(base.size())]);
      }
      if (rng.OneIn(4)) {
        const auto& other = tokens_of[rng.Uniform(tokens_of.size())];
        if (!other.empty()) {
          terms.push_back(other[rng.Uniform(other.size())]);
        }
      }
      for (size_t k : {1u, 10u, 100u}) {
        TopKStats stats = ExpectBitIdentical(index, terms, k);
        total_skipped += stats.postings_skipped;
      }
      // k beyond every possible match count: full, unpruned output.
      TopKStats stats = ExpectBitIdentical(index, terms, docs + 10);
      EXPECT_FALSE(stats.pruned);
      total_skipped += stats.postings_skipped;
    }
  }
  // The whole run must have exercised actual block skipping.
  EXPECT_GT(total_skipped, 0u);
}

TEST(TopKDifferentialTest, SingleTermAllKs) {
  std::vector<std::vector<std::string>> tokens_of;
  InvertedIndex index = BuildNamegenIndex(42, 2000, &tokens_of);
  // The most common token has the longest postings list.
  std::string best_term;
  size_t best_df = 0;
  for (const std::string& term : index.Terms()) {
    if (index.DocFreq(term) > best_df) {
      best_df = index.DocFreq(term);
      best_term = term;
    }
  }
  ASSERT_GT(best_df, 100u);
  for (size_t k : {1u, 2u, 10u, 100u, 5000u}) {
    ExpectBitIdentical(index, {best_term}, k);
  }
}

TEST(TopKDifferentialTest, TieHeavyCorpus) {
  // Blocks of identical docs produce long score-tie runs right at the
  // top-k boundary; ordering must stay (score desc, doc asc).
  InvertedIndex index;
  for (EntryId doc = 0; doc < 400; ++doc) {
    if (doc % 4 == 0) {
      index.AddDocument(doc, {"mining", "safety", "mining"});
    } else {
      index.AddDocument(doc, {"mining", "safety"});
    }
  }
  for (size_t k : {1u, 3u, 4u, 5u, 99u, 100u, 101u, 500u}) {
    ExpectBitIdentical(index, {"mining", "safety"}, k);
    ExpectBitIdentical(index, {"mining"}, k);
  }
}

TEST(TopKDifferentialTest, PrunedRunsReportLowerBoundMatches) {
  // On a corpus where pruning engages, matches_seen must be a lower
  // bound of (never exceed) the true conjunction size.
  std::vector<std::vector<std::string>> tokens_of;
  InvertedIndex index = BuildNamegenIndex(7, 3000, &tokens_of);
  std::string best_term;
  size_t best_df = 0;
  for (const std::string& term : index.Terms()) {
    if (index.DocFreq(term) > best_df) {
      best_df = index.DocFreq(term);
      best_term = term;
    }
  }
  TopKStats stats;
  auto pruned = RankBm25TopKConjunctive(index, {best_term}, 5, {}, &stats);
  EXPECT_EQ(pruned.size(), 5u);
  EXPECT_LE(stats.matches_seen, best_df);
  if (stats.pruned) {
    EXPECT_LT(stats.matches_seen, best_df);
  } else {
    EXPECT_EQ(stats.matches_seen, best_df);
  }
}

}  // namespace
}  // namespace authidx
