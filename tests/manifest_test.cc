#include "authidx/storage/manifest.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace authidx::storage {
namespace {

Manifest MakeManifest() {
  Manifest manifest;
  manifest.next_file_number = 42;
  manifest.wal_number = 17;
  manifest.files.push_back(
      FileMeta{3, 0, 100, "aaa", "mmm"});
  manifest.files.push_back(
      FileMeta{7, 0, 250, std::string("b\0in", 4), "zzz"});
  manifest.files.push_back(FileMeta{5, 1, 9000, "a", "z"});
  return manifest;
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  Manifest manifest = MakeManifest();
  Result<Manifest> decoded = Manifest::Decode(manifest.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->next_file_number, 42u);
  EXPECT_EQ(decoded->wal_number, 17u);
  ASSERT_EQ(decoded->files.size(), 3u);
  EXPECT_EQ(decoded->files[0], manifest.files[0]);
  EXPECT_EQ(decoded->files[1], manifest.files[1]);  // Binary key intact.
  EXPECT_EQ(decoded->files[2], manifest.files[2]);
}

TEST(ManifestTest, EmptyManifestRoundTrips) {
  Manifest manifest;
  Result<Manifest> decoded = Manifest::Decode(manifest.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->files.empty());
  EXPECT_EQ(decoded->next_file_number, 1u);
}

TEST(ManifestTest, CrcDetectsEveryByteFlip) {
  std::string encoded = MakeManifest().Encode();
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    Result<Manifest> decoded = Manifest::Decode(damaged);
    EXPECT_FALSE(decoded.ok()) << "flip at " << i << " accepted";
  }
}

TEST(ManifestTest, TruncationRejected) {
  std::string encoded = MakeManifest().Encode();
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(Manifest::Decode(encoded.substr(0, len)).ok()) << len;
  }
}

TEST(ManifestTest, LevelFilesOrdering) {
  Manifest manifest = MakeManifest();
  auto l0 = manifest.LevelFiles(0);
  ASSERT_EQ(l0.size(), 2u);
  EXPECT_EQ(l0[0].file_number, 7u);  // Newest (highest number) first.
  EXPECT_EQ(l0[1].file_number, 3u);
  auto l1 = manifest.LevelFiles(1);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1[0].file_number, 5u);
  EXPECT_TRUE(manifest.LevelFiles(2).empty());
}

TEST(ManifestTest, SaveLoadThroughFilesystem) {
  std::string dir = ::testing::TempDir() + "/manifest_test_saveload";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Manifest manifest = MakeManifest();
  ASSERT_TRUE(manifest.Save(Env::Default(), dir).ok());
  Result<Manifest> loaded = Manifest::Load(Env::Default(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->files.size(), 3u);
  EXPECT_EQ(loaded->wal_number, 17u);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, LoadMissingIsNotFound) {
  std::string dir = ::testing::TempDir() + "/manifest_test_missing";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_TRUE(Manifest::Load(Env::Default(), dir).status().IsNotFound());
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, FileNameHelpers) {
  EXPECT_EQ(TableFileName("/db", 7), "/db/000007.tbl");
  EXPECT_EQ(WalFileName("/db", 123456), "/db/123456.wal");
  EXPECT_EQ(ManifestFileName("/db"), "/db/MANIFEST");
}

}  // namespace
}  // namespace authidx::storage
