#include "authidx/index/bloom.h"

#include <gtest/gtest.h>
#include <cmath>

#include <string>
#include <vector>

#include "authidx/common/strings.h"

namespace authidx {
namespace {

std::vector<std::string> Keys(int n, const char* prefix) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    keys.push_back(StringPrintf("%s%07d", prefix, i));
  }
  return keys;
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(10000, 10);
  for (const std::string& key : Keys(10000, "in")) {
    filter.Add(key);
  }
  for (const std::string& key : Keys(10000, "in")) {
    EXPECT_TRUE(filter.MayContain(key)) << key;
  }
}

TEST(BloomTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(100, 10);
  int positives = 0;
  for (const std::string& key : Keys(1000, "x")) {
    positives += filter.MayContain(key);
  }
  EXPECT_EQ(positives, 0);
}

// FPR sweep: measured rate must be within ~2x of theory for the usual
// bits-per-key settings (theory: (1 - e^{-kn/m})^k ~ 0.61^bits).
class BloomFprTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprTest, FalsePositiveRateNearTheory) {
  const int bits_per_key = GetParam();
  constexpr int kKeys = 20000;
  BloomFilter filter(kKeys, bits_per_key);
  for (const std::string& key : Keys(kKeys, "member")) {
    filter.Add(key);
  }
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (const std::string& key : Keys(kProbes, "absent")) {
    false_positives += filter.MayContain(key);
  }
  double measured = static_cast<double>(false_positives) / kProbes;
  double theory = std::pow(0.6185, bits_per_key);
  EXPECT_LT(measured, theory * 2 + 0.002)
      << "bits/key=" << bits_per_key << " measured=" << measured;
  if (bits_per_key <= 8) {
    // Sanity floor: the filter must actually be probabilistic, not
    // degenerate (all bits set / all clear).
    EXPECT_GT(measured, theory / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprTest,
                         ::testing::Values(4, 6, 8, 10, 16));

TEST(BloomTest, SerializeDeserializePreservesBehaviour) {
  BloomFilter filter(5000, 10);
  for (const std::string& key : Keys(5000, "k")) {
    filter.Add(key);
  }
  std::string bytes = filter.Serialize();
  Result<BloomFilter> restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->probe_count(), filter.probe_count());
  EXPECT_EQ(restored->bit_count(), filter.bit_count());
  for (const std::string& key : Keys(5000, "k")) {
    EXPECT_TRUE(restored->MayContain(key));
  }
  // Same false-positive decisions bit-for-bit.
  for (const std::string& key : Keys(2000, "probe")) {
    EXPECT_EQ(filter.MayContain(key), restored->MayContain(key));
  }
}

TEST(BloomTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomFilter::Deserialize("").ok());
  EXPECT_FALSE(BloomFilter::Deserialize("\x01").ok());
  // Valid-looking header with wrong byte count.
  std::string bad;
  bad.push_back(7);    // probes.
  bad.push_back(100);  // claims 100 bytes.
  bad += "short";
  EXPECT_TRUE(BloomFilter::Deserialize(bad).status().IsCorruption());
}

TEST(BloomTest, FillRatioReflectsLoad) {
  BloomFilter filter(1000, 10);
  EXPECT_DOUBLE_EQ(filter.FillRatio(), 0.0);
  for (const std::string& key : Keys(1000, "f")) {
    filter.Add(key);
  }
  // Optimal-k filters settle near 50% fill.
  EXPECT_GT(filter.FillRatio(), 0.3);
  EXPECT_LT(filter.FillRatio(), 0.7);
}

TEST(BloomTest, TinyAndZeroExpectedKeys) {
  BloomFilter filter(0, 10);
  filter.Add("a");
  EXPECT_TRUE(filter.MayContain("a"));
  EXPECT_GE(filter.bit_count(), 64u);
}

}  // namespace
}  // namespace authidx
