#include "authidx/obs/trace_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Global allocation counter: the no-allocation test below snapshots it
// around TraceSampler::Sample to prove the disabled/untraced hot path
// never touches the heap. Every other test tolerates the counting.
namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

// noinline: when GCC inlines replaced global operators it pairs the
// caller's new with the inlined free() and emits a spurious
// -Wmismatched-new-delete.
[[gnu::noinline]] void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

[[gnu::noinline]] void operator delete(void* ptr) noexcept { std::free(ptr); }
[[gnu::noinline]] void operator delete(void* ptr, std::size_t) noexcept {
  std::free(ptr);
}

namespace authidx::obs {
namespace {

StoredTrace MakeTrace(uint64_t lo, uint64_t duration_ns) {
  StoredTrace trace;
  trace.id = TraceId{0xabcdull, lo};
  trace.unix_ms = 1700000000000ull;
  trace.opcode = "QUERY";
  trace.duration_ns = duration_ns;
  Trace tree;
  tree.AppendSpan("rpc/QUERY", 0, 0, duration_ns);
  trace.spans = tree.spans();
  return trace;
}

TEST(TraceSamplerTest, ZeroRateNeverSamples) {
  TraceSampler sampler(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sampler.Sample());
  }
}

TEST(TraceSamplerTest, RateOneAlwaysSamples) {
  TraceSampler sampler(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.Sample());
  }
}

TEST(TraceSamplerTest, SamplesExactlyOneInN) {
  TraceSampler sampler(4);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) {
    if (sampler.Sample()) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 100);
}

// The atomic ticket makes the rate exact even under contention: T
// threads drawing S tickets each sample exactly T*S/every requests
// between them, never more (no double-sampled ticket, TSan-checked).
TEST(TraceSamplerTest, ConcurrentRateStaysExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  TraceSampler sampler(4);
  std::atomic<int> sampled{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int mine = 0;
      for (int i = 0; i < kPerThread; ++i) {
        if (sampler.Sample()) {
          ++mine;
        }
      }
      sampled.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(sampled.load(), kThreads * kPerThread / 4);
}

// Sampling is on the hot path of every request when enabled, and the
// not-sampled outcome is the overwhelmingly common one: it must stay
// allocation-free.
TEST(TraceSamplerTest, SampleDoesNotAllocate) {
  TraceSampler off(0);
  TraceSampler on(128);
  uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    off.Sample();
    on.Sample();
  }
  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed), before);
}

TEST(TraceStoreTest, BucketIndexSplitsByLatencyDecade) {
  EXPECT_EQ(TraceStore::BucketIndex(0), 0u);
  EXPECT_EQ(TraceStore::BucketIndex(99'999), 0u);
  EXPECT_EQ(TraceStore::BucketIndex(100'000), 1u);
  EXPECT_EQ(TraceStore::BucketIndex(999'999), 1u);
  EXPECT_EQ(TraceStore::BucketIndex(1'000'000), 2u);
  EXPECT_EQ(TraceStore::BucketIndex(10'000'000), 3u);
  EXPECT_EQ(TraceStore::BucketIndex(100'000'000), 4u);
  EXPECT_EQ(TraceStore::BucketIndex(1'000'000'000), 5u);
  EXPECT_EQ(TraceStore::BucketIndex(~0ull), 5u);
  for (size_t i = 0; i < TraceStore::kBuckets; ++i) {
    EXPECT_FALSE(TraceStore::BucketLabel(i).empty());
  }
}

TEST(TraceStoreTest, SnapshotReturnsSlowestBucketFirst) {
  TraceStore store(4);
  store.Record(MakeTrace(1, 50'000));          // [0, 100us)
  store.Record(MakeTrace(2, 2'000'000));       // [1ms, 10ms)
  store.Record(MakeTrace(3, 1'500'000'000));   // [1s, inf)
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.total_recorded(), 3u);

  std::vector<StoredTrace> snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].duration_ns, 1'500'000'000u);
  EXPECT_EQ(snapshot[1].duration_ns, 2'000'000u);
  EXPECT_EQ(snapshot[2].duration_ns, 50'000u);
}

TEST(TraceStoreTest, EachBucketEvictsItsOldestAtCapacity) {
  TraceStore store(2);
  EXPECT_EQ(store.capacity(), 2 * TraceStore::kBuckets);
  // Five traces land in the same [0, 100us) bucket; only the two most
  // recent survive, but the total keeps counting.
  for (uint64_t i = 1; i <= 5; ++i) {
    store.Record(MakeTrace(i, 1'000 * i));
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_recorded(), 5u);
  std::vector<StoredTrace> snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].id.lo, 4u);
  EXPECT_EQ(snapshot[1].id.lo, 5u);
}

// Worker threads record concurrently; the store must never hold more
// than its capacity and must count every record (TSan-checked under
// the sanitize label).
TEST(TraceStoreTest, ConcurrentRecordRespectsCapacity) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  TraceStore store(4);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread across buckets so every ring sees contention.
        uint64_t duration =
            (i % 2 == 0) ? 1'000u : 1'000'000'000u * (t % 2 + 1);
        store.Record(
            MakeTrace(static_cast<uint64_t>(t * kPerThread + i), duration));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.total_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(store.size(), store.capacity());
  EXPECT_LE(store.Snapshot().size(), store.capacity());
}

TEST(TraceStoreTest, RenderTextShowsIdsOpcodesAndSpans) {
  TraceStore store(4);
  StoredTrace trace = MakeTrace(0xbeef, 2'000'000);
  std::string hex = trace.id.ToHex();
  store.Record(trace);
  std::string text = store.RenderText();
  EXPECT_NE(text.find(hex), std::string::npos) << text;
  EXPECT_NE(text.find("QUERY"), std::string::npos) << text;
  EXPECT_NE(text.find("rpc/QUERY"), std::string::npos) << text;
  EXPECT_NE(text.find("recorded=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace authidx::obs
