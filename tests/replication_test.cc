// WAL-shipping replication end to end over real loopback sockets:
// snapshot bootstrap, record catch-up across WAL switches, idempotent
// re-delivery after a follower crash, NOT_PRIMARY on follower
// mutations, client read failover when the primary is down, snapshot
// fallback after a primary restart garbage-collects the follower's
// cursor — and a crash-consistency sweep that kills the follower's
// filesystem at every write-path op during catch-up (label `fault`).

#include "authidx/net/replica.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/core/author_index.h"
#include "authidx/net/client.h"
#include "authidx/net/server.h"
#include "authidx/parse/tsv.h"
#include "authidx/storage/engine.h"
#include "fault_env.h"

namespace authidx::net {
namespace {

// Pid-unique scratch root: the same binary from two build trees (e.g.
// the asan and tsan presets) may run concurrently and must not share
// directories.
std::string ScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string TsvLine(int i) {
  return StringPrintf(
      "Author%03d, Test\tReplicated Title Number %03d\t95:%d (19%02d)", i,
      i, 100 + i, 50 + (i % 50));
}

void AddEntries(core::AuthorIndex* catalog, int from, int count) {
  for (int i = from; i < from + count; ++i) {
    Result<Entry> entry = ParseTsvLine(TsvLine(i));
    ASSERT_TRUE(entry.ok()) << entry.status();
    Result<EntryId> id = catalog->Add(std::move(*entry));
    ASSERT_TRUE(id.ok()) << id.status();
  }
}

// Persistent primary catalog + server on an ephemeral port. The
// heartbeat interval is cranked down so CatchUpOnce converges fast.
struct Primary {
  std::string dir;
  std::unique_ptr<core::AuthorIndex> catalog;
  std::unique_ptr<Server> server;

  explicit Primary(std::string dir_in, storage::EngineOptions eopts = {})
      : dir(std::move(dir_in)) {
    Result<std::unique_ptr<core::AuthorIndex>> opened =
        core::AuthorIndex::OpenPersistent(dir, eopts);
    AUTHIDX_CHECK_OK(opened.status());
    catalog = std::move(*opened);
    StartServer();
  }

  void StartServer() {
    ServerOptions sopts;
    sopts.metrics = catalog->mutable_metrics();
    sopts.repl_heartbeat_interval_ms = 20;
    server = std::make_unique<Server>(catalog.get(), sopts);
    AUTHIDX_CHECK_OK(server->Start());
  }

  // Simulates a primary restart: stop serving, close the store, reopen
  // and serve again (recovery typically flushes recovered state and
  // garbage-collects the old WALs).
  void Restart() {
    server->Stop();
    server.reset();
    catalog.reset();
    Result<std::unique_ptr<core::AuthorIndex>> opened =
        core::AuthorIndex::OpenPersistent(dir);
    AUTHIDX_CHECK_OK(opened.status());
    catalog = std::move(*opened);
    StartServer();
  }
};

// Replica catalog + follower targeting `primary_port`.
struct Replica {
  std::string dir;
  std::unique_ptr<core::AuthorIndex> catalog;
  std::unique_ptr<ReplicationFollower> follower;
  bool open_ok = false;

  Replica(std::string dir_in, int primary_port, Env* env = nullptr)
      : dir(std::move(dir_in)) {
    storage::EngineOptions eopts;
    eopts.env = env;
    Result<std::unique_ptr<core::AuthorIndex>> opened =
        core::AuthorIndex::OpenReplica(dir, eopts);
    if (!opened.ok()) {
      return;  // The fault sweep opens on a failing filesystem.
    }
    open_ok = true;
    catalog = std::move(*opened);
    ReplicaOptions ropts;
    ropts.primary_port = primary_port;
    ropts.io_timeout_ms = 2000;
    follower = std::make_unique<ReplicationFollower>(catalog.get(), dir,
                                                     ropts);
  }

  uint64_t CounterValue(const std::string& name) const {
    obs::MetricsSnapshot snapshot = catalog->GetMetricsSnapshot();
    const obs::MetricValue* value = snapshot.Find(name);
    return value != nullptr ? value->counter : 0;
  }

  void ExpectClean() const {
    Result<storage::IntegrityReport> report =
        catalog->storage_engine()->VerifyIntegrity();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->clean()) << report->manifest_status;
  }
};

TEST(ReplicationTest, SnapshotBootstrapPopulatesEmptyFollower) {
  Primary primary(ScratchDir("repl_boot_primary"));
  AddEntries(primary.catalog.get(), 0, 20);
  ASSERT_TRUE(primary.catalog->Flush().ok());  // Some entries in SSTs...
  AddEntries(primary.catalog.get(), 20, 5);    // ...and some in the WAL.

  Replica replica(ScratchDir("repl_boot_replica"),
                  primary.server->port());
  ASSERT_TRUE(replica.open_ok);
  Status s = replica.follower->CatchUpOnce();
  ASSERT_TRUE(s.ok()) << s;

  EXPECT_EQ(replica.catalog->entry_count(), 25u);
  EXPECT_GT(
      replica.CounterValue("authidx_repl_snapshot_pairs_applied_total"),
      0u);
  Result<query::QueryResult> hits =
      replica.catalog->Search("author:author007");
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_EQ(hits->total_matches, 1u);
  replica.ExpectClean();
}

TEST(ReplicationTest, StreamsRecordsAcrossWalSwitches) {
  // A small memtable makes every flush seal the live WAL and open a
  // new one, so the stream must follow the cursor across WAL switches.
  storage::EngineOptions eopts;
  eopts.memtable_bytes = 4 * 1024;
  Primary primary(ScratchDir("repl_switch_primary"), eopts);

  Replica replica(ScratchDir("repl_switch_replica"),
                  primary.server->port());
  ASSERT_TRUE(replica.open_ok);
  // Initial sync against the empty primary plants a real cursor, so
  // everything after this arrives as REPL_RECORDS, never a snapshot.
  ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
  ASSERT_EQ(replica.catalog->entry_count(), 0u);

  // Keep the subscription live (pinning WALs on the primary) while
  // entries and explicit flushes force several WAL switches under it.
  ASSERT_TRUE(replica.follower->Start().ok());
  constexpr int kTotal = 30;
  for (int batch = 0; batch < 3; ++batch) {
    AddEntries(primary.catalog.get(), batch * (kTotal / 3), kTotal / 3);
    ASSERT_TRUE(primary.catalog->Flush().ok());
  }
  for (int i = 0; i < 400 && replica.catalog->entry_count() < kTotal;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  replica.follower->Stop();

  EXPECT_EQ(replica.catalog->entry_count(),
            static_cast<size_t>(kTotal));
  EXPECT_GE(replica.CounterValue("authidx_repl_records_applied_total"),
            static_cast<uint64_t>(kTotal));
  EXPECT_EQ(
      replica.CounterValue("authidx_repl_snapshot_pairs_applied_total"),
      0u);
  replica.ExpectClean();
}

TEST(ReplicationTest, DuplicateRedeliveryAfterCursorRollbackIsANoOp) {
  Primary primary(ScratchDir("repl_dup_primary"));
  AddEntries(primary.catalog.get(), 0, 10);

  std::string replica_dir = ScratchDir("repl_dup_replica");
  std::string cursor_bytes;
  {
    Replica replica(replica_dir, primary.server->port());
    ASSERT_TRUE(replica.open_ok);
    ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
    ASSERT_EQ(replica.catalog->entry_count(), 10u);
    // Snapshot the durable cursor as of "now"; entries added after this
    // point will be re-delivered once we roll the cursor back.
    storage::ReplicationApplier applier(replica.catalog->storage_engine(),
                                        replica_dir);
    Result<std::string> bytes =
        Env::Default()->ReadFileToString(applier.position_path());
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    cursor_bytes = std::move(*bytes);

    AddEntries(primary.catalog.get(), 10, 10);
    Status caught_up = replica.follower->CatchUpOnce();
    ASSERT_TRUE(caught_up.ok()) << caught_up;
    ASSERT_EQ(replica.catalog->entry_count(), 20u);
  }

  // "Crash" the follower back to the stale cursor: the store keeps all
  // 20 entries, but the cursor claims only the first 10 were applied —
  // exactly the window a crash between apply and commit leaves behind.
  {
    storage::ReplicationApplier probe(nullptr, replica_dir);
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(probe.position_path(),
                                            cursor_bytes)
                    .ok());
  }

  Replica reopened(replica_dir, primary.server->port());
  ASSERT_TRUE(reopened.open_ok);
  ASSERT_TRUE(reopened.follower->CatchUpOnce().ok());
  // Entries 10..19 were delivered twice; the apply path must dedupe.
  EXPECT_EQ(reopened.catalog->entry_count(), 20u);
  Result<query::QueryResult> hits =
      reopened.catalog->Search("author:author015");
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_EQ(hits->total_matches, 1u);
  reopened.ExpectClean();
}

TEST(ReplicationTest, FollowerResultCacheInvalidatedByApply) {
  // A follower serving cached reads must never return a stale result
  // after replicated records apply: ApplyReplicatedRecord bumps the
  // follower's data epoch exactly like a local ingest would.
  Primary primary(ScratchDir("repl_cache_primary"));
  AddEntries(primary.catalog.get(), 0, 5);

  Replica replica(ScratchDir("repl_cache_replica"),
                  primary.server->port());
  ASSERT_TRUE(replica.open_ok);
  replica.catalog->EnableResultCache(1 << 20);
  ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
  ASSERT_EQ(replica.catalog->entry_count(), 5u);

  // Prime the cache, then hit it.
  Result<query::QueryResult> first =
      replica.catalog->Search("author:author003");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->total_matches, 1u);
  ASSERT_TRUE(replica.catalog->Search("author:author003").ok());
  EXPECT_EQ(replica.CounterValue("authidx_result_cache_hits_total"), 1u);

  // New records arrive: the apply must invalidate, not serve stale.
  const uint64_t epoch_before = replica.catalog->data_epoch();
  AddEntries(primary.catalog.get(), 5, 3);
  ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
  ASSERT_EQ(replica.catalog->entry_count(), 8u);
  EXPECT_GT(replica.catalog->data_epoch(), epoch_before);

  Result<query::QueryResult> after =
      replica.catalog->Search("author:author003");
  ASSERT_TRUE(after.ok());
  // Still one hit for author003 (ids 5-7 are author005..007), but the
  // probe must have been an invalidation + miss, not a cache hit.
  EXPECT_EQ(replica.CounterValue("authidx_result_cache_hits_total"), 1u);
  EXPECT_GE(replica.CounterValue("authidx_result_cache_invalidations_total"),
            1u);
  replica.ExpectClean();
}

TEST(ReplicationTest, FollowerServerRejectsMutationsAsNotPrimary) {
  Primary primary(ScratchDir("repl_np_primary"));
  AddEntries(primary.catalog.get(), 0, 3);

  Replica replica(ScratchDir("repl_np_replica"), primary.server->port());
  ASSERT_TRUE(replica.open_ok);
  ASSERT_TRUE(replica.follower->CatchUpOnce().ok());

  // Front the replica catalog with its own server: reads flow, ADD is
  // refused — and refused without retries (requests_total counts one).
  ServerOptions sopts;
  sopts.metrics = replica.catalog->mutable_metrics();
  Server replica_server(replica.catalog.get(), sopts);
  ASSERT_TRUE(replica_server.Start().ok());

  ClientOptions copts;
  copts.port = replica_server.port();
  copts.retry.max_attempts = 4;
  copts.retry.base_delay_us = 100;
  Client client(copts);

  Result<WireQueryResult> reads = client.Query("author:author001");
  ASSERT_TRUE(reads.ok()) << reads.status();
  EXPECT_EQ(reads->total_matches, 1u);

  Result<uint64_t> added = client.Add({TsvLine(90)});
  ASSERT_FALSE(added.ok());
  EXPECT_TRUE(added.status().IsFailedPrecondition()) << added.status();

  obs::MetricsSnapshot snapshot = replica.catalog->GetMetricsSnapshot();
  const obs::MetricValue* requests =
      snapshot.Find("authidx_server_requests_total");
  ASSERT_NE(requests, nullptr);
  // One QUERY + one ADD: NOT_PRIMARY is permanent, never re-sent.
  EXPECT_EQ(requests->counter, 2u);
  replica_server.Stop();
}

TEST(ReplicationTest, ClientFailsOverReadsWhenPrimaryStops) {
  Primary primary(ScratchDir("repl_fo_primary"));
  AddEntries(primary.catalog.get(), 0, 5);

  Replica replica(ScratchDir("repl_fo_replica"), primary.server->port());
  ASSERT_TRUE(replica.open_ok);
  ASSERT_TRUE(replica.follower->CatchUpOnce().ok());

  ServerOptions sopts;
  sopts.metrics = replica.catalog->mutable_metrics();
  Server replica_server(replica.catalog.get(), sopts);
  ASSERT_TRUE(replica_server.Start().ok());

  ClientOptions copts;
  copts.port = primary.server->port();
  copts.replicas = {"127.0.0.1:" +
                    std::to_string(replica_server.port())};
  copts.retry.max_attempts = 4;
  copts.retry.base_delay_us = 100;
  copts.io_timeout_ms = 1000;
  Client client(copts);

  // Warm read against the live primary.
  Result<WireQueryResult> warm = client.Query("author:author002");
  ASSERT_TRUE(warm.ok()) << warm.status();

  primary.server->Stop();

  Result<WireQueryResult> failed_over = client.Query("author:author002");
  ASSERT_TRUE(failed_over.ok()) << failed_over.status();
  EXPECT_EQ(failed_over->total_matches, 1u);
  EXPECT_EQ(client.current_endpoint(),
            "127.0.0.1:" + std::to_string(replica_server.port()));

  // Mutations stay pinned to the dead primary rather than hitting the
  // replica (which would NOT_PRIMARY them anyway).
  Result<uint64_t> added = client.Add({TsvLine(91)});
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(replica.catalog->entry_count(), 5u);
  replica_server.Stop();
}

TEST(ReplicationTest, PrimaryRestartFallsBackToSnapshotCatchUp) {
  Primary primary(ScratchDir("repl_restart_primary"));
  AddEntries(primary.catalog.get(), 0, 8);

  std::string replica_dir = ScratchDir("repl_restart_replica");
  {
    Replica replica(replica_dir, primary.server->port());
    ASSERT_TRUE(replica.open_ok);
    ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
    ASSERT_EQ(replica.catalog->entry_count(), 8u);
  }

  // Restart the primary: recovery flushes the recovered memtable and
  // garbage-collects the WAL the follower's cursor points into. The
  // subscribe must come back as a snapshot bootstrap, not an error.
  primary.Restart();
  AddEntries(primary.catalog.get(), 8, 4);

  Replica reopened(replica_dir, primary.server->port());
  ASSERT_TRUE(reopened.open_ok);
  Status s = reopened.follower->CatchUpOnce();
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(reopened.catalog->entry_count(), 12u);
  reopened.ExpectClean();
}

// Crash-consistency sweep: kill the follower's filesystem at write-path
// op k for EVERY k observed in a fault-free catch-up, "crash" (drop the
// follower), reopen on a healthy filesystem, catch up again, and
// require convergence to the primary with a clean store. The cursor
// sidecar commits go through the same Env, so the sweep also covers a
// crash between apply and commit (re-delivery must dedupe).
TEST(ReplicationTest, FollowerCrashSweepAtEveryApplyOp) {
  Primary primary(ScratchDir("repl_sweep_primary"));
  AddEntries(primary.catalog.get(), 0, 8);
  ASSERT_TRUE(primary.catalog->Flush().ok());
  AddEntries(primary.catalog.get(), 8, 4);
  constexpr size_t kTotal = 12;

  // Fault-free calibration run counts the write-path ops a full
  // bootstrap + catch-up performs.
  uint64_t total_ops = 0;
  {
    tests::FaultEnv fenv;
    Replica replica(ScratchDir("repl_sweep_calibrate"),
                    primary.server->port(), &fenv);
    ASSERT_TRUE(replica.open_ok);
    ASSERT_TRUE(replica.follower->CatchUpOnce().ok());
    ASSERT_EQ(replica.catalog->entry_count(), kTotal);
    total_ops = fenv.write_ops();
  }
  ASSERT_GT(total_ops, 0u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE(StringPrintf("fail from op %llu of %llu",
                              static_cast<unsigned long long>(k),
                              static_cast<unsigned long long>(total_ops)));
    std::string dir =
        ScratchDir(StringPrintf("repl_sweep_%llu",
                                static_cast<unsigned long long>(k)));
    {
      tests::FaultEnv fenv;
      fenv.FailFrom(k);
      Replica doomed(dir, primary.server->port(), &fenv);
      if (doomed.open_ok) {
        // The catch-up may fail anywhere — mid-snapshot, mid-batch,
        // mid-cursor-commit — or even limp through; either way the
        // follower "crashes" here with whatever made it to disk.
        doomed.follower->CatchUpOnce().IgnoreError();
      }
    }
    Replica recovered(dir, primary.server->port());
    ASSERT_TRUE(recovered.open_ok);
    Status s = recovered.follower->CatchUpOnce();
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_EQ(recovered.catalog->entry_count(), kTotal);
    recovered.ExpectClean();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace authidx::net
