#include "authidx/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/model/record.h"

namespace authidx::obs {
namespace {

Entry MakeEntry(const std::string& surname, const std::string& given,
                const std::string& title, uint32_t volume, uint32_t page,
                uint32_t year) {
  Entry entry;
  entry.author.surname = surname;
  entry.author.given = given;
  entry.title = title;
  entry.citation.volume = volume;
  entry.citation.page = page;
  entry.citation.year = year;
  return entry;
}

TEST(TraceTest, NestedSpansRecordDepths) {
  Trace trace;
  {
    TraceSpan root(&trace, nullptr, "root");
    {
      TraceSpan child_a(&trace, nullptr, "child_a");
      TraceSpan grandchild(&trace, nullptr, "grandchild");
    }
    TraceSpan child_b(&trace, nullptr, "child_b");
  }
  const std::vector<Trace::Span>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "child_a");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[3].name, "child_b");
  EXPECT_EQ(spans[3].depth, 1);
  for (const Trace::Span& span : spans) {
    EXPECT_GT(span.duration_ns, 0u) << span.name;
  }
  // Parents cover their children.
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
  EXPECT_GE(spans[1].duration_ns, spans[2].duration_ns);
}

TEST(TraceTest, InactiveSpanIsFree) {
  // Null trace + null histogram: must be safe and record nowhere.
  TraceSpan inactive(nullptr, nullptr, "nothing");
  EXPECT_EQ(inactive.Stop(), 0u);
}

TEST(TraceTest, StopIsIdempotentAndRecordsToHistogram) {
  LatencyHistogram hist;
  Trace trace;
  TraceSpan span(&trace, &hist, "timed");
  uint64_t elapsed = span.Stop();
  EXPECT_GT(elapsed, 0u);
  EXPECT_EQ(span.Stop(), 0u);  // Second stop is a no-op.
  EXPECT_EQ(hist.Count(), 1u);
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].duration_ns, elapsed);
}

TEST(TraceTest, HistogramOnlySpanSkipsTraceBuffer) {
  LatencyHistogram hist;
  {
    TraceSpan span(nullptr, &hist, "histogram_only");
  }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(TraceTest, ToStringRendersTree) {
  Trace trace;
  size_t root = trace.StartSpan("query");
  size_t parse = trace.StartSpan("parse");
  trace.EndSpan(parse, 400);
  size_t execute = trace.StartSpan("execute");
  size_t plan = trace.StartSpan("plan");
  trace.EndSpan(plan, 100);
  trace.EndSpan(execute, 500);
  trace.EndSpan(root, 1000);

  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("├─ parse"), std::string::npos);
  EXPECT_NE(rendered.find("└─ execute"), std::string::npos);
  EXPECT_NE(rendered.find("└─ plan"), std::string::npos);
  EXPECT_NE(rendered.find("100.0%"), std::string::npos);  // Root.
  EXPECT_NE(rendered.find("50.0%"), std::string::npos);   // Execute.
}

TEST(TraceTest, SearchTracedAttachesExecutorStageSpans) {
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(catalog->Add(MakeEntry("Doe", "Jane", "Coal Mining Economics",
                                     12, 345, 1975))
                  .ok());
  ASSERT_TRUE(catalog->Add(MakeEntry("Doe", "John", "River Hydrology", 12,
                                     400, 1975))
                  .ok());

  Trace trace;
  auto result = catalog->SearchTraced("author:doe coal", &trace);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_matches, 1u);

  std::vector<std::string> names;
  for (const Trace::Span& span : trace.spans()) {
    names.push_back(span.name);
  }
  const std::vector<std::string> expected = {
      "query", "parse", "execute", "plan", "candidates", "filter", "order"};
  EXPECT_EQ(names, expected);
  // Stage spans sit beneath execute, which sits beneath the root.
  EXPECT_EQ(trace.spans()[0].depth, 0);  // query
  EXPECT_EQ(trace.spans()[1].depth, 1);  // parse
  EXPECT_EQ(trace.spans()[2].depth, 1);  // execute
  EXPECT_EQ(trace.spans()[3].depth, 2);  // plan
  EXPECT_EQ(trace.spans()[6].depth, 2);  // order

  // The same run also fed the always-on metric instruments.
  MetricsSnapshot snap = catalog->GetMetricsSnapshot();
  const MetricValue* queries = snap.Find("authidx_queries_total");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->counter, 1u);
  const MetricValue* stage_plan =
      snap.Find("authidx_query_stage_plan_duration_ns");
  ASSERT_NE(stage_plan, nullptr);
  EXPECT_EQ(stage_plan->histogram.count, 1u);
}

TEST(TraceTest, UntracedSearchStillCountsMetrics) {
  auto catalog = core::AuthorIndex::Create();
  ASSERT_TRUE(
      catalog->Add(MakeEntry("Roe", "Ada", "Delta Soils", 3, 14, 1980)).ok());
  ASSERT_TRUE(catalog->Search("author:roe").ok());
  ASSERT_TRUE(catalog->Search("soils").ok());
  MetricsSnapshot snap = catalog->GetMetricsSnapshot();
  const MetricValue* queries = snap.Find("authidx_queries_total");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->counter, 2u);
  const MetricValue* duration = snap.Find("authidx_query_duration_ns");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->histogram.count, 2u);
  const MetricValue* exact = snap.Find("authidx_query_plan_author_exact_total");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->counter, 1u);
}

}  // namespace
}  // namespace authidx::obs
