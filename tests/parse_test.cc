#include <gtest/gtest.h>

#include "authidx/parse/citation.h"
#include "authidx/parse/name.h"
#include "authidx/parse/tsv.h"
#include "authidx/workload/sample_data.h"

namespace authidx {
namespace {

TEST(CitationParseTest, SourceDocumentForms) {
  Result<Citation> c = ParseCitation("95:691 (1993)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (Citation{95, 691, 1993}));

  EXPECT_EQ(*ParseCitation("69:1 (1966)"), (Citation{69, 1, 1966}));
  EXPECT_EQ(*ParseCitation("  82:1241 (1980)  "), (Citation{82, 1241, 1980}));
  EXPECT_EQ(*ParseCitation("91:973(1989)"), (Citation{91, 973, 1989}));
  EXPECT_EQ(*ParseCitation("91:973 ( 1989 )"), (Citation{91, 973, 1989}));
}

TEST(CitationParseTest, Rejections) {
  EXPECT_FALSE(ParseCitation("").ok());
  EXPECT_FALSE(ParseCitation("95:691").ok());
  EXPECT_FALSE(ParseCitation("95-691 (1993)").ok());
  EXPECT_FALSE(ParseCitation("95:691 1993").ok());
  EXPECT_FALSE(ParseCitation("95:691 (1993) extra").ok());
  EXPECT_FALSE(ParseCitation("vol:691 (1993)").ok());
  EXPECT_FALSE(ParseCitation("95:691 (1993").ok());
}

TEST(NameParseTest, SurnameGiven) {
  Result<AuthorName> n = ParseAuthorName("Minow, Martha");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->surname, "Minow");
  EXPECT_EQ(n->given, "Martha");
  EXPECT_TRUE(n->suffix.empty());
  EXPECT_FALSE(n->student_material);
}

TEST(NameParseTest, StudentAsterisk) {
  Result<AuthorName> n = ParseAuthorName("Abdalla, Tarek F.*");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->surname, "Abdalla");
  EXPECT_EQ(n->given, "Tarek F.");
  EXPECT_TRUE(n->student_material);
}

TEST(NameParseTest, GenerationalSuffixes) {
  Result<AuthorName> n = ParseAuthorName("Arceneaux, Webster J., III");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->suffix, "III");
  EXPECT_EQ(n->given, "Webster J.");

  n = ParseAuthorName("Bean, Ralph J., Jr.");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->suffix, "Jr.");

  n = ParseAuthorName("Rockefeller, John D., IV*");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->suffix, "IV");
  EXPECT_TRUE(n->student_material);
}

TEST(NameParseTest, HonorificsStayInGiven) {
  Result<AuthorName> n = ParseAuthorName("Byrd, Hon. Robert C.");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->surname, "Byrd");
  EXPECT_EQ(n->given, "Hon. Robert C.");
  EXPECT_TRUE(n->suffix.empty());
}

TEST(NameParseTest, SurnameOnlyAndRejections) {
  Result<AuthorName> n = ParseAuthorName("Cox");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->surname, "Cox");
  EXPECT_TRUE(n->given.empty());

  EXPECT_FALSE(ParseAuthorName("").ok());
  EXPECT_FALSE(ParseAuthorName("*").ok());
  EXPECT_FALSE(ParseAuthorName(", Martha").ok());
}

TEST(NameParseTest, RoundTripThroughIndexForm) {
  const char* cases[] = {
      "Minow, Martha",
      "Abdalla, Tarek F.*",
      "Arceneaux, Webster J., III",
      "Bean, Ralph J., Jr.",
      "Cox",
      "Byrd, Hon. Robert C.",
  };
  for (const char* text : cases) {
    Result<AuthorName> n = ParseAuthorName(text);
    ASSERT_TRUE(n.ok()) << text;
    EXPECT_EQ(n->ToIndexForm(), text);
  }
}

TEST(TsvTest, LineRoundTrip) {
  Entry entry;
  entry.author = {"Lewin", "Jeff L.", "", false};
  entry.title = "The Silent Revolution in West Virginia's Law of Nuisance";
  entry.citation = {92, 235, 1989};
  entry.coauthors = {"Peng, Syd S.", "Ameri, Samuel J."};
  std::string line = EntryToTsvLine(entry);
  Result<Entry> parsed = ParseTsvLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, entry);
}

TEST(TsvTest, DocumentRoundTripWithCommentsAndBlanks) {
  std::string doc =
      "# comment line\n"
      "\n"
      "Minow, Martha\tAll in the Family\t95:275 (1992)\n"
      "\r\n"
      "Cox, Archibald\tEthics in Government\t94:281 (1991)\tEllis, Larry R.\n";
  Result<std::vector<Entry>> entries = ParseTsv(doc);
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].author.surname, "Minow");
  EXPECT_EQ((*entries)[1].coauthors,
            std::vector<std::string>{"Ellis, Larry R."});
}

TEST(TsvTest, ErrorsCarryLineNumbers) {
  std::string doc =
      "Minow, Martha\tAll in the Family\t95:275 (1992)\n"
      "broken line without tabs\n";
  Result<std::vector<Entry>> entries = ParseTsv(doc);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.status().message().find("line 2"), std::string::npos)
      << entries.status();
}

TEST(TsvTest, FieldCountValidation) {
  EXPECT_FALSE(ParseTsvLine("one\ttwo").ok());
  EXPECT_FALSE(ParseTsvLine("a\tb\tc\td\te").ok());
}

TEST(SampleDataTest, EmbeddedCorpusParsesCompletely) {
  Result<std::vector<Entry>> entries = workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_GE(entries->size(), 90u);
  // Spot checks against the source document.
  bool found_arceneaux = false, found_student = false, found_coauthors = false;
  for (const Entry& e : *entries) {
    EXPECT_TRUE(ValidateEntry(e).ok()) << e.title;
    if (e.author.surname == "Arceneaux") {
      found_arceneaux = true;
      EXPECT_EQ(e.author.suffix, "III");
      EXPECT_EQ(e.citation, (Citation{95, 691, 1993}));
    }
    if (e.author.student_material) {
      found_student = true;
    }
    if (!e.coauthors.empty()) {
      found_coauthors = true;
    }
  }
  EXPECT_TRUE(found_arceneaux);
  EXPECT_TRUE(found_student);
  EXPECT_TRUE(found_coauthors);
}

}  // namespace
}  // namespace authidx
