#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "authidx/index/inverted.h"
#include "authidx/index/ranker.h"
#include "authidx/text/stem.h"
#include "authidx/text/tokenize.h"

namespace authidx {
namespace {

InvertedIndex BuildSmallIndex() {
  InvertedIndex index;
  index.AddDocument(0, text::Tokenize("Strip Mining in West Virginia"));
  index.AddDocument(1, text::Tokenize("Coal Mining Safety Regulation"));
  index.AddDocument(2, text::Tokenize("The Law of Coal, Oil and Gas"));
  index.AddDocument(3, text::Tokenize("Mining Mining Mining"));  // tf=3.
  index.AddDocument(4, text::Tokenize("Comparative Negligence"));
  return index;
}

TEST(InvertedTest, DocFreqAndPostings) {
  InvertedIndex index = BuildSmallIndex();
  std::string mine = text::PorterStem("mining");
  EXPECT_EQ(index.DocFreq(mine), 3u);
  EXPECT_EQ(index.DocFreq("coal"), 2u);
  EXPECT_EQ(index.DocFreq("nonexistent"), 0u);
  EXPECT_EQ(index.GetDocs(mine), (std::vector<EntryId>{0, 1, 3}));
  auto postings = index.GetPostings(mine);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[2].doc, 3u);
  EXPECT_EQ(postings[2].freq, 3u);  // Repeated token counted.
  EXPECT_EQ(postings[0].freq, 1u);
}

TEST(InvertedTest, CountersAndLengths) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_EQ(index.doc_count(), 5u);
  EXPECT_GT(index.term_count(), 5u);
  EXPECT_EQ(index.DocLength(3), 3u);
  EXPECT_EQ(index.DocLength(999), 0u);
  EXPECT_GT(index.total_tokens(), 10u);
  EXPECT_GT(index.CompressedBytes(), 0u);
}

TEST(InvertedTest, OutOfOrderDocRejected) {
  InvertedIndex index;
  EXPECT_TRUE(index.AddDocument(5, {"a"}));
  EXPECT_FALSE(index.AddDocument(3, {"b"}));
  EXPECT_TRUE(index.AddDocument(5, {"c"}));  // Equal id allowed.
  EXPECT_TRUE(index.AddDocument(9, {"d"}));
}

TEST(InvertedTest, UnknownTermIsEmptyNotError) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_TRUE(index.GetDocs("zzz").empty());
  EXPECT_TRUE(index.GetPostings("zzz").empty());
}

TEST(InvertedTest, MatchesBruteForceOverCorpus) {
  // Index 200 two-term docs; every term's postings must equal the
  // brute-force scan.
  InvertedIndex index;
  std::vector<std::vector<std::string>> docs;
  for (EntryId i = 0; i < 200; ++i) {
    std::vector<std::string> tokens = {
        "t" + std::to_string(i % 7), "t" + std::to_string(i % 13)};
    index.AddDocument(i, tokens);
    docs.push_back(tokens);
  }
  for (int t = 0; t < 13; ++t) {
    std::string term = "t" + std::to_string(t);
    std::vector<EntryId> expected;
    for (EntryId i = 0; i < 200; ++i) {
      const auto& tokens = docs[i];
      if (std::find(tokens.begin(), tokens.end(), term) != tokens.end()) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(index.GetDocs(term), expected) << term;
  }
}

TEST(InvertedTest, MinDocTokensTracksShortestDoc) {
  InvertedIndex index;
  EXPECT_EQ(index.min_doc_tokens(), 0u);  // Empty index sentinel.
  index.AddDocument(0, {"a", "b", "c", "d"});
  EXPECT_EQ(index.min_doc_tokens(), 4u);
  index.AddDocument(1, {"a", "b"});
  EXPECT_EQ(index.min_doc_tokens(), 2u);
  index.AddDocument(2, {"a", "b", "c"});
  EXPECT_EQ(index.min_doc_tokens(), 2u);  // Minimum, not latest.
}

TEST(CursorTest, UnknownTermIsEmpty) {
  InvertedIndex index = BuildSmallIndex();
  InvertedIndex::Cursor cursor = index.OpenCursor("zzz");
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(cursor.doc_freq(), 0u);
  EXPECT_FALSE(cursor.ShallowSeek(0));
}

TEST(CursorTest, WalksPostingsInOrder) {
  InvertedIndex index;
  // Three blocks: 32 + 32 + 6 postings with varying freqs.
  std::vector<Posting> expected;
  for (EntryId i = 0; i < 70; ++i) {
    EntryId doc = i * 3;  // Gaps of 3.
    uint32_t freq = 1 + (i % 4);
    std::vector<std::string> tokens(freq, "term");
    index.AddDocument(doc, tokens);
    expected.push_back({doc, freq});
  }
  InvertedIndex::Cursor cursor = index.OpenCursor("term");
  EXPECT_EQ(cursor.doc_freq(), 70u);
  EXPECT_EQ(cursor.max_freq(), 4u);
  ASSERT_EQ(cursor.block_count(), 3u);
  EXPECT_EQ(cursor.block_last_doc(0), expected[31].doc);
  EXPECT_EQ(cursor.block_last_doc(1), expected[63].doc);
  EXPECT_EQ(cursor.block_last_doc(2), expected[69].doc);
  for (const Posting& p : expected) {
    ASSERT_TRUE(cursor.ShallowSeek(p.doc));
    cursor.Seek(p.doc);
    EXPECT_EQ(cursor.doc(), p.doc);
    EXPECT_EQ(cursor.freq(), p.freq);
  }
  EXPECT_FALSE(cursor.ShallowSeek(expected.back().doc + 1));
}

TEST(CursorTest, SeekLandsOnNextDocAtOrAfterTarget) {
  InvertedIndex index;
  for (EntryId doc : {2u, 4u, 8u, 16u, 32u, 64u}) {
    index.AddDocument(doc, {"term"});
  }
  InvertedIndex::Cursor cursor = index.OpenCursor("term");
  ASSERT_TRUE(cursor.ShallowSeek(5));
  cursor.Seek(5);
  EXPECT_EQ(cursor.doc(), 8u);  // First doc >= 5.
}

TEST(CursorTest, ShallowSeekSkipsBlockDecoding) {
  InvertedIndex index;
  for (EntryId i = 0; i < 320; ++i) {  // 10 full blocks.
    index.AddDocument(i, {"term"});
  }
  InvertedIndex::Cursor cursor = index.OpenCursor("term");
  // Jump straight to the last block: only it should be decoded.
  ASSERT_TRUE(cursor.ShallowSeek(319));
  cursor.Seek(319);
  EXPECT_EQ(cursor.doc(), 319u);
  EXPECT_EQ(cursor.decoded_postings(), 32u);  // One block, not ten.
}

TEST(CursorTest, BlockMaxFreqBoundsBlockContents) {
  InvertedIndex index;
  for (EntryId i = 0; i < 100; ++i) {
    uint32_t freq = (i == 50) ? 9u : 1u;  // One spike in block 1.
    index.AddDocument(i, std::vector<std::string>(freq, "term"));
  }
  InvertedIndex::Cursor cursor = index.OpenCursor("term");
  ASSERT_EQ(cursor.block_count(), 4u);
  EXPECT_EQ(cursor.block_max_freq(0), 1u);
  EXPECT_EQ(cursor.block_max_freq(1), 9u);
  EXPECT_EQ(cursor.block_max_freq(2), 1u);
  EXPECT_EQ(cursor.block_max_freq(3), 1u);
  EXPECT_EQ(cursor.max_freq(), 9u);
}

TEST(RankerTest, EmptyInputs) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_TRUE(RankBm25(index, {"coal"}, 0).empty());
  EXPECT_TRUE(RankBm25(index, {}, 10).empty());
  EXPECT_TRUE(RankBm25(InvertedIndex(), {"coal"}, 10).empty());
  EXPECT_TRUE(RankBm25(index, {"unknownterm"}, 10).empty());
}

TEST(RankerTest, HigherTfRanksHigherForEqualLengthDocs) {
  InvertedIndex index;
  index.AddDocument(0, {"coal", "mine", "law"});
  index.AddDocument(1, {"coal", "coal", "coal"});
  index.AddDocument(2, {"tax", "law", "act"});
  auto ranked = RankBm25(index, {"coal"}, 10);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].doc, 1u);  // tf 3 beats tf 1.
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(RankerTest, RareTermsOutweighCommonOnes) {
  InvertedIndex index;
  // "common" in every doc; "rare" only in doc 7.
  for (EntryId i = 0; i < 20; ++i) {
    std::vector<std::string> tokens = {"common", "filler"};
    if (i == 7) {
      tokens.push_back("rare");
    }
    index.AddDocument(i, tokens);
  }
  auto ranked = RankBm25(index, {"common", "rare"}, 20);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].doc, 7u);  // The rare-term doc dominates.
}

TEST(RankerTest, TopKTruncatesAndOrdersDeterministically) {
  InvertedIndex index;
  for (EntryId i = 0; i < 50; ++i) {
    index.AddDocument(i, {"same", "tokens"});
  }
  auto ranked = RankBm25(index, {"same"}, 5);
  ASSERT_EQ(ranked.size(), 5u);
  // Identical scores: doc id ascending breaks ties.
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].doc, i);
  }
}

TEST(RankerTest, LengthNormalizationPrefersShorterDocs) {
  InvertedIndex index;
  std::vector<std::string> shortdoc = {"coal"};
  std::vector<std::string> longdoc = {"coal", "a", "b", "c", "d",
                                      "e",    "f", "g", "h", "i"};
  index.AddDocument(0, longdoc);
  index.AddDocument(1, shortdoc);
  auto ranked = RankBm25(index, {"coal"}, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].doc, 1u);
}

// Reference implementation mirroring the executor's exhaustive
// relevance path: conjunction via postings intersection, scores from a
// full RankBm25 pass, (score desc, doc asc) order, truncate to k.
std::vector<ScoredDoc> ExhaustiveTopKConjunctive(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    size_t k) {
  if (terms.empty() || k == 0) {
    return {};
  }
  std::vector<EntryId> matches = index.GetDocs(terms[0]);
  for (size_t i = 1; i < terms.size(); ++i) {
    matches = Intersect(matches, index.GetDocs(terms[i]));
  }
  std::vector<ScoredDoc> ranked =
      RankBm25(index, terms, index.doc_count());
  std::vector<double> score_of;
  for (const ScoredDoc& sd : ranked) {
    if (sd.doc >= score_of.size()) {
      score_of.resize(sd.doc + 1, 0.0);
    }
    score_of[sd.doc] = sd.score;
  }
  std::vector<ScoredDoc> out;
  for (EntryId id : matches) {
    out.push_back({id, id < score_of.size() ? score_of[id] : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc < b.doc;
  });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

TEST(TopKConjunctiveTest, EmptyCases) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_TRUE(RankBm25TopKConjunctive(index, {"coal"}, 0).empty());
  EXPECT_TRUE(RankBm25TopKConjunctive(index, {}, 10).empty());
  EXPECT_TRUE(
      RankBm25TopKConjunctive(InvertedIndex(), {"coal"}, 10).empty());
  EXPECT_TRUE(RankBm25TopKConjunctive(index, {"unknownterm"}, 10).empty());
  // Conjunction with an unknown term is provably empty.
  EXPECT_TRUE(
      RankBm25TopKConjunctive(index, {"coal", "unknownterm"}, 10).empty());
}

TEST(TopKConjunctiveTest, MatchesExhaustiveOnSmallIndex) {
  InvertedIndex index = BuildSmallIndex();
  std::string mine = text::PorterStem("mining");
  for (const std::vector<std::string>& terms :
       std::vector<std::vector<std::string>>{
           {"coal"}, {mine}, {"coal", mine}, {mine, "coal"}}) {
    for (size_t k : {1u, 2u, 10u}) {
      auto pruned = RankBm25TopKConjunctive(index, terms, k);
      auto exhaustive = ExhaustiveTopKConjunctive(index, terms, k);
      ASSERT_EQ(pruned.size(), exhaustive.size());
      for (size_t i = 0; i < pruned.size(); ++i) {
        EXPECT_EQ(pruned[i].doc, exhaustive[i].doc) << i;
        EXPECT_EQ(std::bit_cast<uint64_t>(pruned[i].score),
                  std::bit_cast<uint64_t>(exhaustive[i].score))
            << i;
      }
    }
  }
}

TEST(TopKConjunctiveTest, TieHeavyCorpusBreaksTiesByDocId) {
  InvertedIndex index;
  for (EntryId i = 0; i < 100; ++i) {
    index.AddDocument(i, {"same", "tokens"});
  }
  TopKStats stats;
  auto pruned =
      RankBm25TopKConjunctive(index, {"same", "tokens"}, 5, {}, &stats);
  ASSERT_EQ(pruned.size(), 5u);
  for (size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_EQ(pruned[i].doc, i);  // All scores equal: id ascending.
  }
}

TEST(TopKConjunctiveTest, StatsAccountForEveryPosting) {
  InvertedIndex index;
  for (EntryId i = 0; i < 500; ++i) {
    std::vector<std::string> tokens = {"common"};
    if (i % 97 == 0) {
      tokens.push_back("rare");
    }
    index.AddDocument(i, tokens);
  }
  TopKStats stats;
  auto pruned =
      RankBm25TopKConjunctive(index, {"common", "rare"}, 3, {}, &stats);
  EXPECT_FALSE(pruned.empty());
  // Decoded + skipped covers both full postings lists exactly.
  EXPECT_EQ(stats.postings_decoded + stats.postings_skipped,
            index.DocFreq("common") + index.DocFreq("rare"));
  // The rare term drives alignment: most of "common" is never decoded.
  EXPECT_GT(stats.postings_skipped, 0u);
}

}  // namespace
}  // namespace authidx
