#include <gtest/gtest.h>

#include "authidx/index/inverted.h"
#include "authidx/index/ranker.h"
#include "authidx/text/stem.h"
#include "authidx/text/tokenize.h"

namespace authidx {
namespace {

InvertedIndex BuildSmallIndex() {
  InvertedIndex index;
  index.AddDocument(0, text::Tokenize("Strip Mining in West Virginia"));
  index.AddDocument(1, text::Tokenize("Coal Mining Safety Regulation"));
  index.AddDocument(2, text::Tokenize("The Law of Coal, Oil and Gas"));
  index.AddDocument(3, text::Tokenize("Mining Mining Mining"));  // tf=3.
  index.AddDocument(4, text::Tokenize("Comparative Negligence"));
  return index;
}

TEST(InvertedTest, DocFreqAndPostings) {
  InvertedIndex index = BuildSmallIndex();
  std::string mine = text::PorterStem("mining");
  EXPECT_EQ(index.DocFreq(mine), 3u);
  EXPECT_EQ(index.DocFreq("coal"), 2u);
  EXPECT_EQ(index.DocFreq("nonexistent"), 0u);
  EXPECT_EQ(index.GetDocs(mine), (std::vector<EntryId>{0, 1, 3}));
  auto postings = index.GetPostings(mine);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[2].doc, 3u);
  EXPECT_EQ(postings[2].freq, 3u);  // Repeated token counted.
  EXPECT_EQ(postings[0].freq, 1u);
}

TEST(InvertedTest, CountersAndLengths) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_EQ(index.doc_count(), 5u);
  EXPECT_GT(index.term_count(), 5u);
  EXPECT_EQ(index.DocLength(3), 3u);
  EXPECT_EQ(index.DocLength(999), 0u);
  EXPECT_GT(index.total_tokens(), 10u);
  EXPECT_GT(index.CompressedBytes(), 0u);
}

TEST(InvertedTest, OutOfOrderDocRejected) {
  InvertedIndex index;
  EXPECT_TRUE(index.AddDocument(5, {"a"}));
  EXPECT_FALSE(index.AddDocument(3, {"b"}));
  EXPECT_TRUE(index.AddDocument(5, {"c"}));  // Equal id allowed.
  EXPECT_TRUE(index.AddDocument(9, {"d"}));
}

TEST(InvertedTest, UnknownTermIsEmptyNotError) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_TRUE(index.GetDocs("zzz").empty());
  EXPECT_TRUE(index.GetPostings("zzz").empty());
}

TEST(InvertedTest, MatchesBruteForceOverCorpus) {
  // Index 200 two-term docs; every term's postings must equal the
  // brute-force scan.
  InvertedIndex index;
  std::vector<std::vector<std::string>> docs;
  for (EntryId i = 0; i < 200; ++i) {
    std::vector<std::string> tokens = {
        "t" + std::to_string(i % 7), "t" + std::to_string(i % 13)};
    index.AddDocument(i, tokens);
    docs.push_back(tokens);
  }
  for (int t = 0; t < 13; ++t) {
    std::string term = "t" + std::to_string(t);
    std::vector<EntryId> expected;
    for (EntryId i = 0; i < 200; ++i) {
      const auto& tokens = docs[i];
      if (std::find(tokens.begin(), tokens.end(), term) != tokens.end()) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(index.GetDocs(term), expected) << term;
  }
}

TEST(RankerTest, EmptyInputs) {
  InvertedIndex index = BuildSmallIndex();
  EXPECT_TRUE(RankBm25(index, {"coal"}, 0).empty());
  EXPECT_TRUE(RankBm25(index, {}, 10).empty());
  EXPECT_TRUE(RankBm25(InvertedIndex(), {"coal"}, 10).empty());
  EXPECT_TRUE(RankBm25(index, {"unknownterm"}, 10).empty());
}

TEST(RankerTest, HigherTfRanksHigherForEqualLengthDocs) {
  InvertedIndex index;
  index.AddDocument(0, {"coal", "mine", "law"});
  index.AddDocument(1, {"coal", "coal", "coal"});
  index.AddDocument(2, {"tax", "law", "act"});
  auto ranked = RankBm25(index, {"coal"}, 10);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].doc, 1u);  // tf 3 beats tf 1.
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(RankerTest, RareTermsOutweighCommonOnes) {
  InvertedIndex index;
  // "common" in every doc; "rare" only in doc 7.
  for (EntryId i = 0; i < 20; ++i) {
    std::vector<std::string> tokens = {"common", "filler"};
    if (i == 7) {
      tokens.push_back("rare");
    }
    index.AddDocument(i, tokens);
  }
  auto ranked = RankBm25(index, {"common", "rare"}, 20);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].doc, 7u);  // The rare-term doc dominates.
}

TEST(RankerTest, TopKTruncatesAndOrdersDeterministically) {
  InvertedIndex index;
  for (EntryId i = 0; i < 50; ++i) {
    index.AddDocument(i, {"same", "tokens"});
  }
  auto ranked = RankBm25(index, {"same"}, 5);
  ASSERT_EQ(ranked.size(), 5u);
  // Identical scores: doc id ascending breaks ties.
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].doc, i);
  }
}

TEST(RankerTest, LengthNormalizationPrefersShorterDocs) {
  InvertedIndex index;
  std::vector<std::string> shortdoc = {"coal"};
  std::vector<std::string> longdoc = {"coal", "a", "b", "c", "d",
                                      "e",    "f", "g", "h", "i"};
  index.AddDocument(0, longdoc);
  index.AddDocument(1, shortdoc);
  auto ranked = RankBm25(index, {"coal"}, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].doc, 1u);
}

}  // namespace
}  // namespace authidx
