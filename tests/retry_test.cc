// Unit tests for the bounded-retry helper (common/retry.h): transient
// classification, exponential backoff shape, jitter bounds, and the
// retry loop's give-up/observer behavior.

#include "authidx/common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "authidx/common/random.h"
#include "authidx/common/status.h"

namespace authidx {
namespace {

TEST(IsTransientErrorTest, ClassifiesCodes) {
  EXPECT_TRUE(IsTransientError(Status::IOError("disk blip")));
  EXPECT_TRUE(IsTransientError(Status::ResourceExhausted("pressure")));
  EXPECT_FALSE(IsTransientError(Status::OK()));
  EXPECT_FALSE(IsTransientError(Status::Corruption("bad crc")));
  EXPECT_FALSE(IsTransientError(Status::InvalidArgument("bad arg")));
  EXPECT_FALSE(IsTransientError(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransientError(Status::FailedPrecondition("closed")));
}

TEST(RetryBackoffTest, DoublesAndSaturatesWithoutJitter) {
  RetryPolicy policy;
  policy.base_delay_us = 100;
  policy.max_delay_us = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(RetryBackoffDelayUs(policy, 1, nullptr), 100u);
  EXPECT_EQ(RetryBackoffDelayUs(policy, 2, nullptr), 200u);
  EXPECT_EQ(RetryBackoffDelayUs(policy, 3, nullptr), 400u);
  EXPECT_EQ(RetryBackoffDelayUs(policy, 4, nullptr), 800u);
  EXPECT_EQ(RetryBackoffDelayUs(policy, 5, nullptr), 1000u);  // Saturated.
  EXPECT_EQ(RetryBackoffDelayUs(policy, 60, nullptr), 1000u);
  EXPECT_EQ(RetryBackoffDelayUs(policy, 100, nullptr), 1000u);  // No UB shift.
}

TEST(RetryBackoffTest, JitterStaysInsideEqualJitterWindow) {
  RetryPolicy policy;
  policy.base_delay_us = 1000;
  policy.max_delay_us = 100000;
  policy.jitter = 0.5;
  Random rng(42);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    uint64_t full = RetryBackoffDelayUs(
        [&] {
          RetryPolicy unjittered = policy;
          unjittered.jitter = 0.0;
          return unjittered;
        }(),
        attempt, nullptr);
    for (int trial = 0; trial < 100; ++trial) {
      uint64_t delay = RetryBackoffDelayUs(policy, attempt, &rng);
      EXPECT_GE(delay, full / 2);
      EXPECT_LE(delay, full);
    }
  }
}

TEST(RetryWithBackoffTest, ReturnsFirstSuccess) {
  int calls = 0;
  Random rng(1);
  Status s = RetryWithBackoff(
      RetryPolicy{}, &rng,
      [&] {
        ++calls;
        return calls < 3 ? Status::IOError("flaky") : Status::OK();
      },
      nullptr, [](uint64_t) {});
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryWithBackoffTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  std::vector<int> observed_attempts;
  RetryPolicy policy;
  policy.max_attempts = 4;
  Random rng(1);
  Status s = RetryWithBackoff(
      policy, &rng,
      [&] {
        ++calls;
        return Status::IOError("still down");
      },
      [&](int attempt, const Status& failure, uint64_t delay_us) {
        observed_attempts.push_back(attempt);
        EXPECT_TRUE(failure.IsIOError());
        EXPECT_LE(delay_us, policy.max_delay_us);
      },
      [](uint64_t) {});
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 4);
  // The observer fires before each retry sleep: attempts 1..3.
  EXPECT_EQ(observed_attempts, (std::vector<int>{1, 2, 3}));
}

TEST(RetryWithBackoffTest, PermanentErrorIsNotRetried) {
  int calls = 0;
  Random rng(1);
  Status s = RetryWithBackoff(
      RetryPolicy{}, &rng,
      [&] {
        ++calls;
        return Status::Corruption("deterministic");
      },
      nullptr, [](uint64_t) {});
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST(RetryWithBackoffTest, SingleAttemptPolicyDisablesRetry) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 1;
  Random rng(1);
  Status s = RetryWithBackoff(
      policy, &rng, [&] {
        ++calls;
        return Status::IOError("down");
      });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace authidx
