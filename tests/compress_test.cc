#include "authidx/common/compress.h"

#include <gtest/gtest.h>

#include "authidx/common/random.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

std::string RoundTrip(std::string_view input) {
  std::string compressed;
  LzCompress(input, &compressed);
  Result<std::string> out = LzDecompress(compressed);
  EXPECT_TRUE(out.ok()) << out.status();
  return out.ok() ? *out : std::string();
}

TEST(CompressTest, EmptyAndTiny) {
  EXPECT_EQ(RoundTrip(""), "");
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
  EXPECT_EQ(RoundTrip("abcd"), "abcd");
}

TEST(CompressTest, HighlyRepetitiveShrinksALot) {
  std::string input(100000, 'x');
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 50);
  EXPECT_EQ(*LzDecompress(compressed), input);
}

TEST(CompressTest, OverlappingMatchRle) {
  // "abab..." forces offset < match length (replicating copy).
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input += "ab";
  }
  EXPECT_EQ(RoundTrip(input), input);
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), 200u);
}

TEST(CompressTest, TypicalBlockContentCompresses) {
  // Block-like content: prefix-shared keys and small values.
  workload::NameGenerator gen(5);
  std::string input;
  for (int i = 0; i < 500; ++i) {
    input += gen.NextAuthor().ToIndexForm();
    input += '\t';
    input += gen.NextTitle();
    input += '\n';
  }
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() * 3 / 4);
  EXPECT_EQ(*LzDecompress(compressed), input);
}

TEST(CompressTest, IncompressibleDataExpandsBoundedly) {
  Random rng(42);
  std::string input;
  for (int i = 0; i < 50000; ++i) {
    input.push_back(static_cast<char>(rng.Next64()));
  }
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LE(compressed.size(), LzMaxCompressedSize(input.size()));
  EXPECT_EQ(*LzDecompress(compressed), input);
}

TEST(CompressTest, LongLiteralRunsAndLongMatches) {
  Random rng(7);
  // 1000 random bytes (literals) + the same 1000 repeated 20x (match
  // lengths far beyond the 15-nibble).
  std::string chunk;
  for (int i = 0; i < 1000; ++i) {
    chunk.push_back(static_cast<char>(rng.Next64()));
  }
  std::string input = chunk;
  for (int i = 0; i < 20; ++i) {
    input += chunk;
  }
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressTest, TruncationIsCorruption) {
  std::string input = "the quick brown fox the quick brown fox";
  std::string compressed;
  LzCompress(input, &compressed);
  for (size_t len = 0; len < compressed.size(); ++len) {
    Result<std::string> out =
        LzDecompress(std::string_view(compressed).substr(0, len));
    EXPECT_FALSE(out.ok()) << "accepted truncation at " << len;
  }
}

TEST(CompressTest, CorruptHeaderRejected) {
  // Declared size absurdly larger than any expansion of the payload.
  std::string bogus;
  bogus.push_back('\xFF');
  bogus.push_back('\xFF');
  bogus.push_back('\xFF');
  bogus.push_back('\x7F');
  bogus += "xx";
  EXPECT_TRUE(LzDecompress(bogus).status().IsCorruption());
}

TEST(CompressTest, BadOffsetRejected) {
  // Token demanding a match before the start of output.
  std::string bogus;
  bogus.push_back(8);     // Decompressed size 8.
  bogus.push_back(0x04);  // 0 literals, match_len 4+4.
  bogus.push_back(5);     // Offset 5 > produced 0 bytes.
  bogus.push_back(0);
  EXPECT_TRUE(LzDecompress(bogus).status().IsCorruption());
}

// Property: random strings over small alphabets (match-rich) and large
// alphabets (literal-rich) always round-trip.
class CompressPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressPropertyTest, RandomRoundTrips) {
  int alphabet = GetParam();
  Random rng(1000 + alphabet);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = rng.Uniform(5000);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>('a' + rng.Uniform(alphabet)));
    }
    ASSERT_EQ(RoundTrip(input), input) << "alphabet " << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, CompressPropertyTest,
                         ::testing::Values(1, 2, 4, 16, 26));

}  // namespace
}  // namespace authidx
