// Negative-compile canary for Clang Thread Safety Analysis.
//
// This file is NOT part of any test binary. The root CMakeLists.txt
// try_compiles it twice when AUTHIDX_THREAD_SAFETY is ON:
//   1. without analysis flags — must SUCCEED (the file is valid C++);
//   2. with -Wthread-safety -Werror=thread-safety-* — must FAIL.
// If (2) ever succeeds, the analysis has been silently disarmed (wrong
// compiler, macro stubs active, flags dropped) and configuration aborts.
// Keep exactly one violation below so the failure mode stays precise.

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"

namespace {

class Canary {
 public:
  // VIOLATION: writes a guarded field without holding mu_. The analysis
  // must reject this with -Wthread-safety-analysis.
  void UnlockedWrite() { value_ = 1; }

 private:
  authidx::Mutex mu_;
  int value_ AUTHIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Canary canary;
  canary.UnlockedWrite();
  return 0;
}
