#include "authidx/index/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"

namespace authidx {
namespace {

TEST(BTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Get("x").has_value());
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Seek("a").Valid());
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(BTreeTest, InsertGetOverwrite) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert("k1", 1));
  EXPECT_TRUE(tree.Insert("k2", 2));
  EXPECT_FALSE(tree.Insert("k1", 10));  // Overwrite.
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(*tree.Get("k1"), 10u);
  EXPECT_EQ(*tree.Get("k2"), 2u);
  EXPECT_FALSE(tree.Get("k3").has_value());
}

TEST(BTreeTest, EraseAndLazyDeletion) {
  BPlusTree tree;
  for (int i = 0; i < 500; ++i) {
    tree.Insert(StringPrintf("key%04d", i), static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 500; i += 2) {
    EXPECT_TRUE(tree.Erase(StringPrintf("key%04d", i)));
  }
  EXPECT_FALSE(tree.Erase("key0000"));  // Already gone.
  EXPECT_EQ(tree.size(), 250u);
  // Iteration sees exactly the odd keys, in order.
  int expected = 1;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), StringPrintf("key%04d", expected));
    expected += 2;
  }
  EXPECT_EQ(expected, 501);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(BTreeTest, SeekSemantics) {
  BPlusTree tree;
  tree.Insert("b", 1);
  tree.Insert("d", 2);
  tree.Insert("f", 3);
  auto it = tree.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");  // First key >= target.
  it = tree.Seek("d");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");  // Exact hit.
  it = tree.Seek("g");
  EXPECT_FALSE(it.Valid());  // Past the end.
  it = tree.Seek("");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "b");
}

TEST(BTreeTest, PrefixScan) {
  BPlusTree tree;
  tree.Insert("mcateer", 1);
  tree.Insert("mcginley", 2);
  tree.Insert("mcgraw", 3);
  tree.Insert("mclaughlin", 4);
  tree.Insert("means", 5);
  auto hits = tree.PrefixScan("mcg", 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, "mcginley");
  EXPECT_EQ(hits[1].first, "mcgraw");
  EXPECT_EQ(tree.PrefixScan("mc", 2).size(), 2u);  // Limit respected.
  EXPECT_TRUE(tree.PrefixScan("zz", 10).empty());
}

TEST(BTreeTest, BinaryKeysWithEmbeddedZeros) {
  BPlusTree tree;
  std::string k1("a\0b", 3), k2("a\0c", 3), k3("a", 1);
  tree.Insert(k1, 1);
  tree.Insert(k2, 2);
  tree.Insert(k3, 3);
  EXPECT_EQ(*tree.Get(k1), 1u);
  EXPECT_EQ(*tree.Get(k2), 2u);
  auto it = tree.Begin();
  EXPECT_EQ(it.key(), k3);  // "a" < "a\0b".
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BPlusTree tree;
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(StringPrintf("%08d", i), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), 100000u);
  EXPECT_LE(tree.height(), 4);  // Fanout 64: 64^3 > 1e5.
  EXPECT_GE(tree.height(), 3);
}

// Model test: random operations mirrored against std::map must agree on
// every lookup, size, and full iteration. Parameterized over operation
// mixes (insert-heavy vs delete-heavy) and seeds.
struct ModelParam {
  uint64_t seed;
  int erase_percent;
  int n_ops;
};

class BTreeModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(BTreeModelTest, AgreesWithStdMap) {
  const ModelParam param = GetParam();
  Random rng(param.seed);
  BPlusTree tree;
  std::map<std::string, uint64_t> model;
  for (int op = 0; op < param.n_ops; ++op) {
    std::string key = StringPrintf("k%05llu",
        static_cast<unsigned long long>(rng.Uniform(5000)));
    if (static_cast<int>(rng.Uniform(100)) < param.erase_percent) {
      bool tree_erased = tree.Erase(key);
      bool model_erased = model.erase(key) > 0;
      ASSERT_EQ(tree_erased, model_erased) << key;
    } else {
      uint64_t value = rng.Next64();
      bool tree_new = tree.Insert(key, value);
      bool model_new = model.insert_or_assign(key, value).second;
      ASSERT_EQ(tree_new, model_new) << key;
    }
    if (op % 997 == 0) {
      std::string probe = StringPrintf("k%05llu",
          static_cast<unsigned long long>(rng.Uniform(5000)));
      auto tree_hit = tree.Get(probe);
      auto model_hit = model.find(probe);
      ASSERT_EQ(tree_hit.has_value(), model_hit != model.end());
      if (tree_hit) {
        ASSERT_EQ(*tree_hit, model_hit->second);
      }
    }
  }
  ASSERT_EQ(tree.size(), model.size());
  // Full ordered agreement.
  auto it = tree.Begin();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it.Valid());
    ASSERT_EQ(it.key(), key);
    ASSERT_EQ(it.value(), value);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, BTreeModelTest,
    ::testing::Values(ModelParam{1, 0, 20000}, ModelParam{2, 10, 20000},
                      ModelParam{3, 40, 20000}, ModelParam{4, 60, 30000},
                      ModelParam{5, 25, 50000}));

}  // namespace
}  // namespace authidx
