// Tests for the storage-engine extensions: per-block compression and the
// shared block cache (ablations measured in bench_ablation).

#include <gtest/gtest.h>

#include <filesystem>

#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

class EngineFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/engine_feat_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<StorageEngine> Open(EngineOptions options = {}) {
    auto engine = StorageEngine::Open(dir_, options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  void FillCompressible(StorageEngine* engine, int n) {
    for (int i = 0; i < n; ++i) {
      // Repetitive values compress extremely well.
      ASSERT_TRUE(engine
                      ->Put(StringPrintf("author/%06d/entry", i),
                            std::string(200, static_cast<char>('a' + (i % 3))))
                      .ok());
    }
  }

  uint64_t TableBytes() {
    uint64_t total = 0;
    auto names = Env::Default()->ListDir(dir_);
    EXPECT_TRUE(names.ok());
    for (const auto& name : *names) {
      if (name.size() > 4 && name.substr(name.size() - 4) == ".tbl") {
        total += *Env::Default()->FileSize(dir_ + "/" + name);
      }
    }
    return total;
  }

  std::string dir_;
};

TEST_F(EngineFeaturesTest, CompressionShrinksTablesAndRoundTrips) {
  uint64_t raw_bytes, compressed_bytes;
  {
    auto engine = Open();
    FillCompressible(engine.get(), 5000);
    ASSERT_TRUE(engine->Compact().ok());
    raw_bytes = TableBytes();
    ASSERT_TRUE(engine->Close().ok());
  }
  std::filesystem::remove_all(dir_);
  {
    EngineOptions options;
    options.compress_blocks = true;
    auto engine = Open(options);
    FillCompressible(engine.get(), 5000);
    ASSERT_TRUE(engine->Compact().ok());
    compressed_bytes = TableBytes();
    // Everything readable while compressed.
    for (int i = 0; i < 5000; i += 317) {
      auto hit = engine->Get(StringPrintf("author/%06d/entry", i));
      ASSERT_TRUE(hit.ok()) << hit.status();
      ASSERT_TRUE(hit->has_value()) << i;
      EXPECT_EQ((*hit)->size(), 200u);
    }
    ASSERT_TRUE(engine->Close().ok());
  }
  EXPECT_LT(compressed_bytes, raw_bytes / 2)
      << "raw=" << raw_bytes << " compressed=" << compressed_bytes;
  // Reopen compressed store (options do not need to match: block type is
  // self-describing).
  auto engine = Open();
  EXPECT_EQ((*engine->Get("author/000000/entry"))->size(), 200u);
  // Full scan decodes every compressed block.
  auto it = engine->NewIterator();
  size_t count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ++count;
  }
  EXPECT_TRUE(it->status().ok()) << it->status();
  EXPECT_EQ(count, 5000u);
}

TEST_F(EngineFeaturesTest, MixedCompressedAndRawRuns) {
  {
    auto engine = Open();  // Raw.
    FillCompressible(engine.get(), 1000);
    ASSERT_TRUE(engine->Close().ok());
  }
  EngineOptions options;
  options.compress_blocks = true;
  auto engine = Open(options);
  for (int i = 1000; i < 2000; ++i) {
    ASSERT_TRUE(engine
                    ->Put(StringPrintf("author/%06d/entry", i),
                          std::string(200, 'z'))
                    .ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  // Reads span a raw run and a compressed run.
  EXPECT_TRUE((*engine->Get("author/000500/entry")).has_value());
  EXPECT_TRUE((*engine->Get("author/001500/entry")).has_value());
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_TRUE((*engine->Get("author/000500/entry")).has_value());
  EXPECT_TRUE((*engine->Get("author/001500/entry")).has_value());
}

TEST_F(EngineFeaturesTest, BlockCacheServesRepeatedReads) {
  EngineOptions options;
  options.block_cache_bytes = 4 << 20;
  auto engine = Open(options);
  FillCompressible(engine.get(), 2000);
  ASSERT_TRUE(engine->Compact().ok());
  // First read warms the cache; repeats must hit.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; i += 100) {
      ASSERT_TRUE(
          (*engine->Get(StringPrintf("author/%06d/entry", i))).has_value());
    }
  }
  EXPECT_GT(engine->block_cache().hits(), engine->block_cache().misses());
  EXPECT_GT(engine->block_cache().entry_count(), 0u);
}

TEST_F(EngineFeaturesTest, CacheDisabledStillCorrect) {
  EngineOptions options;
  options.block_cache_bytes = 0;
  auto engine = Open(options);
  FillCompressible(engine.get(), 1000);
  ASSERT_TRUE(engine->Compact().ok());
  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE((*engine->Get("author/000123/entry")).has_value());
  }
  EXPECT_EQ(engine->block_cache().hits(), 0u);
}

TEST_F(EngineFeaturesTest, CompactionInvalidatesDeadCacheEntries) {
  EngineOptions options;
  options.l0_compaction_trigger = 1000;
  auto engine = Open(options);
  FillCompressible(engine.get(), 1000);
  ASSERT_TRUE(engine->Flush().ok());
  // Warm the cache from the L0 file.
  EXPECT_TRUE((*engine->Get("author/000001/entry")).has_value());
  size_t warmed = engine->block_cache().entry_count();
  EXPECT_GT(warmed, 0u);
  ASSERT_TRUE(engine->Compact().ok());
  // Old file's entries were purged; reads now repopulate from the new
  // run and remain correct.
  EXPECT_TRUE((*engine->Get("author/000001/entry")).has_value());
  EXPECT_EQ((*engine->Get("author/000001/entry"))->size(), 200u);
}

}  // namespace
}  // namespace authidx::storage
