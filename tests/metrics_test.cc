#include "authidx/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/format/metrics_text.h"

// Global allocation counter: the no-allocation tests below snapshot it
// around hot-path calls (Inc/Set/Add/Record) to prove they never touch
// the heap. Every other test tolerates the counting overhead.
namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

// noinline: when GCC inlines replaced global operators it pairs the
// caller's new with the inlined free() and emits a spurious
// -Wmismatched-new-delete.
[[gnu::noinline]] void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

[[gnu::noinline]] void operator delete(void* ptr) noexcept { std::free(ptr); }
[[gnu::noinline]] void operator delete(void* ptr, std::size_t) noexcept {
  std::free(ptr);
}

namespace authidx::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(100);
  EXPECT_EQ(g.Value(), 100);
  g.Add(-30);
  EXPECT_EQ(g.Value(), 70);
  g.Add(5);
  EXPECT_EQ(g.Value(), 75);
}

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  // Every probe value must land in a bucket whose [lower, upper) range
  // contains it, and bucket indices must be monotone in the value.
  std::vector<uint64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100,
                                  1000, 4095, 4096, 1 << 20, 123456789,
                                  (1ull << 40) + 17, UINT64_MAX};
  size_t prev_index = 0;
  for (uint64_t v : probes) {
    size_t index = LatencyHistogram::BucketIndex(v);
    uint64_t upper = LatencyHistogram::BucketUpperBound(index);
    EXPECT_GE(v, LatencyHistogram::BucketLowerBound(index)) << v;
    if (upper == UINT64_MAX) {
      EXPECT_LE(v, upper) << v;  // Top bucket saturates (inclusive).
    } else {
      EXPECT_LT(v, upper) << v;
    }
    EXPECT_GE(index, prev_index) << v;
    prev_index = index;
  }
}

TEST(HistogramTest, BucketWidthBoundsQuantileError) {
  // The documented error bound: above the exact range, bucket width is
  // at most 1/4 of the lower bound, so the midpoint is within 12.5%.
  for (size_t index = 4; index < 250; ++index) {
    uint64_t lower = LatencyHistogram::BucketLowerBound(index);
    uint64_t upper = LatencyHistogram::BucketUpperBound(index);
    EXPECT_LE(upper - lower, lower / 4 + 1) << index;
  }
}

TEST(HistogramTest, CountAndSum) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileNs(0.5), 0u);
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNs(), 60u);
}

TEST(HistogramTest, QuantilesWithinErrorBoundOfExactReference) {
  // Compare histogram quantiles against the exact answer from a sorted
  // copy of the same samples. A deterministic LCG spreads samples over
  // ~4 decades so many octaves are exercised.
  LatencyHistogram h;
  std::vector<uint64_t> exact;
  uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t sample = 50 + (state >> 33) % 1000000;
    h.Record(sample);
    exact.push_back(sample);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.50, 0.90, 0.99}) {
    uint64_t estimate = h.QuantileNs(q);
    uint64_t truth =
        exact[std::min(exact.size() - 1,
                       static_cast<size_t>(q * static_cast<double>(
                                                   exact.size())))];
    double rel_error =
        std::abs(static_cast<double>(estimate) - static_cast<double>(truth)) /
        static_cast<double>(truth);
    EXPECT_LE(rel_error, 0.125) << "q=" << q << " estimate=" << estimate
                                << " truth=" << truth;
  }
}

TEST(HistogramTest, SnapshotCumulativeBucketsAreMonotone) {
  LatencyHistogram h;
  for (uint64_t v : {1u, 10u, 100u, 1000u, 10000u, 100000u}) {
    h.Record(v);
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 6u);
  ASSERT_EQ(snap.bounds.size(), snap.cumulative.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < snap.cumulative.size(); ++i) {
    EXPECT_GE(snap.cumulative[i], prev);
    prev = snap.cumulative[i];
  }
  EXPECT_EQ(snap.cumulative.back(), snap.count);
  EXPECT_EQ(snap.p50, h.QuantileNs(0.5));
}

TEST(HistogramTest, ConcurrentRecordStress) {
  // Run under `ctest -L sanitize` with the tsan preset to prove the
  // wait-free Record path is race-free.
  LatencyHistogram h;
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
        c.Inc();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, h.Count());
}

TEST(HistogramTest, HotPathDoesNotAllocate) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("c", "help");
  Gauge* gauge = registry.RegisterGauge("g", "help");
  LatencyHistogram* hist = registry.RegisterLatencyHistogram("h", "help");
  // Warm the thread-local shard slot outside the measured window.
  counter->Inc();
  hist->Record(1);
  uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter->Inc(2);
    gauge->Set(i);
    gauge->Add(-1);
    hist->Record(static_cast<uint64_t>(i) * 977);
  }
  uint64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "metrics hot path allocated";
}

TEST(RegistryTest, ReRegistrationReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("authidx_x_total", "first");
  Counter* b = registry.RegisterCounter("authidx_x_total", "second");
  EXPECT_EQ(a, b);
  a->Inc(7);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].counter, 7u);
  EXPECT_EQ(snap.metrics[0].help, "first");
}

TEST(RegistryTest, SnapshotPreservesRegistrationOrderAndFind) {
  MetricsRegistry registry;
  registry.RegisterCounter("one", "1");
  registry.RegisterGauge("two", "2")->Set(-5);
  registry.RegisterLatencyHistogram("three", "3")->Record(42);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "one");
  EXPECT_EQ(snap.metrics[1].name, "two");
  EXPECT_EQ(snap.metrics[2].name, "three");
  const MetricValue* gauge = snap.Find("two");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->type, MetricType::kGauge);
  EXPECT_EQ(gauge->gauge, -5);
  EXPECT_EQ(snap.Find("missing"), nullptr);
}

TEST(PrometheusTextTest, EmitsWellFormedExposition) {
  MetricsRegistry registry;
  registry.RegisterCounter("authidx_demo_total", "A demo counter")->Inc(3);
  registry.RegisterGauge("authidx_demo_bytes", "A demo gauge")->Set(-12);
  registry.RegisterLatencyHistogram("authidx_demo_ns", "A demo histogram")
      ->Record(100);
  std::string text =
      format::MetricsToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP authidx_demo_total A demo counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE authidx_demo_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("authidx_demo_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("authidx_demo_bytes -12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE authidx_demo_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("authidx_demo_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("authidx_demo_ns_sum 100\n"), std::string::npos);
  EXPECT_NE(text.find("authidx_demo_ns_count 1\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// Every metric a persistent catalog registers must be documented in
// docs/OBSERVABILITY.md — the doc is the contract for dashboards.
TEST(DocSyncTest, ObservabilityDocListsEveryRegisteredMetric) {
  std::string doc_path =
      std::string(AUTHIDX_REPO_ROOT) + "/docs/OBSERVABILITY.md";
  std::ifstream doc_file(doc_path);
  ASSERT_TRUE(doc_file.is_open()) << "missing " << doc_path;
  std::stringstream doc;
  doc << doc_file.rdbuf();
  std::string doc_text = doc.str();

  std::string dir = ::testing::TempDir() + "/metrics_doc_sync";
  std::filesystem::remove_all(dir);
  auto catalog = core::AuthorIndex::OpenPersistent(dir);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  MetricsSnapshot snap = (*catalog)->GetMetricsSnapshot();
  EXPECT_GE(snap.metrics.size(), 30u);
  for (const MetricValue& metric : snap.metrics) {
    EXPECT_NE(doc_text.find("`" + metric.name + "`"), std::string::npos)
        << "metric `" << metric.name
        << "` is registered but not documented in docs/OBSERVABILITY.md";
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace authidx::obs
