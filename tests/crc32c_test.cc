#include "authidx/common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace authidx::crc32c {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // Canonical CRC-32C test vectors (RFC 3720 / iSCSI appendix).
  EXPECT_EQ(Value(""), 0u);
  EXPECT_EQ(Value("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Value(zeros), 0x8A9136AAu);
  std::string ffs(32, '\xff');
  EXPECT_EQ(Value(ffs), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesWholeBufferHash) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Value(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Extend(0, data.data(), split);
    partial = Extend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(partial, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, UnalignedStartMatches) {
  // Force different alignments of the same logical bytes.
  std::string padded = "xyz123456789";
  for (int offset = 0; offset < 3; ++offset) {
    EXPECT_EQ(Extend(0, padded.data() + offset + (3 - offset - (3 - offset)),
                     0),
              0u);
  }
  EXPECT_EQ(Extend(0, padded.data() + 3, 9), 0xE3069283u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Value("hello"), Value("hellp"));
  EXPECT_NE(Value("hello"), Value("hello "));
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // Masking must change the value.
  }
}

}  // namespace
}  // namespace authidx::crc32c
