#include "authidx/storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

namespace authidx::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/test.wal";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::string> Replay(WalReplayStats* stats) {
    std::vector<std::string> records;
    Result<WalReplayStats> result =
        ReplayWal(Env::Default(), path_, [&](std::string_view record) {
          records.emplace_back(record);
          return Status::OK();
        });
    EXPECT_TRUE(result.ok()) << result.status();
    if (result.ok() && stats != nullptr) {
      *stats = *result;
    }
    return records;
  }

  void Truncate(uint64_t size) {
    std::filesystem::resize_file(path_, size);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("first").ok());
    ASSERT_TRUE((*writer)->Append("second record").ok());
    ASSERT_TRUE((*writer)->Append("").ok());  // Empty payload is legal.
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  WalReplayStats stats;
  auto records = Replay(&stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second record");
  EXPECT_EQ(records[2], "");
  EXPECT_FALSE(stats.tail_corruption);
  EXPECT_EQ(stats.records, 3u);
}

TEST_F(WalTest, BinaryPayloadsSurvive) {
  std::string binary;
  for (int i = 0; i < 256; ++i) {
    binary.push_back(static_cast<char>(i));
  }
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(binary).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto records = Replay(nullptr);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], binary);
}

TEST_F(WalTest, TruncatedTailIsToleratedAndReported) {
  uint64_t bytes_after_two;
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("record one").ok());
    ASSERT_TRUE((*writer)->Append("record two").ok());
    bytes_after_two = (*writer)->bytes_written();
    ASSERT_TRUE((*writer)->Append("record three (will be torn)").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Tear the last record mid-payload, as a crash would.
  Truncate(bytes_after_two + 10);
  WalReplayStats stats;
  auto records = Replay(&stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "record two");
  EXPECT_TRUE(stats.tail_corruption);
}

TEST_F(WalTest, TruncationInsideHeaderIsTolerated) {
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("whole").ok());
    ASSERT_TRUE((*writer)->Append("torn").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  uint64_t full = std::filesystem::file_size(path_);
  Truncate(full - 4 - 6);  // Leaves 4 of the second record's 8B header.
  WalReplayStats stats;
  auto records = Replay(&stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "whole");
  EXPECT_TRUE(stats.tail_corruption);
}

TEST_F(WalTest, BitFlipStopsReplayAtCorruption) {
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("aaaaaaaaaa").ok());
    ASSERT_TRUE((*writer)->Append("bbbbbbbbbb").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Flip one payload byte of the first record.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // First payload byte.
    f.put('X');
  }
  WalReplayStats stats;
  auto records = Replay(&stats);
  EXPECT_TRUE(records.empty());  // Nothing before the damage.
  EXPECT_TRUE(stats.tail_corruption);
}

TEST_F(WalTest, SinkErrorAbortsReplay) {
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("one").ok());
    ASSERT_TRUE((*writer)->Append("two").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  int seen = 0;
  Result<WalReplayStats> result =
      ReplayWal(Env::Default(), path_, [&](std::string_view) {
        ++seen;
        return Status::Corruption("sink says no");
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(seen, 1);
}

TEST_F(WalTest, MissingFileIsNotFound) {
  Result<WalReplayStats> result = ReplayWal(
      Env::Default(), dir_ + "/absent.wal",
      [](std::string_view) { return Status::OK(); });
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(WalTest, EmptyFileReplaysZeroRecords) {
  {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  WalReplayStats stats;
  auto records = Replay(&stats);
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(stats.tail_corruption);
}

}  // namespace
}  // namespace authidx::storage
