#include "authidx/text/normalize.h"

#include <gtest/gtest.h>

namespace authidx::text {
namespace {

TEST(FoldCaseTest, AsciiLowercasing) {
  EXPECT_EQ(FoldCase("Hello World"), "hello world");
  EXPECT_EQ(FoldCase("ABC-123"), "abc-123");
  EXPECT_EQ(FoldCase(""), "");
}

TEST(FoldCaseTest, Latin1Diacritics) {
  EXPECT_EQ(FoldCase("Élan"), "elan");
  EXPECT_EQ(FoldCase("naïve"), "naive");
  EXPECT_EQ(FoldCase("Søren"), "soren");
  EXPECT_EQ(FoldCase("Müller"), "muller");
  EXPECT_EQ(FoldCase("Ñoño"), "nono");
  EXPECT_EQ(FoldCase("Çelik"), "celik");
}

TEST(FoldCaseTest, MultiCharExpansions) {
  EXPECT_EQ(FoldCase("Strauß"), "strauss");
  EXPECT_EQ(FoldCase("Ægir"), "aegir");
  EXPECT_EQ(FoldCase("Œuvre"), "oeuvre");
  EXPECT_EQ(FoldCase("Þor"), "thor");
}

TEST(FoldCaseTest, LatinExtendedA) {
  EXPECT_EQ(FoldCase("Šimek"), "simek");
  EXPECT_EQ(FoldCase("Łukasz"), "lukasz");
  EXPECT_EQ(FoldCase("Dvořák"), "dvorak");
  EXPECT_EQ(FoldCase("Ğül"), "gul");
}

TEST(FoldCaseTest, PassesThroughNonLatin) {
  // Cyrillic is outside the folded ranges: preserved verbatim.
  EXPECT_EQ(FoldCase("Тест"), "Тест");
}

TEST(FoldCaseTest, InvalidUtf8BytesSurvive) {
  std::string bad = "a\xFF"
                    "b";
  std::string folded = FoldCase(bad);
  EXPECT_EQ(folded.substr(0, 1), "a");
  EXPECT_EQ(folded.substr(folded.size() - 1), "b");
}

TEST(NormalizeForIndexTest, CollapsesWhitespace) {
  EXPECT_EQ(NormalizeForIndex("  A   B\t C \n"), "a b c");
  EXPECT_EQ(NormalizeForIndex("NoChange"), "nochange");
  EXPECT_EQ(NormalizeForIndex("   "), "");
}

TEST(StripToAlnumTest, DropsPunctuation) {
  EXPECT_EQ(StripToAlnum("O'Brien, J.R. (3rd)"), "obrien jr 3rd");
}

TEST(CharClassTest, Predicates) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_FALSE(IsAsciiDigit('x'));
}

}  // namespace
}  // namespace authidx::text
