#include "authidx/net/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"
#include "authidx/common/retry.h"
#include "authidx/common/strings.h"

namespace authidx::net {
namespace {

// WireStatus values 0-10 mirror authidx::StatusCode one-for-one; the
// wire protocol freezes them, so drift is a compile error here.
static_assert(static_cast<uint8_t>(WireStatus::kOk) ==
              static_cast<uint8_t>(StatusCode::kOk));
static_assert(static_cast<uint8_t>(WireStatus::kInvalidArgument) ==
              static_cast<uint8_t>(StatusCode::kInvalidArgument));
static_assert(static_cast<uint8_t>(WireStatus::kNotFound) ==
              static_cast<uint8_t>(StatusCode::kNotFound));
static_assert(static_cast<uint8_t>(WireStatus::kAlreadyExists) ==
              static_cast<uint8_t>(StatusCode::kAlreadyExists));
static_assert(static_cast<uint8_t>(WireStatus::kOutOfRange) ==
              static_cast<uint8_t>(StatusCode::kOutOfRange));
static_assert(static_cast<uint8_t>(WireStatus::kCorruption) ==
              static_cast<uint8_t>(StatusCode::kCorruption));
static_assert(static_cast<uint8_t>(WireStatus::kIOError) ==
              static_cast<uint8_t>(StatusCode::kIOError));
static_assert(static_cast<uint8_t>(WireStatus::kNotSupported) ==
              static_cast<uint8_t>(StatusCode::kNotSupported));
static_assert(static_cast<uint8_t>(WireStatus::kFailedPrecondition) ==
              static_cast<uint8_t>(StatusCode::kFailedPrecondition));
static_assert(static_cast<uint8_t>(WireStatus::kResourceExhausted) ==
              static_cast<uint8_t>(StatusCode::kResourceExhausted));
static_assert(static_cast<uint8_t>(WireStatus::kInternal) ==
              static_cast<uint8_t>(StatusCode::kInternal));

TEST(FrameTest, RoundTripsHeaderAndPayload) {
  FrameHeader header;
  header.opcode = Opcode::kQuery;
  header.request_id = 0x0123456789abcdefull;
  std::string payload = "the payload \x00\xff bytes";
  std::string frame;
  EncodeFrame(header, payload, &frame);
  EXPECT_EQ(frame.size(), payload.size() + kFrameOverheadBytes);

  DecodedFrame decoded;
  Status error;
  ASSERT_EQ(DecodeFrame(frame, kMaxFrameBytesDefault, &decoded, &error),
            DecodeOutcome::kFrame)
      << error;
  EXPECT_EQ(decoded.header.version, kProtocolVersion);
  EXPECT_EQ(decoded.header.opcode, Opcode::kQuery);
  EXPECT_EQ(decoded.header.flags, 0);
  EXPECT_EQ(decoded.header.request_id, 0x0123456789abcdefull);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_EQ(decoded.frame_bytes, frame.size());
}

TEST(FrameTest, RoundTripsEmptyPayloadAndConsumesOnlyOneFrame) {
  std::string frames;
  FrameHeader ping;
  ping.request_id = 1;
  EncodeFrame(ping, "", &frames);
  size_t first_size = frames.size();
  FrameHeader second;
  second.opcode = Opcode::kStats;
  second.request_id = 2;
  EncodeFrame(second, "", &frames);

  DecodedFrame decoded;
  ASSERT_EQ(DecodeFrame(frames, kMaxFrameBytesDefault, &decoded, nullptr),
            DecodeOutcome::kFrame);
  EXPECT_EQ(decoded.header.request_id, 1u);
  EXPECT_TRUE(decoded.payload.empty());
  EXPECT_EQ(decoded.frame_bytes, first_size);

  std::string_view rest =
      std::string_view(frames).substr(decoded.frame_bytes);
  ASSERT_EQ(DecodeFrame(rest, kMaxFrameBytesDefault, &decoded, nullptr),
            DecodeOutcome::kFrame);
  EXPECT_EQ(decoded.header.opcode, Opcode::kStats);
  EXPECT_EQ(decoded.header.request_id, 2u);
}

TEST(FrameTest, NeedsMoreOnEveryTruncationPoint) {
  FrameHeader header;
  header.opcode = Opcode::kAdd;
  header.request_id = 7;
  std::string frame;
  EncodeFrame(header, "abcdef", &frame);
  for (size_t len = 0; len < frame.size(); ++len) {
    DecodedFrame decoded;
    Status error;
    EXPECT_EQ(DecodeFrame(std::string_view(frame).substr(0, len),
                          kMaxFrameBytesDefault, &decoded, &error),
              DecodeOutcome::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(FrameTest, RejectsCorruptionAnywhereInTheFrame) {
  FrameHeader header;
  header.opcode = Opcode::kPing;
  header.request_id = 9;
  std::string frame;
  EncodeFrame(header, "payload", &frame);
  // Flip one bit in the version byte, the payload, and the CRC itself:
  // every one must fail the checksum (or a validity check), never pass.
  for (size_t pos : {size_t{4}, size_t{16}, frame.size() - 1}) {
    std::string corrupt = frame;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    DecodedFrame decoded;
    Status error;
    EXPECT_EQ(DecodeFrame(corrupt, kMaxFrameBytesDefault, &decoded, &error),
              DecodeOutcome::kError)
        << "corrupt byte at " << pos;
    EXPECT_FALSE(error.ok());
  }
}

TEST(FrameTest, RejectsOversizedFrameBeforeBufferingPayload) {
  // Only the 4-byte length prefix announcing a huge frame: the decoder
  // must reject from the announcement alone, not wait for the payload.
  std::string prefix;
  PutFixed32(&prefix, 1u << 30);
  DecodedFrame decoded;
  Status error;
  EXPECT_EQ(DecodeFrame(prefix, kMaxFrameBytesDefault, &decoded, &error),
            DecodeOutcome::kError);
  EXPECT_NE(error.message().find("exceeds cap"), std::string::npos)
      << error;

  // The same frame passes under a bigger cap and fails under a smaller
  // one, so per-connection limits are enforceable.
  FrameHeader header;
  std::string frame;
  EncodeFrame(header, std::string(1000, 'x'), &frame);
  EXPECT_EQ(DecodeFrame(frame, frame.size(), &decoded, &error),
            DecodeOutcome::kFrame);
  EXPECT_EQ(DecodeFrame(frame, frame.size() - 1, &decoded, &error),
            DecodeOutcome::kError);
}

TEST(FrameTest, RejectsBadVersionLengthAndFlags) {
  FrameHeader header;
  header.request_id = 3;
  std::string frame;
  EncodeFrame(header, "", &frame);

  // Version byte is CRC-covered, so re-frame with a bogus version via a
  // hand-built body (flip byte then fix the CRC).
  std::string bad_version = frame;
  bad_version[4] = 2;
  uint32_t crc = crc32c::Value(std::string_view(bad_version)
                                   .substr(4, bad_version.size() - 8));
  std::string fixed_crc;
  PutFixed32(&fixed_crc, crc32c::Mask(crc));
  bad_version.replace(bad_version.size() - 4, 4, fixed_crc);
  DecodedFrame decoded;
  Status error;
  EXPECT_EQ(
      DecodeFrame(bad_version, kMaxFrameBytesDefault, &decoded, &error),
      DecodeOutcome::kError);
  EXPECT_NE(error.message().find("version"), std::string::npos) << error;

  // Bit 15 is outside kKnownFlagsMask; bit 0 (TRACE_CONTEXT) is legal.
  std::string bad_flags = frame;
  bad_flags[7] = static_cast<char>(0x80);
  crc = crc32c::Value(
      std::string_view(bad_flags).substr(4, bad_flags.size() - 8));
  fixed_crc.clear();
  PutFixed32(&fixed_crc, crc32c::Mask(crc));
  bad_flags.replace(bad_flags.size() - 4, 4, fixed_crc);
  EXPECT_EQ(DecodeFrame(bad_flags, kMaxFrameBytesDefault, &decoded, &error),
            DecodeOutcome::kError);
  EXPECT_NE(error.message().find("flags"), std::string::npos) << error;

  // A length below the fixed header+trailer minimum can never be valid.
  std::string runt;
  PutFixed32(&runt, 4);
  runt.append(16, '\0');
  EXPECT_EQ(DecodeFrame(runt, kMaxFrameBytesDefault, &decoded, &error),
            DecodeOutcome::kError);
  EXPECT_NE(error.message().find("below minimum"), std::string::npos)
      << error;
}

TEST(FrameTest, AcceptsAssignedFlagBits) {
  FrameHeader header;
  header.opcode = Opcode::kQuery;
  header.flags = kFlagTraceContext;
  header.request_id = 11;
  std::string frame;
  EncodeFrame(header, "body", &frame);
  DecodedFrame decoded;
  Status error;
  ASSERT_EQ(DecodeFrame(frame, kMaxFrameBytesDefault, &decoded, &error),
            DecodeOutcome::kFrame)
      << error;
  EXPECT_EQ(decoded.header.flags, kFlagTraceContext);
}

TEST(TraceContextTest, RoundTrip) {
  TraceContext ctx;
  ctx.trace_id = obs::TraceId{0x0123456789abcdefull, 0xfedcba9876543210ull};
  ctx.sampled = true;
  std::string wire;
  EncodeTraceContext(ctx, &wire);
  ASSERT_EQ(wire.size(), kTraceContextBytes);
  wire += "payload after the prefix";

  std::string_view view = wire;
  TraceContext decoded;
  ASSERT_TRUE(DecodeTraceContext(&view, &decoded).ok());
  EXPECT_EQ(decoded.trace_id, ctx.trace_id);
  EXPECT_TRUE(decoded.sampled);
  // The prefix — and only the prefix — is consumed.
  EXPECT_EQ(view, "payload after the prefix");
}

TEST(TraceContextTest, RejectsShortPrefixAndBadSamplingByte) {
  TraceContext ctx;
  ctx.trace_id = obs::TraceId{1, 2};
  std::string wire;
  EncodeTraceContext(ctx, &wire);

  std::string_view truncated = std::string_view(wire).substr(0, 16);
  TraceContext decoded;
  EXPECT_TRUE(DecodeTraceContext(&truncated, &decoded).IsCorruption());

  std::string bad = wire;
  bad[16] = 2;  // Sampling byte must be 0 or 1.
  std::string_view view = bad;
  EXPECT_TRUE(DecodeTraceContext(&view, &decoded).IsCorruption());
}

TEST(TraceContextTest, SpanListRoundTripPreservesTreeShape) {
  obs::Trace trace;
  trace.AppendSpan("rpc/QUERY", 0, 5'000'000, 900);
  trace.AppendSpan("execute", 1, 5'000'100, 200);
  ASSERT_EQ(trace.spans().size(), 2u);

  std::string wire;
  EncodeTraceSpans(trace.spans(), &wire);
  wire += "rest";
  std::string_view view = wire;
  std::vector<obs::Trace::Span> decoded;
  ASSERT_TRUE(DecodeTraceSpans(&view, &decoded).ok());
  EXPECT_EQ(view, "rest");
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "rpc/QUERY");
  EXPECT_EQ(decoded[0].depth, 0);
  EXPECT_EQ(decoded[1].name, "execute");
  EXPECT_EQ(decoded[1].depth, 1);
  // Start offsets are relative to the first span, so the root is 0 and
  // children keep their distance from it.
  EXPECT_EQ(decoded[0].start_ns, 0u);
  EXPECT_EQ(decoded[1].start_ns,
            trace.spans()[1].start_ns - trace.spans()[0].start_ns);
  EXPECT_EQ(decoded[1].duration_ns, trace.spans()[1].duration_ns);

  // Empty list is a single zero count byte.
  std::string empty;
  EncodeTraceSpans({}, &empty);
  EXPECT_EQ(empty.size(), 1u);
  std::string_view empty_view = empty;
  ASSERT_TRUE(DecodeTraceSpans(&empty_view, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(TraceContextTest, RejectsForgedSpanCountBeforeReserving) {
  std::string forged;
  PutVarint32(&forged, 0xffffffffu);
  std::string_view view = forged;
  std::vector<obs::Trace::Span> spans;
  Status s = DecodeTraceSpans(&view, &spans);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("count"), std::string::npos) << s;
}

TEST(SerdeTest, QueryRequestRoundTrip) {
  std::string payload;
  EncodeQueryRequest("author:mc* coal year:1975..", &payload);
  std::string_view text;
  ASSERT_TRUE(DecodeQueryRequest(payload, &text).ok());
  EXPECT_EQ(text, "author:mc* coal year:1975..");

  payload.push_back('x');
  EXPECT_TRUE(DecodeQueryRequest(payload, &text).IsCorruption());
}

TEST(SerdeTest, AddRequestRoundTrip) {
  std::vector<std::string> lines = {
      "Minow, M.\tAll in the Family\t95:275 (1992)",
      "Arceneaux, W. J., III\tCoal Fields\t95:691 (1993)",
  };
  std::string payload;
  EncodeAddRequest(lines, &payload);
  std::vector<std::string_view> decoded;
  ASSERT_TRUE(DecodeAddRequest(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], lines[0]);
  EXPECT_EQ(decoded[1], lines[1]);

  payload.push_back('x');
  EXPECT_TRUE(DecodeAddRequest(payload, &decoded).IsCorruption());
  // A count that promises more lines than the payload holds.
  std::string truncated;
  PutVarint32(&truncated, 3);
  PutLengthPrefixed(&truncated, "only one");
  EXPECT_FALSE(DecodeAddRequest(truncated, &decoded).ok());
}

TEST(SerdeTest, RejectsForgedCountsBeforeReserving) {
  // A tiny CRC-valid payload claiming 2^32-1 items must fail count
  // validation up front — not reserve() gigabytes and die on
  // bad_alloc (the DoS this guards against).
  std::string forged;
  PutVarint32(&forged, 0xffffffffu);
  std::vector<std::string_view> lines;
  Status s = DecodeAddRequest(forged, &lines);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("count"), std::string::npos) << s;

  std::string body;
  PutVarint64(&body, 1);  // total_matches
  body.push_back('\0');   // plan
  PutVarint32(&body, 0xffffffffu);  // forged hit count, empty body
  WireQueryResult result;
  s = DecodeQueryResult(body, &result);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("count"), std::string::npos) << s;
}

TEST(SerdeTest, QueryResultRoundTripPreservesScoreBits) {
  WireQueryResult result;
  result.total_matches = 12345;
  result.plan = 3;
  WireHit hit;
  hit.id = 42;
  hit.score = 0.1 + 0.2;  // A value decimal text would mangle.
  hit.author = "Minow, Martha";
  hit.title = "All in the Family and in All Families";
  hit.citation = "95:275 (1992)";
  result.hits.push_back(hit);
  WireHit second;
  second.id = 7;
  second.score = -0.0;
  result.hits.push_back(second);

  std::string body;
  EncodeQueryResult(result, &body);
  WireQueryResult decoded;
  ASSERT_TRUE(DecodeQueryResult(body, &decoded).ok());
  EXPECT_EQ(decoded.total_matches, 12345u);
  EXPECT_EQ(decoded.plan, 3);
  ASSERT_EQ(decoded.hits.size(), 2u);
  EXPECT_EQ(decoded.hits[0].id, 42u);
  EXPECT_EQ(decoded.hits[0].score, 0.1 + 0.2);  // Bit-exact transport.
  EXPECT_EQ(decoded.hits[0].author, "Minow, Martha");
  EXPECT_EQ(decoded.hits[0].title, hit.title);
  EXPECT_EQ(decoded.hits[0].citation, "95:275 (1992)");
  EXPECT_TRUE(std::signbit(decoded.hits[1].score));

  body.push_back('x');
  EXPECT_TRUE(DecodeQueryResult(body, &decoded).IsCorruption());
  EXPECT_FALSE(DecodeQueryResult("", &decoded).ok());
}

TEST(SerdeTest, StatsRoundTrip) {
  WireStats stats;
  stats.entry_count = 1u << 20;
  stats.group_count = 999;
  std::string body;
  EncodeStats(stats, &body);
  WireStats decoded;
  ASSERT_TRUE(DecodeStats(body, &decoded).ok());
  EXPECT_EQ(decoded.entry_count, 1u << 20);
  EXPECT_EQ(decoded.group_count, 999u);
  body.push_back('x');
  EXPECT_TRUE(DecodeStats(body, &decoded).IsCorruption());
}

TEST(SerdeTest, ResponsePayloadRoundTrip) {
  ResponsePayload response;
  response.status = WireStatus::kRetryableBusy;
  response.message = "worker queue full";
  response.body = "opaque body bytes";
  std::string payload;
  EncodeResponsePayload(response, &payload);
  ResponsePayload decoded;
  ASSERT_TRUE(DecodeResponsePayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.status, WireStatus::kRetryableBusy);
  EXPECT_EQ(decoded.message, "worker queue full");
  EXPECT_EQ(decoded.body, "opaque body bytes");
  EXPECT_TRUE(DecodeResponsePayload("", &decoded).IsCorruption());
}

TEST(SerdeTest, ReplSubscribeAndAckRoundTrip) {
  WirePosition cursor{3, 4096};
  std::string payload;
  EncodeReplSubscribe(cursor, &payload);
  WirePosition decoded;
  ASSERT_TRUE(DecodeReplSubscribe(payload, &decoded).ok());
  EXPECT_EQ(decoded.wal_number, 3u);
  EXPECT_EQ(decoded.offset, 4096u);
  payload.push_back('x');
  EXPECT_TRUE(DecodeReplSubscribe(payload, &decoded).IsCorruption());
  EXPECT_TRUE(DecodeReplSubscribe("short", &decoded).IsCorruption());

  WireReplSubscribeAck ack;
  ack.mode = 1;
  ack.start = {7, 123};
  std::string body;
  EncodeReplSubscribeAck(ack, &body);
  WireReplSubscribeAck decoded_ack;
  ASSERT_TRUE(DecodeReplSubscribeAck(body, &decoded_ack).ok());
  EXPECT_EQ(decoded_ack.mode, 1);
  EXPECT_EQ(decoded_ack.start.wal_number, 7u);
  EXPECT_EQ(decoded_ack.start.offset, 123u);
  // Only modes 0 (records) and 1 (snapshot-first) exist.
  body[0] = 2;
  EXPECT_TRUE(DecodeReplSubscribeAck(body, &decoded_ack).IsCorruption());
  EXPECT_TRUE(DecodeReplSubscribeAck("", &decoded_ack).IsCorruption());
}

TEST(SerdeTest, ReplRecordsRoundTripAndForgedCount) {
  WireReplRecords batch;
  batch.end = {2, 900};
  batch.committed = {2, 1400};
  batch.records = {"record one", "", std::string(300, 'z')};
  std::string payload;
  EncodeReplRecords(batch, &payload);
  WireReplRecords decoded;
  ASSERT_TRUE(DecodeReplRecords(payload, &decoded).ok());
  EXPECT_EQ(decoded.end.offset, 900u);
  EXPECT_EQ(decoded.committed.offset, 1400u);
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[0], "record one");
  EXPECT_EQ(decoded.records[1], "");
  EXPECT_EQ(decoded.records[2], std::string(300, 'z'));
  payload.push_back('x');
  EXPECT_TRUE(DecodeReplRecords(payload, &decoded).IsCorruption());

  // A forged record count must fail validation before the reserve()
  // (same peer-controlled-count defense as DecodeAddRequest).
  std::string forged;
  for (int i = 0; i < 4; ++i) {
    PutFixed64(&forged, 0);  // end + committed positions.
  }
  PutVarint32(&forged, 0xffffffffu);
  Status s = DecodeReplRecords(forged, &decoded);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("count"), std::string::npos) << s;
}

TEST(SerdeTest, ReplHeartbeatRoundTripAndBadDegradedByte) {
  WireReplHeartbeat hb;
  hb.committed = {5, 777};
  hb.degraded = 1;
  std::string payload;
  EncodeReplHeartbeat(hb, &payload);
  WireReplHeartbeat decoded;
  ASSERT_TRUE(DecodeReplHeartbeat(payload, &decoded).ok());
  EXPECT_EQ(decoded.committed.wal_number, 5u);
  EXPECT_EQ(decoded.committed.offset, 777u);
  EXPECT_EQ(decoded.degraded, 1);
  payload.back() = 2;  // Degraded is a boolean byte.
  EXPECT_TRUE(DecodeReplHeartbeat(payload, &decoded).IsCorruption());
  payload.push_back('x');
  EXPECT_TRUE(DecodeReplHeartbeat(payload, &decoded).IsCorruption());
}

TEST(SerdeTest, ReplSnapshotRoundTripAndForgedPairCount) {
  WireReplSnapshot chunk;
  chunk.done = 0;
  chunk.resume = {4, 64};
  chunk.pairs = {{"key/a", "value one"}, {"key/b", ""}};
  std::string payload;
  EncodeReplSnapshot(chunk, &payload);
  WireReplSnapshot decoded;
  ASSERT_TRUE(DecodeReplSnapshot(payload, &decoded).ok());
  EXPECT_EQ(decoded.done, 0);
  EXPECT_EQ(decoded.resume.wal_number, 4u);
  ASSERT_EQ(decoded.pairs.size(), 2u);
  EXPECT_EQ(decoded.pairs[0].first, "key/a");
  EXPECT_EQ(decoded.pairs[0].second, "value one");
  EXPECT_EQ(decoded.pairs[1].second, "");
  payload.push_back('x');
  EXPECT_TRUE(DecodeReplSnapshot(payload, &decoded).IsCorruption());
  payload.pop_back();
  payload[0] = 2;  // Done is a boolean byte.
  EXPECT_TRUE(DecodeReplSnapshot(payload, &decoded).IsCorruption());
  EXPECT_TRUE(DecodeReplSnapshot("", &decoded).IsCorruption());

  std::string forged;
  forged.push_back('\0');
  PutFixed64(&forged, 1);  // Resume position.
  PutFixed64(&forged, 0);
  PutVarint32(&forged, 0xffffffffu);
  Status s = DecodeReplSnapshot(forged, &decoded);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("count"), std::string::npos) << s;
}

TEST(StatusMappingTest, NamesAndKnownness) {
  EXPECT_EQ(OpcodeName(Opcode::kPing), "PING");
  EXPECT_EQ(OpcodeName(Opcode::kResponse), "RESPONSE");
  EXPECT_EQ(OpcodeName(static_cast<Opcode>(0x33)), "UNKNOWN");
  EXPECT_TRUE(IsKnownOpcode(0x01));
  EXPECT_TRUE(IsKnownOpcode(0x80));
  EXPECT_FALSE(IsKnownOpcode(0x00));
  EXPECT_FALSE(IsKnownOpcode(0x7f));
  EXPECT_EQ(WireStatusName(WireStatus::kOk), "OK");
  EXPECT_EQ(WireStatusName(WireStatus::kRetryableBusy), "RETRYABLE_BUSY");
  EXPECT_EQ(WireStatusName(static_cast<WireStatus>(200)), "UNKNOWN");
}

TEST(StatusMappingTest, EngineStatusRoundTripsThroughTheWire) {
  for (const WireStatusInfo& info : kWireStatusTable) {
    if (static_cast<uint8_t>(info.status) > 10) {
      continue;  // Transport-level conditions have no Status source.
    }
    Status original =
        info.status == WireStatus::kOk
            ? Status::OK()
            : Status(static_cast<StatusCode>(info.status), "detail");
    WireStatus wire = WireStatusFromStatus(original);
    EXPECT_EQ(wire, info.status);
    Status back = StatusFromWire(wire, std::string(original.message()));
    EXPECT_EQ(back.code(), original.code()) << info.name;
  }
}

TEST(StatusMappingTest, TransportConditionsMapToRetryableEngineCodes) {
  Status busy = StatusFromWire(WireStatus::kRetryableBusy, "queue full");
  EXPECT_TRUE(busy.IsResourceExhausted());
  // The whole point of RETRYABLE_BUSY: common/retry.h treats it as
  // transient, so RetryWithBackoff re-sends shed requests.
  EXPECT_TRUE(IsTransientError(busy));

  Status bad = StatusFromWire(WireStatus::kBadFrame, "crc");
  EXPECT_TRUE(bad.IsInvalidArgument());
  EXPECT_FALSE(IsTransientError(bad));

  Status unknown = StatusFromWire(WireStatus::kUnknownOpcode, "0x7f");
  EXPECT_TRUE(unknown.IsNotSupported());
  EXPECT_FALSE(IsTransientError(unknown));
}

// --- doc sync -------------------------------------------------------

std::string ReadDoc(const std::string& relative) {
  std::string path = std::string(AUTHIDX_REPO_ROOT) + "/" + relative;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing " << path;
  std::stringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

size_t CountTableRows(const std::string& doc, const std::string& prefix) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = doc.find(prefix, pos)) != std::string::npos) {
    ++count;
    pos += prefix.size();
  }
  return count;
}

// docs/PROTOCOL.md is the normative spec; its opcode table must list
// exactly the opcodes in net/protocol.h, value and name both.
TEST(DocSyncTest, ProtocolDocListsEveryOpcode) {
  std::string doc = ReadDoc("docs/PROTOCOL.md");
  for (const OpcodeInfo& info : kOpcodeTable) {
    std::string row =
        StringPrintf("| `0x%02x` | `%s` |",
                     static_cast<unsigned>(info.opcode), info.name);
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/PROTOCOL.md is missing the opcode row: " << row;
  }
  // Two-way: the doc must not list opcodes the header does not define.
  EXPECT_EQ(CountTableRows(doc, "| `0x"),
            std::size(kOpcodeTable))
      << "docs/PROTOCOL.md has extra or missing opcode rows";
}

// Same contract for the status table (decimal values, as in responses).
TEST(DocSyncTest, ProtocolDocListsEveryWireStatus) {
  std::string doc = ReadDoc("docs/PROTOCOL.md");
  size_t rows = 0;
  for (const WireStatusInfo& info : kWireStatusTable) {
    std::string row =
        StringPrintf("| `%u` | `%s` |",
                     static_cast<unsigned>(info.status), info.name);
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/PROTOCOL.md is missing the status row: " << row;
    ++rows;
  }
  size_t doc_rows = 0;
  for (unsigned value = 0; value < 256; ++value) {
    doc_rows += CountTableRows(
        doc, StringPrintf("| `%u` | `", value));
  }
  EXPECT_EQ(doc_rows, rows)
      << "docs/PROTOCOL.md has extra or missing status rows";
}

// The flag table is normative the same way: every assigned bit in the
// header must appear in the doc (bit index, value, and name), and the
// doc must not invent bits the header does not assign.
TEST(DocSyncTest, ProtocolDocListsEveryFlagBit) {
  std::string doc = ReadDoc("docs/PROTOCOL.md");
  uint16_t mask = 0;
  for (const FlagInfo& info : kFlagTable) {
    unsigned index = 0;
    while ((info.bit >> index) != 1u) {
      ++index;
    }
    std::string row =
        StringPrintf("| bit %u (value %u) | `%s` |", index,
                     static_cast<unsigned>(info.bit), info.name);
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/PROTOCOL.md is missing the flag row: " << row;
    mask = static_cast<uint16_t>(mask | info.bit);
  }
  // The table and the mask must agree, or DecodeFrame rejects (or
  // accepts) bits the doc says otherwise about.
  EXPECT_EQ(mask, kKnownFlagsMask);
  EXPECT_EQ(CountTableRows(doc, "| bit "), std::size(kFlagTable))
      << "docs/PROTOCOL.md has extra or missing flag rows";
}

// The frame constants quoted in the doc's layout section must match.
TEST(DocSyncTest, ProtocolDocQuotesFrameConstants) {
  std::string doc = ReadDoc("docs/PROTOCOL.md");
  EXPECT_NE(doc.find("version = `1`"), std::string::npos);
  EXPECT_NE(doc.find("16 bytes"), std::string::npos);   // Header size.
  EXPECT_NE(doc.find("1 MiB"), std::string::npos);      // Default cap.
}

}  // namespace
}  // namespace authidx::net
