// Crash-consistency sweep: run a fixed put/delete workload against an
// engine whose filesystem dies permanently at write-path op k — for
// EVERY k from 0 to the op count of a fault-free run — then "crash"
// (drop the engine), reopen on a healthy filesystem, and check the
// durability contract:
//
//   * every acknowledged write (sync_writes=true, so acked == synced)
//     is present with its exact value;
//   * the single first-failed write is indeterminate — its WAL record
//     may have become durable before the failure surfaced — so either
//     the pre-op or post-op state is accepted for that one key;
//   * every write issued after the engine degraded was rejected fast
//     and must NOT appear;
//   * VerifyIntegrity() reports the reopened store clean.
//
// A probabilistic variant repeats the same invariant under random fault
// placement for several seeds.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"
#include "fault_env.h"

namespace authidx::storage {
namespace {

// Pid-unique scratch root: the same binary from two build trees (e.g.
// the asan and tsan presets) may sweep concurrently and must not share
// directories.
std::string ScratchDir(const char* name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid());
}

constexpr int kOps = 32;
constexpr int kKeys = 8;

std::string KeyName(int i) { return StringPrintf("key%02d", i % kKeys); }

std::string ValueName(int i) {
  return StringPrintf("value-%04d-abcdefghijklmnop", i);
}

bool IsDeleteOp(int i) { return (i % 7) == 6; }

EngineOptions SweepOptions(Env* env) {
  EngineOptions options;
  options.env = env;
  options.sync_writes = true;     // Acked must mean durable.
  options.memtable_bytes = 256;   // Flush every few ops.
  options.l0_compaction_trigger = 2;  // Compact often too.
  options.background_retry_attempts = 2;
  options.retry_base_delay_us = 0;  // Retries are instant in tests.
  return options;
}

struct RunResult {
  bool open_ok = false;
  // E0: fold of every acknowledged op, in order.
  std::map<std::string, std::string> expected;
  // The first failed op, whose effect is indeterminate.
  bool have_indeterminate = false;
  std::string ind_key;
  std::string ind_value;
  bool ind_is_delete = false;
};

// Drives the workload until the first failure, then asserts fail-fast
// rejection and "crashes" by letting the engine drop while the env
// still fails.
RunResult RunWorkload(const std::string& dir, tests::FaultEnv* env) {
  RunResult r;
  auto engine = StorageEngine::Open(dir, SweepOptions(env));
  if (!engine.ok()) {
    return r;
  }
  r.open_ok = true;
  for (int i = 0; i < kOps; ++i) {
    std::string key = KeyName(i);
    Status s = IsDeleteOp(i) ? (*engine)->Delete(key)
                             : (*engine)->Put(key, ValueName(i));
    if (s.ok()) {
      if (IsDeleteOp(i)) {
        r.expected.erase(key);
      } else {
        r.expected[key] = ValueName(i);
      }
      continue;
    }
    r.have_indeterminate = true;
    r.ind_key = key;
    r.ind_value = ValueName(i);
    r.ind_is_delete = IsDeleteOp(i);
    // The error must be sticky: later writes are rejected before they
    // touch the WAL, and reads keep serving.
    EXPECT_TRUE((*engine)->degraded());
    EXPECT_FALSE((*engine)->Put("rejected-sentinel", "x").ok());
    EXPECT_FALSE((*engine)->Delete("rejected-sentinel").ok());
    break;
  }
  return r;
}

// Reopens on a healthy env and checks the contract for one run.
void VerifyRecovered(const std::string& dir, const RunResult& r,
                     const std::string& label) {
  auto engine = StorageEngine::Open(dir, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << label << ": reopen failed: " << engine.status();
  for (int key_index = 0; key_index < kKeys; ++key_index) {
    std::string key = StringPrintf("key%02d", key_index);
    auto got = (*engine)->Get(key);
    ASSERT_TRUE(got.ok()) << label << ": Get(" << key << ")";
    if (r.have_indeterminate && key == r.ind_key) {
      // E0 (op never applied) or E1 (its WAL record was durable).
      auto e0 = r.expected.find(key);
      bool matches_e0 = e0 != r.expected.end()
                            ? (got->has_value() && **got == e0->second)
                            : !got->has_value();
      bool matches_e1 = r.ind_is_delete
                            ? !got->has_value()
                            : (got->has_value() && **got == r.ind_value);
      EXPECT_TRUE(matches_e0 || matches_e1)
          << label << ": indeterminate key " << key << " holds neither the "
          << "pre-op nor the post-op state";
      continue;
    }
    auto want = r.expected.find(key);
    if (want != r.expected.end()) {
      ASSERT_TRUE(got->has_value())
          << label << ": acknowledged write lost for " << key;
      EXPECT_EQ(**got, want->second) << label << ": wrong value for " << key;
    } else {
      EXPECT_FALSE(got->has_value())
          << label << ": unexpected value for " << key;
    }
  }
  auto sentinel = (*engine)->Get("rejected-sentinel");
  ASSERT_TRUE(sentinel.ok());
  EXPECT_FALSE(sentinel->has_value())
      << label << ": rejected write became durable";
  auto report = (*engine)->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << label << ": " << report.status();
  EXPECT_TRUE(report->clean()) << label << ": integrity scan found damage ("
                               << report->manifest_status.ToString() << ", "
                               << report->corrupt_files
                               << " corrupt table(s))";
}

TEST(FaultSweepTest, EveryFaultPointPreservesAcknowledgedWrites) {
  std::string base = ScratchDir("fault_sweep_every_k");
  // Pass 1: count the write-path ops of a fault-free run (including the
  // destructor's Close) so the sweep covers every possible fault point.
  std::filesystem::remove_all(base);
  tests::FaultEnv counting_env;
  RunWorkload(base, &counting_env);
  uint64_t total_ops = counting_env.write_ops();
  ASSERT_GT(total_ops, 0u);
  std::filesystem::remove_all(base);

  for (uint64_t k = 0; k <= total_ops; ++k) {
    std::string label = StringPrintf("k=%llu/%llu",
                                     static_cast<unsigned long long>(k),
                                     static_cast<unsigned long long>(total_ops));
    std::string dir = base + "_run";
    std::filesystem::remove_all(dir);
    tests::FaultEnv env;
    env.FailFrom(k);
    RunResult r = RunWorkload(dir, &env);
    if (!r.open_ok) {
      // The store never opened; whatever partial files exist must still
      // reopen to an empty, clean store.
      EXPECT_LE(k, total_ops);
    }
    VerifyRecovered(dir, r, label);
    if (::testing::Test::HasFatalFailure()) {
      return;  // One detailed failure beats hundreds of repeats.
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(FaultSweepTest, RandomFaultPlacementPreservesAcknowledgedWrites) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::string dir =
        ScratchDir("fault_sweep_rand") +
        StringPrintf("_%llu", static_cast<unsigned long long>(seed));
    std::filesystem::remove_all(dir);
    tests::FaultEnv env;
    env.FailWithProbability(0.03, seed);
    RunResult r = RunWorkload(dir, &env);
    VerifyRecovered(dir, r, StringPrintf("seed=%llu",
                                         static_cast<unsigned long long>(seed)));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    std::filesystem::remove_all(dir);
  }
}

// Torn final writes at every fault point: same sweep, but each failing
// append first leaks half its bytes to disk. Recovery must treat the
// torn tail as absent.
TEST(FaultSweepTest, TornWritesAtEveryFaultPointAreDiscarded) {
  std::string base = ScratchDir("fault_sweep_torn");
  std::filesystem::remove_all(base);
  tests::FaultEnv counting_env;
  RunWorkload(base, &counting_env);
  uint64_t total_ops = counting_env.write_ops();
  ASSERT_GT(total_ops, 0u);
  std::filesystem::remove_all(base);

  // Every 3rd k keeps the sweep fast; the plain sweep already covers
  // every k without tearing.
  for (uint64_t k = 0; k <= total_ops; k += 3) {
    std::string label = StringPrintf("torn k=%llu",
                                     static_cast<unsigned long long>(k));
    std::string dir = base + "_run";
    std::filesystem::remove_all(dir);
    tests::FaultEnv env;
    env.set_torn_writes(true);
    env.FailFrom(k);
    RunResult r = RunWorkload(dir, &env);
    VerifyRecovered(dir, r, label);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace authidx::storage
