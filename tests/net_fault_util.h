#ifndef AUTHIDX_TESTS_NET_FAULT_UTIL_H_
#define AUTHIDX_TESTS_NET_FAULT_UTIL_H_

// In-process TCP relay for network fault injection (the socket-level
// sibling of tests/fault_env.h).
//
// TcpRelay listens on an ephemeral loopback port and forwards every
// accepted connection to a real server, byte for byte, through pump
// threads — until a fault knob is armed:
//
//   set_forward_delay_us(d)       sleep d µs before relaying each chunk
//                                 toward the server (a slow network;
//                                 drives client deadline expiry)
//   set_truncate_after(n)         relay only the first n server->client
//                                 bytes, then hard-close both sides —
//                                 the client sees a response cut off
//                                 mid-frame
//   set_drop_responses(true)      swallow server->client bytes while
//                                 keeping the connection open (a
//                                 blackholed reply; drives receive
//                                 timeouts without a connection reset)
//
// Knobs apply to connections accepted after they are set (each
// connection snapshots the truncation budget at accept), so a test can
// arm a fault, let one doomed connection play out, disarm, and verify
// the client's next connection recovers. Response bytes are counted
// per-relay in response_bytes_forwarded().

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace authidx::tests {

class TcpRelay {
 public:
  /// Relay forwarding to 127.0.0.1:`target_port`. Call Start() next.
  explicit TcpRelay(int target_port) : target_port_(target_port) {}

  ~TcpRelay() { Stop(); }

  TcpRelay(const TcpRelay&) = delete;
  TcpRelay& operator=(const TcpRelay&) = delete;

  /// Binds an ephemeral loopback port and starts accepting. Returns
  /// false when the socket setup fails (port() stays 0).
  bool Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  /// Closes the listener and every relayed connection, joins threads.
  void Stop() {
    if (listen_fd_ < 0) {
      return;
    }
    stop_.store(true, std::memory_order_release);
    // shutdown() wakes threads blocked in accept()/recv() without
    // invalidating the descriptors they still hold; close() must wait
    // until every thread that could touch an fd has been joined.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    ShutdownAllConns();
    for (std::thread& t : pump_threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    pump_threads_.clear();
    CloseAllConns();
  }

  /// The port clients should connect to.
  int port() const { return port_; }

  void set_forward_delay_us(uint64_t us) {
    forward_delay_us_.store(us, std::memory_order_release);
  }
  void set_truncate_after(uint64_t response_bytes) {
    truncate_after_.store(response_bytes, std::memory_order_release);
  }
  void set_drop_responses(bool drop) {
    drop_responses_.store(drop, std::memory_order_release);
  }
  void clear_faults() {
    forward_delay_us_.store(0, std::memory_order_release);
    truncate_after_.store(UINT64_MAX, std::memory_order_release);
    drop_responses_.store(false, std::memory_order_release);
  }

  /// Server->client bytes actually delivered across all connections.
  uint64_t response_bytes_forwarded() const {
    return response_bytes_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      int client_fd = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd < 0) {
        return;  // Listener closed by Stop().
      }
      int upstream_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(target_port_));
      if (upstream_fd < 0 ||
          ::connect(upstream_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(client_fd);
        if (upstream_fd >= 0) {
          ::close(upstream_fd);
        }
        continue;
      }
      // Per-connection truncation budget, snapshotted at accept so a
      // later disarm does not resurrect an already-doomed connection.
      auto budget = std::make_shared<std::atomic<uint64_t>>(
          truncate_after_.load(std::memory_order_acquire));
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_acquire)) {
          ::close(client_fd);
          ::close(upstream_fd);
          return;
        }
        conn_fds_.push_back(client_fd);
        conn_fds_.push_back(upstream_fd);
        pump_threads_.emplace_back([this, client_fd, upstream_fd] {
          Pump(client_fd, upstream_fd, /*server_to_client=*/false, nullptr);
        });
        pump_threads_.emplace_back([this, client_fd, upstream_fd, budget] {
          Pump(upstream_fd, client_fd, /*server_to_client=*/true,
               budget.get());
          // Keep the budget alive for the thread's lifetime.
          (void)budget;
        });
      }
    }
  }

  void Pump(int from, int to, bool server_to_client,
            std::atomic<uint64_t>* budget) {
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      if (server_to_client) {
        if (drop_responses_.load(std::memory_order_acquire)) {
          continue;
        }
        uint64_t remaining = budget->load(std::memory_order_acquire);
        if (static_cast<uint64_t>(n) >= remaining) {
          // Deliver the last in-budget bytes — a frame cut off in the
          // middle — then hard-close both directions.
          if (remaining > 0) {
            SendAll(to, buf, static_cast<size_t>(remaining));
            response_bytes_.fetch_add(remaining, std::memory_order_acq_rel);
          }
          budget->store(0, std::memory_order_release);
          ::shutdown(from, SHUT_RDWR);
          ::shutdown(to, SHUT_RDWR);
          break;
        }
        budget->fetch_sub(static_cast<uint64_t>(n),
                          std::memory_order_acq_rel);
        response_bytes_.fetch_add(static_cast<uint64_t>(n),
                                  std::memory_order_acq_rel);
      } else {
        uint64_t delay = forward_delay_us_.load(std::memory_order_acquire);
        if (delay > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(delay));
        }
      }
      if (!SendAll(to, buf, static_cast<size_t>(n))) {
        break;
      }
    }
    // EOF or error: half-close the forward direction so the peer sees
    // the same stream end the origin produced.
    ::shutdown(to, SHUT_WR);
  }

  static bool SendAll(int fd, const char* data, size_t size) {
    size_t sent = 0;
    while (sent < size) {
      ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void ShutdownAllConns() {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }

  // Only safe once the accept and pump threads have been joined.
  void CloseAllConns() {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) {
      ::close(fd);
    }
    conn_fds_.clear();
  }

  int target_port_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> forward_delay_us_{0};
  std::atomic<uint64_t> truncate_after_{UINT64_MAX};
  std::atomic<bool> drop_responses_{false};
  std::atomic<uint64_t> response_bytes_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> pump_threads_;
};

}  // namespace authidx::tests

#endif  // AUTHIDX_TESTS_NET_FAULT_UTIL_H_
