#include "authidx/common/coding.h"

#include <gtest/gtest.h>

#include "authidx/common/random.h"

namespace authidx {
namespace {

TEST(FixedCodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, UINT32_MAX);
  ASSERT_EQ(buf.size(), 16u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 1u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed32(buf.data() + 12), UINT32_MAX);
}

TEST(FixedCodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  PutFixed64(&buf, UINT64_MAX);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFULL);
  EXPECT_EQ(DecodeFixed64(buf.data() + 8), UINT64_MAX);
}

TEST(FixedCodingTest, LittleEndianLayout) {
  std::string buf;
  PutFixed32(&buf, 0x04030201);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(VarintTest, KnownEncodedLengths) {
  EXPECT_EQ(VarintLength32(0), 1);
  EXPECT_EQ(VarintLength32(127), 1);
  EXPECT_EQ(VarintLength32(128), 2);
  EXPECT_EQ(VarintLength32(16383), 2);
  EXPECT_EQ(VarintLength32(16384), 3);
  EXPECT_EQ(VarintLength32(UINT32_MAX), 5);
  EXPECT_EQ(VarintLength64(UINT64_MAX), 10);
}

TEST(VarintTest, RoundTripBoundaries) {
  std::string buf;
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      UINT32_MAX, 1ull << 32,
                             1ull << 63, UINT64_MAX};
  for (uint64_t v : values) {
    PutVarint64(&buf, v);
  }
  std::string_view input = buf;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&input, &got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(VarintTest, Varint32RejectsOversizedValue) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  std::string_view input = buf;
  uint32_t v = 0;
  EXPECT_TRUE(GetVarint32(&input, &v).IsCorruption());
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  std::string_view input = std::string_view(buf).substr(0, 1);
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint64(&input, &v).IsCorruption());
}

TEST(VarintTest, AllContinuationBytesIsCorruption) {
  std::string buf(11, '\x80');
  std::string_view input = buf;
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint64(&input, &v).IsCorruption());
}

// Regression: the 10th byte of a varint64 holds only bit 63. Payload
// bits above it used to be shifted out silently, so a non-canonical
// encoding decoded to a wrong value instead of failing.
TEST(VarintTest, Varint64OverflowBitsAreCorruption) {
  // Nine continuation bytes, then a final byte with payload 0x02: the
  // encoded value would need bit 64.
  std::string buf(9, '\x81');
  buf.push_back('\x02');
  std::string_view input = buf;
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint64(&input, &v).IsCorruption());

  // The same prefix with final payload 0x01 (bit 63 set) is the
  // canonical encoding of a valid value and must still decode.
  buf[9] = '\x01';
  input = buf;
  EXPECT_TRUE(GetVarint64(&input, &v).ok());
  EXPECT_EQ(v >> 63, 1u);

  // UINT64_MAX itself still round-trips.
  std::string max;
  PutVarint64(&max, UINT64_MAX);
  input = max;
  EXPECT_TRUE(GetVarint64(&input, &v).ok());
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(LengthPrefixedTest, RoundTripIncludingEmptyAndBinary) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string binary("\x00\x01\xFF", 3);
  PutLengthPrefixed(&buf, binary);
  std::string_view input = buf;
  std::string_view piece;
  ASSERT_TRUE(GetLengthPrefixed(&input, &piece).ok());
  EXPECT_EQ(piece, "");
  ASSERT_TRUE(GetLengthPrefixed(&input, &piece).ok());
  EXPECT_EQ(piece, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&input, &piece).ok());
  EXPECT_EQ(piece, binary);
  EXPECT_TRUE(input.empty());
}

TEST(LengthPrefixedTest, TruncatedBodyIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(buf.size() - 3);
  std::string_view input = buf;
  std::string_view piece;
  EXPECT_TRUE(GetLengthPrefixed(&input, &piece).IsCorruption());
}

TEST(ZigZagTest, KnownMappings) {
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
  EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(INT64_MAX)), INT64_MAX);
}

// Property sweep: random values of mixed magnitude round-trip through
// varint64, preserving stream framing across many values.
class VarintPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintPropertyTest, RandomStreamRoundTrips) {
  Random rng(GetParam());
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Skewed(63);
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  std::string_view input = buf;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&input, &got).ok());
    ASSERT_EQ(got, v);
  }
  EXPECT_TRUE(input.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 0xABCDEF));

// ZigZag round-trips for random signed values.
class ZigZagPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZigZagPropertyTest, RoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next64());
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZigZagPropertyTest, ::testing::Values(7, 99));

}  // namespace
}  // namespace authidx
