#include "authidx/common/status.h"

#include <gtest/gtest.h>

#include "authidx/common/result.h"

namespace authidx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Corruption("bad block");
  EXPECT_EQ(s.ToString(), "Corruption: bad block");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IOError("disk full").WithContext("writing table 7");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "writing table 7: disk full");
  // OK statuses pass through unchanged.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("k"), Status::NotFound("k"));
  EXPECT_FALSE(Status::NotFound("k") == Status::NotFound("j"));
  EXPECT_FALSE(Status::NotFound("k") == Status::Corruption("k"));
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  AUTHIDX_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_TRUE(UsesReturnMacro(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  AUTHIDX_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorStates) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = ParsePositive(-3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsOutOfRange());
  EXPECT_EQ(err.ValueOr(7), 7);
  EXPECT_EQ(ok.ValueOr(7), 21);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(Doubled(0).status().IsOutOfRange());
}

TEST(ResultTest, ConstructedFromOkStatusBecomesInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r{std::make_unique<int>(5)};
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> moved = std::move(r).value();
  EXPECT_EQ(*moved, 5);
}

}  // namespace
}  // namespace authidx
