#include "authidx/query/planner.h"

#include <gtest/gtest.h>

#include "authidx/query/parser.h"

namespace authidx::query {
namespace {

PlannerStats StatsWith(size_t entries, size_t min_df, bool has_terms,
                       bool unknown = false) {
  PlannerStats stats;
  stats.entry_count = entries;
  stats.min_term_df = min_df;
  stats.has_title_terms = has_terms;
  stats.unknown_term = unknown;
  return stats;
}

TEST(PlannerTest, AuthorClausesAlwaysWin) {
  Query q = *ParseQuery("author:smith coal mining");
  Plan plan = ChoosePlan(q, StatsWith(100000, 50000, true));
  EXPECT_EQ(plan.kind, PlanKind::kAuthorExact);

  q = *ParseQuery("author:sm* coal");
  plan = ChoosePlan(q, StatsWith(100000, 1, true));
  EXPECT_EQ(plan.kind, PlanKind::kAuthorPrefix);

  q = *ParseQuery("author~smith coal");
  plan = ChoosePlan(q, StatsWith(100000, 1, true));
  EXPECT_EQ(plan.kind, PlanKind::kAuthorFuzzy);
}

TEST(PlannerTest, TitleTermsBeatFullScan) {
  Query q = *ParseQuery("coal mining");
  Plan plan = ChoosePlan(q, StatsWith(100000, 120, true));
  EXPECT_EQ(plan.kind, PlanKind::kTitleTerms);
  EXPECT_EQ(plan.estimated_candidates, 120u);
  EXPECT_FALSE(plan.provably_empty);
}

TEST(PlannerTest, UnknownTermProvesEmpty) {
  Query q = *ParseQuery("coal zzzunknown");
  Plan plan = ChoosePlan(q, StatsWith(100000, 0, true, /*unknown=*/true));
  EXPECT_EQ(plan.kind, PlanKind::kTitleTerms);
  EXPECT_TRUE(plan.provably_empty);
  EXPECT_EQ(plan.estimated_candidates, 0u);
}

TEST(PlannerTest, RelevanceLimitedConjunctionsPrune) {
  // The pruned top-k plan applies exactly when the query is a pure
  // relevance-ranked title conjunction with a boundable page.
  Query q = *ParseQuery("coal mining order:relevance limit:20");
  Plan plan = ChoosePlan(q, StatsWith(100000, 120, true));
  EXPECT_EQ(plan.kind, PlanKind::kTitleTopK);
  EXPECT_FALSE(plan.provably_empty);
}

TEST(PlannerTest, TopKPruningGates) {
  PlannerStats stats = StatsWith(100000, 120, true);
  // Residual filters or exclusions: exhaustive path.
  EXPECT_EQ(
      ChoosePlan(*ParseQuery("coal mining order:relevance limit:20 -tax"),
                 stats)
          .kind,
      PlanKind::kTitleTerms);
  EXPECT_EQ(ChoosePlan(*ParseQuery(
                           "coal mining order:relevance limit:20 year:1980"),
                       stats)
                .kind,
            PlanKind::kTitleTerms);
  EXPECT_EQ(ChoosePlan(*ParseQuery(
                           "coal mining order:relevance limit:20 student:no"),
                       stats)
                .kind,
            PlanKind::kTitleTerms);
  // Default (collation) order: not a top-k query.
  EXPECT_EQ(ChoosePlan(*ParseQuery("coal mining limit:20"), stats).kind,
            PlanKind::kTitleTerms);
  // Pages beyond the top-k cap fall back to exhaustive.
  EXPECT_EQ(ChoosePlan(*ParseQuery("coal mining order:relevance limit:20 "
                                   "offset:5000"),
                       stats)
                .kind,
            PlanKind::kTitleTerms);
  // An unknown term still proves emptiness before any ranking runs.
  Plan empty = ChoosePlan(*ParseQuery("coal zzz order:relevance limit:20"),
                          StatsWith(100000, 0, true, /*unknown=*/true));
  EXPECT_TRUE(empty.provably_empty);
}

TEST(PlannerTest, FilterOnlyQueriesFullScan) {
  Query q = *ParseQuery("year:1980..1990");
  Plan plan = ChoosePlan(q, StatsWith(5000, 0, false));
  EXPECT_EQ(plan.kind, PlanKind::kFullScan);
  EXPECT_EQ(plan.estimated_candidates, 5000u);
}

TEST(PlannerTest, PlanKindNames) {
  EXPECT_EQ(PlanKindToString(PlanKind::kAuthorExact), "author-exact");
  EXPECT_EQ(PlanKindToString(PlanKind::kAuthorPrefix), "author-prefix");
  EXPECT_EQ(PlanKindToString(PlanKind::kAuthorFuzzy), "author-fuzzy");
  EXPECT_EQ(PlanKindToString(PlanKind::kTitleTerms), "title-terms");
  EXPECT_EQ(PlanKindToString(PlanKind::kFullScan), "full-scan");
  EXPECT_EQ(PlanKindToString(PlanKind::kTitleTopK), "title-topk");
}

}  // namespace
}  // namespace authidx::query
