#include "authidx/obs/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/metrics_text.h"
#include "authidx/obs/log.h"
#include "authidx/obs/slowlog.h"
#include "authidx/storage/engine.h"
#include "fault_env.h"

namespace authidx::obs {
namespace {

// Minimal HTTP/1.1 client response: status line + headers + body,
// parsed from a full read-until-EOF capture (the server always sends
// Connection: close).
struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::string body;
};

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

// Sends `raw` to 127.0.0.1:port, reads to EOF, parses the response.
// Returns false on any socket failure.
bool RawRequest(int port, const std::string& raw, ClientResponse* out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::write(fd, raw.data() + sent, raw.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) return false;
  std::string status_line = response.substr(0, line_end);
  if (status_line.rfind("HTTP/1.1 ", 0) != 0 || status_line.size() < 12) {
    return false;
  }
  out->status = std::atoi(status_line.c_str() + 9);

  size_t headers_end = response.find("\r\n\r\n");
  if (headers_end == std::string::npos) return false;
  size_t pos = line_end + 2;
  while (pos < headers_end) {
    size_t eol = response.find("\r\n", pos);
    std::string header = response.substr(pos, eol - pos);
    size_t colon = header.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(header.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < header.size() && header[value_start] == ' ') {
        ++value_start;
      }
      out->headers[name] = header.substr(value_start);
    }
    pos = eol + 2;
  }
  out->body = response.substr(headers_end + 4);
  return true;
}

bool Get(int port, const std::string& path, ClientResponse* out) {
  return RawRequest(port,
                    "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n",
                    out);
}

TEST(HttpServerTest, StartAssignsEphemeralPortAndStopIsIdempotent) {
  HttpServer server;
  EXPECT_FALSE(server.running());
  server.Stop();  // Stop before Start is a no-op.
  server.Route("/ping", [] {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Second Stop is a no-op.
}

TEST(HttpServerTest, ServesRegisteredRoutes) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  server.Route("/json", [] {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"ok\":true}";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());

  ClientResponse response;
  ASSERT_TRUE(Get(server.port(), "/ping", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "pong");
  EXPECT_EQ(response.headers["content-length"], "4");
  EXPECT_EQ(response.headers["connection"], "close");
  EXPECT_NE(response.headers["content-type"].find("text/plain"),
            std::string::npos);

  ASSERT_TRUE(Get(server.port(), "/json", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["content-type"], "application/json");
  EXPECT_EQ(response.body, "{\"ok\":true}");

  // Query strings are stripped before route matching.
  ASSERT_TRUE(Get(server.port(), "/ping?verbose=1", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "pong");

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
}

TEST(HttpServerTest, RejectsUnknownPathsMethodsAndGarbage) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());

  ClientResponse response;
  ASSERT_TRUE(Get(server.port(), "/nope", &response));
  EXPECT_EQ(response.status, 404);

  ASSERT_TRUE(RawRequest(server.port(),
                         "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n",
                         &response));
  EXPECT_EQ(response.status, 405);

  ASSERT_TRUE(RawRequest(server.port(), "garbage\r\n\r\n", &response));
  EXPECT_EQ(response.status, 400);

  server.Stop();
}

TEST(HttpServerTest, HandlesSequentialAndConcurrentClients) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &ok_count] {
      for (int i = 0; i < kPerThread; ++i) {
        ClientResponse response;
        if (Get(server.port(), "/ping", &response) &&
            response.status == 200 && response.body == "pong") {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(server.requests_served(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  server.Stop();
}

// Regression for the PR 3 documented limitation: the accept loop used
// to serve connections serially, so one slow /metrics scrape starved
// every /healthz probe behind it. With the handler pool, /healthz must
// answer while slow requests are still blocked mid-handler.
TEST(HttpServerTest, SlowScrapeDoesNotStarveHealthz) {
  HttpServer server;
  std::atomic<int> slow_active{0};
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  server.Route("/slow", [&slow_active, released] {
    slow_active.fetch_add(1, std::memory_order_relaxed);
    released.wait();  // Hold the handler thread until the test says so.
    HttpResponse r;
    r.body = "done";
    return r;
  });
  server.Route("/healthz", [] {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());

  // Pin down all but one of the handler threads (the pool has four).
  constexpr int kSlowClients = 3;
  std::vector<std::thread> slow_clients;
  for (int i = 0; i < kSlowClients; ++i) {
    slow_clients.emplace_back([&server] {
      ClientResponse response;
      if (Get(server.port(), "/slow", &response)) {
        EXPECT_EQ(response.body, "done");
      }
    });
  }
  while (slow_active.load(std::memory_order_relaxed) < kSlowClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Old behavior: this Get would block behind the wedged scrapes and
  // the test would hang until their 5s socket timeouts.
  ClientResponse response;
  ASSERT_TRUE(Get(server.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");

  release.set_value();
  for (std::thread& t : slow_clients) {
    t.join();
  }
  server.Stop();
}

TEST(HttpServerTest, SurvivesClientAbortBeforeReadingLargeResponse) {
  HttpServer server;
  // Body far larger than the loopback socket buffers, so the worker is
  // still mid-write when the client vanishes.
  server.Route("/big", [] {
    HttpResponse r;
    r.body.assign(8 * 1024 * 1024, 'x');
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());

  // Abort mid-response: send the request, then reset the connection
  // without reading a byte (SO_LINGER 0 turns close() into an RST).
  // The server's send must fail with EPIPE/ECONNRESET — a SIGPIPE
  // would kill this whole test binary.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char kRequest[] = "GET /big HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_GT(::write(fd, kRequest, sizeof(kRequest) - 1), 0);
  struct linger hard_reset = {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
               sizeof(hard_reset));
  ::close(fd);

  // The worker thread survives and keeps answering.
  ClientResponse response;
  ASSERT_TRUE(Get(server.port(), "/big", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 8u * 1024 * 1024);
  server.Stop();
}

// The full observability surface the CLI `serve` command wires up,
// driven end-to-end over real sockets against an in-memory catalog.
class ObservabilityEndpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = core::AuthorIndex::Create();
    Entry entry;
    entry.author = {"Minow", "Martha", "", false};
    entry.title = "All in the Family and in All Families";
    entry.citation = {95, 275, 1992};
    ASSERT_TRUE(catalog_->Add(std::move(entry)).ok());
    Entry second;
    second.author = {"Arceneaux", "Webster J.", "III", false};
    second.title = "Potential Criminal Liability in the Coal Fields";
    second.citation = {95, 691, 1993};
    ASSERT_TRUE(catalog_->Add(std::move(second)).ok());

    logger_ = std::make_unique<Logger>(LogLevel::kInfo);
    auto sink = std::make_unique<VectorSink>();
    lines_ = sink.get();
    logger_->AddSink(std::move(sink));
    catalog_->SetLogger(logger_.get());

    core::AuthorIndex* catalog = catalog_.get();
    Logger* logger = logger_.get();
    server_.Route("/metrics", [catalog] {
      HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = format::MetricsToPrometheusText(catalog->GetMetricsSnapshot());
      return r;
    });
    server_.Route("/healthz", [catalog, logger] {
      HttpResponse r;
      // Mirrors the CLI: a sticky storage error outranks logged errors.
      if (catalog->StorageDegraded()) {
        r.status = 503;
        r.body = "degraded: " +
                 catalog->StorageBackgroundError().ToString() + "\n";
      } else if (logger->error_count() != 0) {
        r.status = 503;
        r.body = "degraded: " + logger->last_error() + "\n";
      } else {
        r.body = "ok\n";
      }
      return r;
    });
    server_.Route("/varz", [catalog] {
      HttpResponse r;
      r.content_type = "application/json";
      r.body = "{\"stats\":" + core::ComputeStats(*catalog).ToJson() + "}";
      return r;
    });
    server_.Route("/slowlog", [catalog] {
      HttpResponse r;
      r.content_type = "application/json";
      r.body = SlowQueryLog::ToJson(catalog->SlowQueries());
      return r;
    });
    ASSERT_TRUE(server_.Start(0).ok());
  }

  void TearDown() override { server_.Stop(); }

  std::unique_ptr<core::AuthorIndex> catalog_;
  std::unique_ptr<Logger> logger_;
  VectorSink* lines_ = nullptr;
  HttpServer server_;
};

TEST_F(ObservabilityEndpointsTest, MetricsEndpointServesPrometheusText) {
  ASSERT_TRUE(catalog_->Search("author:minow").ok());
  ClientResponse response;
  ASSERT_TRUE(Get(server_.port(), "/metrics", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers["content-type"].find("version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.body.find("# HELP authidx_queries_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("authidx_queries_total 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("authidx_trie_nodes"), std::string::npos);
}

TEST_F(ObservabilityEndpointsTest, HealthzReflectsLoggerErrors) {
  ClientResponse response;
  ASSERT_TRUE(Get(server_.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");

  logger_->Log(LogLevel::kError, "table_get_failed", {{"table", 9}});
  ASSERT_TRUE(Get(server_.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("degraded"), std::string::npos);
  EXPECT_NE(response.body.find("table_get_failed"), std::string::npos);
}

// /healthz against a persistent catalog whose storage engine trips its
// sticky background error: the endpoint must flip to 503 and name the
// cause, exactly as load balancers rely on to drain a degraded node.
TEST(HealthzDegradedTest, Returns503WhileStorageDegraded) {
  std::string dir = ::testing::TempDir() + "/http_obs_degraded";
  std::filesystem::remove_all(dir);
  tests::FaultEnv env;
  storage::EngineOptions options;
  options.env = &env;
  options.retry_base_delay_us = 0;
  auto catalog = core::AuthorIndex::OpenPersistent(dir, options);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  Entry entry;
  entry.author = {"Minow", "Martha", "", false};
  entry.title = "All in the Family and in All Families";
  entry.citation = {95, 275, 1992};
  ASSERT_TRUE((*catalog)->Add(std::move(entry)).ok());

  Logger logger(LogLevel::kError);
  core::AuthorIndex* cat = catalog->get();
  Logger* log = &logger;
  HttpServer server;
  server.Route("/healthz", [cat, log] {
    HttpResponse r;
    if (cat->StorageDegraded()) {
      r.status = 503;
      r.body = "degraded: " + cat->StorageBackgroundError().ToString() + "\n";
    } else if (log->error_count() != 0) {
      r.status = 503;
      r.body = "degraded: " + log->last_error() + "\n";
    } else {
      r.body = "ok\n";
    }
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());

  ClientResponse response;
  ASSERT_TRUE(Get(server.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");

  env.FailAllFromNow();
  Entry doomed;
  doomed.author = {"Arceneaux", "Webster J.", "III", false};
  doomed.title = "Potential Criminal Liability in the Coal Fields";
  doomed.citation = {95, 691, 1993};
  EXPECT_FALSE((*catalog)->Add(std::move(doomed)).ok());
  env.StopFailing();
  ASSERT_TRUE(cat->StorageDegraded());

  ASSERT_TRUE(Get(server.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("degraded"), std::string::npos);
  EXPECT_NE(response.body.find("IOError"), std::string::npos)
      << response.body;

  server.Stop();
  catalog->reset();
  std::filesystem::remove_all(dir);
}

TEST_F(ObservabilityEndpointsTest, VarzServesCatalogStatsJson) {
  ClientResponse response;
  ASSERT_TRUE(Get(server_.port(), "/varz", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["content-type"], "application/json");
  EXPECT_NE(response.body.find("\"entries\":2"), std::string::npos);
  EXPECT_NE(response.body.find("\"distinct_authors\":2"), std::string::npos);
  EXPECT_NE(response.body.find("\"top_authors\":["), std::string::npos);
}

TEST_F(ObservabilityEndpointsTest, SlowQueryAppearsInSlowlogWithSpans) {
  ClientResponse response;
  ASSERT_TRUE(Get(server_.port(), "/slowlog", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "[]");

  // A 1ns threshold captures every query, spans and all, even though
  // the caller brought no trace of its own.
  catalog_->SetSlowQueryThreshold(1);
  ASSERT_TRUE(catalog_->Search("author:minow").ok());

  ASSERT_TRUE(Get(server_.port(), "/slowlog", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"query\":\"author:minow\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"plan\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"spans\":[{"), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(response.body.find("\"duration_ns\":"), std::string::npos);

  // The slow query was also logged as a structured WARN event.
  EXPECT_TRUE(lines_->Contains("event=slow_query"));
  EXPECT_TRUE(lines_->Contains("query=author:minow"));

  // And counted.
  ASSERT_TRUE(Get(server_.port(), "/metrics", &response));
  EXPECT_NE(response.body.find("authidx_slow_queries_total 1"),
            std::string::npos);
}

TEST_F(ObservabilityEndpointsTest, RunCapturesSlowPreParsedQueries) {
  // Pre-parsed queries go through the same capture envelope as
  // Search/SearchTraced; the logged text is reconstructed via
  // Query::ToString().
  catalog_->SetSlowQueryThreshold(1);
  auto parsed = query::ParseQuery("author:minow");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(catalog_->Run(*parsed).ok());

  std::vector<SlowQueryEntry> entries = catalog_->SlowQueries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].query.find("author=minow"), std::string::npos);
  EXPECT_FALSE(entries[0].spans.empty());
  EXPECT_TRUE(lines_->Contains("event=slow_query"));
}

}  // namespace
}  // namespace authidx::obs
