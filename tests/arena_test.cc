#include "authidx/common/arena.h"

#include <gtest/gtest.h>

#include <cstring>

#include "authidx/common/random.h"

namespace authidx {
namespace {

TEST(ArenaTest, AllocationsAreUsableAndDisjoint) {
  Arena arena;
  char* a = arena.Allocate(16);
  char* b = arena.Allocate(16);
  std::memset(a, 0xAA, 16);
  std::memset(b, 0xBB, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(a[i]), 0xAA);
    EXPECT_EQ(static_cast<unsigned char>(b[i]), 0xBB);
  }
}

TEST(ArenaTest, AlignedAllocationIsAligned) {
  Arena arena;
  arena.Allocate(3);  // Misalign the bump pointer.
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena;
  char* small = arena.Allocate(8);
  char* large = arena.Allocate(1 << 20);
  std::memset(large, 1, 1 << 20);
  char* small2 = arena.Allocate(8);
  std::memset(small, 2, 8);
  std::memset(small2, 3, 8);
  EXPECT_EQ(static_cast<unsigned char>(large[0]), 1);
  EXPECT_EQ(static_cast<unsigned char>(small[0]), 2);
}

TEST(ArenaTest, CopyStringPreservesContentsStably) {
  Arena arena;
  std::string original = "persistent text";
  std::string_view copy = arena.CopyString(original);
  original.assign("XXXXXXXXXXXXXXX");  // Mutate the source.
  EXPECT_EQ(copy, "persistent text");
}

// Regression: copying a default-constructed view used to memcpy from
// its null data() pointer — UB flagged by UBSan's nonnull checks.
TEST(ArenaTest, CopyStringHandlesEmptyAndNullViews) {
  Arena arena;
  EXPECT_EQ(arena.CopyString(std::string_view()), "");
  EXPECT_EQ(arena.CopyString(""), "");
  EXPECT_TRUE(arena.CopyString(std::string_view()).empty());
}

TEST(ArenaTest, MemoryUsageGrowsMonotonically) {
  Arena arena;
  size_t prev = arena.MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(1024);
    EXPECT_GE(arena.MemoryUsage(), prev);
    prev = arena.MemoryUsage();
  }
  EXPECT_GT(prev, 100 * 1024u * 9 / 10);
}

TEST(ArenaTest, RandomizedStressKeepsContents) {
  Arena arena;
  Random rng(123);
  std::vector<std::pair<std::string_view, std::string>> copies;
  for (int i = 0; i < 2000; ++i) {
    std::string s(rng.Uniform(200), static_cast<char>('a' + (i % 26)));
    copies.emplace_back(arena.CopyString(s), s);
  }
  for (const auto& [view, expected] : copies) {
    ASSERT_EQ(view, expected);
  }
}

}  // namespace
}  // namespace authidx
