// Tests for common/mutex.h: the annotated wrappers must behave exactly
// like the std primitives they wrap — mutual exclusion, shared-reader
// parallelism, condition-variable wakeups, try-lock semantics, and RAII
// release. The annotations themselves are compile-time only (enforced
// by the thread-safety preset and the configure-time canary in the root
// CMakeLists.txt); here we pin down the runtime contract.

#include "authidx/common/mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace authidx {
namespace {

TEST(MutexTest, MutualExclusionCounter) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must be refused while we hold it. std::mutex makes
  // try_lock from the owning thread undefined, so probe from another.
  bool acquired = true;
  std::thread prober([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) {
      mu.Unlock();
    }
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // Released: an uncontended TryLock must succeed.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, WriterExcludesWriters) {
  SharedMutex mu;
  uint64_t value = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &value] {
      for (int i = 0; i < kIncrements; ++i) {
        WriterMutexLock lock(mu);
        ++value;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  WriterMutexLock lock(mu);
  EXPECT_EQ(value, static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(SharedMutexTest, ReadersRunInParallel) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<bool> saw_overlap{false};
  std::atomic<bool> release{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderMutexLock lock(mu);
      if (readers_inside.fetch_add(1) + 1 >= 2) {
        // Two readers hold the lock simultaneously: shared mode works.
        saw_overlap.store(true);
        release.store(true);
      }
      while (!release.load()) {
        std::this_thread::yield();
      }
      readers_inside.fetch_sub(1);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(saw_overlap.load());
}

TEST(SharedMutexTest, ReaderTryLockRefusedUnderWriter) {
  SharedMutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread prober([&mu, &acquired] {
    acquired = mu.ReaderTryLock();
    if (acquired) {
      mu.ReaderUnlock();
    }
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  // And granted once the writer is gone.
  EXPECT_TRUE(mu.ReaderTryLock());
  mu.ReaderUnlock();
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  constexpr int kStages = 100;
  // Two threads alternate incrementing `stage`: even values belong to
  // the producer, odd to the consumer. Every handoff goes through
  // CondVar::Wait, so a Wait that failed to release (or re-acquire) the
  // mutex would deadlock immediately.
  std::thread producer([&] {
    MutexLock lock(mu);
    for (int i = 0; i < kStages; i += 2) {
      while (stage != i) {
        cv.Wait(mu);
      }
      ++stage;
      cv.NotifyAll();
    }
  });
  std::thread consumer([&] {
    MutexLock lock(mu);
    for (int i = 1; i < kStages; i += 2) {
      while (stage != i) {
        cv.Wait(mu);
      }
      ++stage;
      cv.NotifyAll();
    }
  });
  producer.join();
  consumer.join();
  MutexLock lock(mu);
  EXPECT_EQ(stage, kStages);
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();  // Terminates only if the wakeup arrived.
  MutexLock lock(mu);
  EXPECT_TRUE(ready);
}

TEST(SharedMutexTest, AssertionsAreRuntimeNoOps) {
  // AssertHeld / AssertReaderHeld only re-establish capabilities for the
  // analysis; at runtime they must cost (and check) nothing.
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  SharedMutex smu;
  smu.ReaderLock();
  smu.AssertReaderHeld();
  smu.ReaderUnlock();
  smu.Lock();
  smu.AssertHeld();
  smu.Unlock();
}

}  // namespace
}  // namespace authidx
