#ifndef AUTHIDX_TESTS_FUZZ_UTIL_H_
#define AUTHIDX_TESTS_FUZZ_UTIL_H_

// Shared machinery for the deterministic fuzz harnesses
// (fuzz_bibtex_test.cc, fuzz_query_parser_test.cc, fuzz_serde_test.cc).
//
// These are not libFuzzer drivers: they are ordinary gtest binaries that
// mutate a seed corpus with the repo's own deterministic PRNG, so a
// failure reproduces bit-for-bit from the case number printed on
// failure. Run them under the `asan-ubsan` preset to give "no crash"
// real teeth (see docs/TOOLING.md). AUTHIDX_FUZZ_ITERS scales the
// iteration count (default kDefaultIters) for soak runs.

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/random.h"

namespace authidx {

inline constexpr int kDefaultIters = 3000;

/// Iteration count: AUTHIDX_FUZZ_ITERS when set and positive, else
/// `fallback`.
inline int FuzzIterations(int fallback = kDefaultIters) {
  const char* env = std::getenv("AUTHIDX_FUZZ_ITERS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  return fallback;
}

/// Corpus-driven mutator. Each call to Next() picks a corpus seed and
/// applies a random number of byte-level mutations (flip, insert,
/// delete, duplicate-span, splice-from-other-seed, truncate, append
/// noise) — the classic dumb-fuzzer repertoire, enough to exercise every
/// error path in a recursive-descent parser.
class CorpusMutator {
 public:
  CorpusMutator(std::vector<std::string> corpus, uint64_t seed)
      : corpus_(std::move(corpus)), rng_(seed) {}

  std::string Next() {
    std::string input = corpus_[rng_.Uniform(corpus_.size())];
    uint64_t rounds = rng_.UniformRange(1, 8);
    for (uint64_t i = 0; i < rounds; ++i) {
      Mutate(&input);
    }
    return input;
  }

  Random& rng() { return rng_; }

 private:
  void Mutate(std::string* s) {
    switch (rng_.Uniform(7)) {
      case 0:  // Flip one byte to a random value.
        if (!s->empty()) {
          (*s)[rng_.Uniform(s->size())] =
              static_cast<char>(rng_.Uniform(256));
        }
        break;
      case 1: {  // Insert a random byte.
        size_t pos = rng_.Uniform(s->size() + 1);
        s->insert(pos, 1, static_cast<char>(rng_.Uniform(256)));
        break;
      }
      case 2:  // Delete a byte.
        if (!s->empty()) {
          s->erase(rng_.Uniform(s->size()), 1);
        }
        break;
      case 3: {  // Duplicate a short span in place.
        if (!s->empty()) {
          size_t pos = rng_.Uniform(s->size());
          size_t len = rng_.UniformRange(1, 16);
          std::string span = s->substr(pos, len);
          s->insert(pos, span);
        }
        break;
      }
      case 4: {  // Splice a span from another corpus seed.
        const std::string& other = corpus_[rng_.Uniform(corpus_.size())];
        if (!other.empty()) {
          size_t from = rng_.Uniform(other.size());
          size_t len = rng_.UniformRange(1, 32);
          size_t pos = rng_.Uniform(s->size() + 1);
          s->insert(pos, other.substr(from, len));
        }
        break;
      }
      case 5:  // Truncate.
        if (!s->empty()) {
          s->resize(rng_.Uniform(s->size()));
        }
        break;
      default: {  // Append structural noise characters.
        static constexpr char kNoise[] = "{}\"@,=:;*~-..()\t\n\\ %";
        size_t n = rng_.UniformRange(1, 8);
        for (size_t i = 0; i < n; ++i) {
          s->push_back(kNoise[rng_.Uniform(sizeof(kNoise) - 1)]);
        }
        break;
      }
    }
  }

  std::vector<std::string> corpus_;
  Random rng_;
};

/// Random byte string (any value 0..255), for structured serde fuzzing.
inline std::string RandomBytes(Random* rng, size_t max_len) {
  std::string out;
  size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

/// Random mostly-printable string, for fields that parsers re-tokenize.
inline std::string RandomPrintable(Random* rng, size_t max_len) {
  std::string out;
  size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->UniformRange(' ', '~')));
  }
  return out;
}

}  // namespace authidx

#endif  // AUTHIDX_TESTS_FUZZ_UTIL_H_
