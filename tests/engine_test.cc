#include "authidx/storage/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "fault_env.h"

namespace authidx::storage {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/engine_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<StorageEngine> Open(EngineOptions options = {}) {
    auto engine = StorageEngine::Open(dir_, options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  std::string dir_;
};

TEST_F(EngineTest, PutGetDeleteInMemtable) {
  auto engine = Open();
  ASSERT_TRUE(engine->Put("k1", "v1").ok());
  ASSERT_TRUE(engine->Put("k2", "v2").ok());
  auto hit = engine->Get("k1");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ(**hit, "v1");
  ASSERT_TRUE(engine->Delete("k1").ok());
  hit = engine->Get("k1");
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->has_value());
  EXPECT_FALSE((*engine->Get("missing")).has_value());
}

TEST_F(EngineTest, FlushMovesDataToTables) {
  auto engine = Open();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%04d", i),
                            StringPrintf("val%d", i)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->stats().flushes, 1u);
  EXPECT_EQ(engine->stats().l0_files, 1);
  for (int i = 0; i < 100; i += 9) {
    auto hit = engine->Get(StringPrintf("key%04d", i));
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(hit->has_value());
    EXPECT_EQ(**hit, StringPrintf("val%d", i));
  }
}

TEST_F(EngineTest, TombstonesShadowFlushedData) {
  auto engine = Open();
  ASSERT_TRUE(engine->Put("doomed", "alive").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Delete("doomed").ok());
  // Newer memtable tombstone shadows the table value.
  EXPECT_FALSE((*engine->Get("doomed")).has_value());
  // Still shadowed after the tombstone itself is flushed.
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_FALSE((*engine->Get("doomed")).has_value());
  // And still gone after compaction drops the tombstone.
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_FALSE((*engine->Get("doomed")).has_value());
}

TEST_F(EngineTest, OverwriteAcrossFlushesKeepsNewest) {
  auto engine = Open();
  ASSERT_TRUE(engine->Put("k", "v1").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Put("k", "v2").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Put("k", "v3").ok());
  EXPECT_EQ(**engine->Get("k"), "v3");
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(**engine->Get("k"), "v3");
}

TEST_F(EngineTest, ReopenRecoversFlushedAndWalData) {
  {
    auto engine = Open();
    ASSERT_TRUE(engine->Put("flushed", "f").ok());
    ASSERT_TRUE(engine->Flush().ok());
    ASSERT_TRUE(engine->Put("in_wal_only", "w").ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = Open();
  EXPECT_EQ(**engine->Get("flushed"), "f");
  EXPECT_EQ(**engine->Get("in_wal_only"), "w");
}

TEST_F(EngineTest, CrashRecoveryFromWalWithoutClose) {
  {
    EngineOptions options;
    options.sync_writes = true;
    auto engine = Open(options);
    ASSERT_TRUE(engine->Put("durable", "yes").ok());
    ASSERT_TRUE(engine->Delete("durable2").ok());
    // Simulate crash: drop the engine without Close() having flushed...
    // Close() in the destructor flushes, so instead copy the directory
    // state mid-life. Easiest honest crash test: kill the WAL tail.
    ASSERT_TRUE(engine->Put("torn", std::string(1000, 'x')).ok());
    // Leak-free "crash": release without Close by moving out and
    // abandoning—destructor runs Close; so emulate the crash by
    // truncating the WAL after reopening below instead.
    ASSERT_TRUE(engine->Close().ok());
  }
  // Damage: append garbage to the live WAL to emulate a torn write that
  // a crash left behind.
  {
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    // After Close() the WAL is fresh/empty; write garbage into it.
    std::string wal_path = WalFileName(dir_, manifest.wal_number);
    std::ofstream f(wal_path, std::ios::binary | std::ios::app);
    f << "garbage-torn-record";
  }
  auto engine = Open();
  EXPECT_TRUE(engine->stats().wal_tail_corruption);
  EXPECT_EQ(**engine->Get("durable"), "yes");
  EXPECT_EQ((*engine->Get("torn"))->size(), 1000u);
}

TEST_F(EngineTest, WalReplayRecoversUnflushedWrites) {
  // Write without Flush/Close-path interference by making a WAL by hand:
  // open engine, write, then simulate crash by copying WAL aside before
  // Close and restoring it after.
  std::string wal_copy;
  uint64_t wal_number;
  {
    EngineOptions options;
    options.sync_writes = true;  // Records must reach the file to copy it.
    auto engine = Open(options);
    ASSERT_TRUE(engine->Put("a", "1").ok());
    ASSERT_TRUE(engine->Put("b", "2").ok());
    ASSERT_TRUE(engine->Delete("a").ok());
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    wal_number = manifest.wal_number;
    wal_copy = *Env::Default()->ReadFileToString(
        WalFileName(dir_, wal_number));
    ASSERT_TRUE(engine->Close().ok());
  }
  // Rewind the directory to the pre-Close state: restore the WAL and the
  // manifest pointing at it, and remove the table the Close-flush wrote.
  {
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    for (const FileMeta& meta : manifest.files) {
      ASSERT_TRUE(Env::Default()
                      ->RemoveFile(TableFileName(dir_, meta.file_number))
                      .ok());
    }
    manifest.files.clear();
    manifest.wal_number = wal_number;
    ASSERT_TRUE(manifest.Save(Env::Default(), dir_).ok());
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(WalFileName(dir_, wal_number),
                                            wal_copy)
                    .ok());
  }
  auto engine = Open();
  EXPECT_EQ(engine->stats().wal_replayed_records, 3u);
  EXPECT_FALSE((*engine->Get("a")).has_value());  // Tombstone replayed.
  EXPECT_EQ(**engine->Get("b"), "2");
}

TEST_F(EngineTest, AutomaticFlushOnMemtableFull) {
  EngineOptions options;
  options.memtable_bytes = 64 * 1024;
  auto engine = Open(options);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%05d", i),
                            std::string(100, 'v')).ok());
  }
  EXPECT_GT(engine->stats().flushes, 0u);
  // Everything still readable across memtable + L0 (+ L1 after auto
  // compaction).
  for (int i = 0; i < 2000; i += 113) {
    auto hit = engine->Get(StringPrintf("key%05d", i));
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit->has_value()) << i;
  }
}

TEST_F(EngineTest, CompactionDropsTombstonesAndMergesRuns) {
  EngineOptions options;
  options.l0_compaction_trigger = 100;  // Manual compaction only.
  auto engine = Open(options);
  for (int round = 0; round < 3; ++round) {
    for (int i = round * 100; i < (round + 1) * 100; ++i) {
      ASSERT_TRUE(engine->Put(StringPrintf("key%05d", i), "v").ok());
    }
    ASSERT_TRUE(engine->Flush().ok());
  }
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(engine->Delete(StringPrintf("key%05d", i)).ok());
  }
  ASSERT_TRUE(engine->Compact().ok());
  EXPECT_EQ(engine->stats().l0_files, 0);
  EXPECT_EQ(engine->stats().l1_files, 1);
  // Deleted half gone, surviving half intact.
  EXPECT_FALSE((*engine->Get("key00000")).has_value());
  EXPECT_FALSE((*engine->Get("key00149")).has_value());
  EXPECT_TRUE((*engine->Get("key00150")).has_value());
  EXPECT_TRUE((*engine->Get("key00299")).has_value());
  // The compacted table no longer carries the dead keys at all: count
  // live entries via iterator.
  auto it = engine->NewIterator();
  int live = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ++live;
  }
  EXPECT_EQ(live, 150);
}

TEST_F(EngineTest, IteratorMergesAllLevelsNewestWins) {
  EngineOptions options;
  options.l0_compaction_trigger = 100;
  auto engine = Open(options);
  ASSERT_TRUE(engine->Put("a", "old").ok());
  ASSERT_TRUE(engine->Put("b", "keep").ok());
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Put("a", "new").ok());
  ASSERT_TRUE(engine->Put("c", "mem").ok());
  ASSERT_TRUE(engine->Delete("b").ok());
  auto it = engine->NewIterator();
  std::vector<std::pair<std::string, std::string>> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(std::string("a"), std::string("new")));
  EXPECT_EQ(seen[1], std::make_pair(std::string("c"), std::string("mem")));
}

TEST_F(EngineTest, RandomizedModelCheckWithReopen) {
  Random rng(2024);
  std::map<std::string, std::string> model;
  EngineOptions options;
  options.memtable_bytes = 16 * 1024;  // Frequent flushes.
  options.l0_compaction_trigger = 3;   // Frequent compactions.
  {
    auto engine = Open(options);
    for (int op = 0; op < 5000; ++op) {
      std::string key = StringPrintf("k%03llu",
          static_cast<unsigned long long>(rng.Uniform(500)));
      if (rng.OneIn(4)) {
        ASSERT_TRUE(engine->Delete(key).ok());
        model.erase(key);
      } else {
        std::string value = StringPrintf("v%llu",
            static_cast<unsigned long long>(rng.Next64() % 1000));
        ASSERT_TRUE(engine->Put(key, value).ok());
        model[key] = value;
      }
      if (op % 1000 == 999) {
        std::string probe = StringPrintf("k%03llu",
            static_cast<unsigned long long>(rng.Uniform(500)));
        auto hit = engine->Get(probe);
        ASSERT_TRUE(hit.ok());
        auto expected = model.find(probe);
        ASSERT_EQ(hit->has_value(), expected != model.end()) << probe;
        if (hit->has_value()) {
          ASSERT_EQ(**hit, expected->second);
        }
      }
    }
    ASSERT_TRUE(engine->Close().ok());
  }
  // Reopen and verify the full model via iterator.
  auto engine = Open(options);
  auto it = engine->NewIterator();
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    ASSERT_EQ(it->key(), expected->first);
    ASSERT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
}

TEST_F(EngineTest, SyncWritesModeWorks) {
  EngineOptions options;
  options.sync_writes = true;
  auto engine = Open(options);
  ASSERT_TRUE(engine->Put("k", "v").ok());
  EXPECT_EQ(**engine->Get("k"), "v");
}

TEST_F(EngineTest, UseAfterCloseFails) {
  auto engine = Open();
  ASSERT_TRUE(engine->Close().ok());
  EXPECT_TRUE(engine->Put("k", "v").IsFailedPrecondition());
}

TEST_F(EngineTest, CacheCountersMoveOnHotReRead) {
  auto engine = Open();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%04d", i),
                            StringPrintf("val%d", i)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  auto counter = [&](const char* name) {
    auto snap = engine->metrics().Snapshot();
    const obs::MetricValue* metric = snap.Find(name);
    EXPECT_NE(metric, nullptr) << name;
    return metric == nullptr ? 0 : metric->counter;
  };

  // Cold read: the table block is not cached yet.
  uint64_t misses_before = counter("authidx_block_cache_misses_total");
  ASSERT_TRUE(engine->Get("key0042").ok());
  EXPECT_GT(counter("authidx_block_cache_misses_total"), misses_before);

  // Hot re-reads of the same key only move the hit counter.
  uint64_t hits_before = counter("authidx_block_cache_hits_total");
  uint64_t misses_after_cold = counter("authidx_block_cache_misses_total");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine->Get("key0042").ok());
  }
  EXPECT_GT(counter("authidx_block_cache_hits_total"), hits_before);
  EXPECT_EQ(counter("authidx_block_cache_misses_total"), misses_after_cold);

  // WAL and flush instruments saw the writes above.
  EXPECT_EQ(counter("authidx_storage_puts_total"), 200u);
  EXPECT_GE(counter("authidx_wal_appends_total"), 200u);
  EXPECT_EQ(counter("authidx_memtable_flushes_total"), 1u);
}

TEST_F(EngineTest, BloomCountersMoveOnMissingKeyLookups) {
  auto engine = Open();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%04d", i), "v").ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  auto counter = [&](const char* name) {
    auto snap = engine->metrics().Snapshot();
    const obs::MetricValue* metric = snap.Find(name);
    EXPECT_NE(metric, nullptr) << name;
    return metric == nullptr ? 0 : metric->counter;
  };

  uint64_t checks_before = counter("authidx_bloom_checks_total");
  uint64_t negatives_before = counter("authidx_bloom_negatives_total");
  for (int i = 0; i < 50; ++i) {
    auto hit = engine->Get(StringPrintf("absent%04d", i));
    ASSERT_TRUE(hit.ok());
    EXPECT_FALSE(hit->has_value());
  }
  EXPECT_GT(counter("authidx_bloom_checks_total"), checks_before);
  EXPECT_GT(counter("authidx_bloom_negatives_total"), negatives_before);
}

TEST_F(EngineTest, SharedRegistryReceivesEngineMetrics) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.metrics = &registry;
  auto engine = Open(options);
  ASSERT_TRUE(engine->Put("k", "v").ok());
  auto snap = registry.Snapshot();
  const obs::MetricValue* puts = snap.Find("authidx_storage_puts_total");
  ASSERT_NE(puts, nullptr);
  EXPECT_EQ(puts->counter, 1u);
}

// --- background-error / degraded-mode contract ---
//
// These tests trip the sticky error with a FaultEnv; the systematic
// harness lives in fault_injection_test.cc and fault_sweep_test.cc.

TEST_F(EngineTest, DegradedEngineRejectsWritesButServesReads) {
  tests::FaultEnv env;
  EngineOptions options;
  options.env = &env;
  options.retry_base_delay_us = 0;
  auto engine = Open(options);
  ASSERT_TRUE(engine->Put("k", "v").ok());
  EXPECT_FALSE(engine->degraded());
  EXPECT_TRUE(engine->background_error().ok());

  env.FailAllFromNow();
  EXPECT_TRUE(engine->Put("k2", "x").IsIOError());
  EXPECT_TRUE(engine->degraded());
  EXPECT_TRUE(engine->background_error().IsIOError());
  env.StopFailing();

  // Sticky: the filesystem recovered, but the engine stays read-only
  // until reopen. Writes fail fast with the original cause attached.
  Status rejected = engine->Put("k3", "x");
  EXPECT_TRUE(rejected.IsIOError());
  EXPECT_NE(rejected.ToString().find("degraded"), std::string::npos)
      << rejected;
  EXPECT_TRUE(engine->Delete("k").IsIOError());
  EXPECT_TRUE(engine->Flush().IsIOError());

  // Reads keep working by default, point lookups and scans alike.
  EXPECT_EQ(**engine->Get("k"), "v");
  auto it = engine->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "k");

  // The degraded gauge is visible to scrapers.
  auto snap = engine->metrics().Snapshot();
  const obs::MetricValue* degraded = snap.Find("authidx_degraded");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->gauge, 1.0);
}

TEST_F(EngineTest, ParanoidChecksHaltReadsWhenDegraded) {
  tests::FaultEnv env;
  EngineOptions options;
  options.env = &env;
  options.paranoid_checks = true;
  options.retry_base_delay_us = 0;
  auto engine = Open(options);
  ASSERT_TRUE(engine->Put("k", "v").ok());
  env.FailAllFromNow();
  ASSERT_TRUE(engine->Put("k2", "x").IsIOError());
  env.StopFailing();
  // Paranoid engines refuse reads too once degraded.
  EXPECT_TRUE(engine->Get("k").status().IsIOError());
  auto it = engine->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().IsIOError());
}

TEST_F(EngineTest, ReopenClearsBackgroundError) {
  tests::FaultEnv env;
  {
    EngineOptions options;
    options.env = &env;
    options.sync_writes = true;
    options.retry_base_delay_us = 0;
    auto engine = Open(options);
    ASSERT_TRUE(engine->Put("k", "v").ok());
    env.FailAllFromNow();
    ASSERT_TRUE(engine->Put("k2", "x").IsIOError());
    ASSERT_TRUE(engine->degraded());
  }
  env.StopFailing();
  auto engine = Open();
  EXPECT_FALSE(engine->degraded());
  EXPECT_TRUE(engine->background_error().ok());
  EXPECT_EQ(**engine->Get("k"), "v");
  ASSERT_TRUE(engine->Put("k2", "now-works").ok());
  EXPECT_EQ(**engine->Get("k2"), "now-works");
}

TEST_F(EngineTest, VerifyChecksumReadsAndIntegrityScanOnHealthyStore) {
  EngineOptions options;
  options.verify_checksums = true;  // Every read re-reads disk bytes.
  auto engine = Open(options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%04d", i),
                            StringPrintf("val%d", i)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  for (int i = 0; i < 200; i += 17) {
    auto hit = engine->Get(StringPrintf("key%04d", i));
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(**hit, StringPrintf("val%d", i));
  }
  // Per-call override works regardless of the engine default.
  ReadOptions verify;
  verify.verify_checksums = true;
  EXPECT_EQ(**engine->Get("key0000", verify), "val0");
  auto report = engine->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean());
  EXPECT_GT(report->files.size(), 0u);
  auto snap = engine->metrics().Snapshot();
  const obs::MetricValue* corrupt = snap.Find("authidx_corrupt_blocks_total");
  ASSERT_NE(corrupt, nullptr);
  EXPECT_EQ(corrupt->counter, 0u);
}

TEST_F(EngineTest, VerifyIntegrityDetectsBitFlippedTable) {
  auto engine = Open();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine->Put(StringPrintf("key%04d", i),
                            StringPrintf("val%d", i)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  // Flip a byte in the middle of the only table file on disk.
  std::string table_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".tbl") {
      table_path = entry.path().string();
    }
  }
  ASSERT_FALSE(table_path.empty());
  {
    std::fstream f(table_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(table_path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto report = engine->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->corrupt_files, 1);
  ASSERT_EQ(report->files.size(), 1u);
  EXPECT_FALSE(report->files[0].status.ok());
  auto snap = engine->metrics().Snapshot();
  const obs::MetricValue* corrupt = snap.Find("authidx_corrupt_blocks_total");
  ASSERT_NE(corrupt, nullptr);
  EXPECT_GE(corrupt->counter, 1u);
}

}  // namespace
}  // namespace authidx::storage
