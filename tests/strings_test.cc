#include "authidx/common/strings.h"

#include <gtest/gtest.h>

namespace authidx {
namespace {

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hello  "), "hello");
  EXPECT_EQ(StripAsciiWhitespace("\t\nhi\r\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("a b"), "a b");
}

TEST(StringsTest, SplitPreservesEmptyPieces) {
  auto pieces = SplitString("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringsTest, CaseConversionAsciiOnly) {
  EXPECT_EQ(AsciiToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(AsciiToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StringsTest, ParseUint64HappyPath) {
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(*ParseUint64("00042"), 42u);
}

TEST(StringsTest, ParseUint64Rejections) {
  EXPECT_TRUE(ParseUint64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("12a").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("-1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("18446744073709551616").status().IsOutOfRange());
}

TEST(StringsTest, ParseInt64SignHandling) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("+42"), 42);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_TRUE(ParseInt64("9223372036854775808").status().IsOutOfRange());
  EXPECT_TRUE(ParseInt64("-9223372036854775809").status().IsOutOfRange());
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%05u", 42u), "00042");
  // Long outputs exceed any static buffer.
  std::string long_out = StringPrintf("%0500d", 1);
  EXPECT_EQ(long_out.size(), 500u);
}

TEST(StringsTest, CEscapeNonPrintables) {
  EXPECT_EQ(CEscape("abc"), "abc");
  EXPECT_EQ(CEscape(std::string("\x00\x1f", 2)), "\\x00\\x1f");
  EXPECT_EQ(CEscape("a\"b"), "a\\x22b");
}

}  // namespace
}  // namespace authidx
