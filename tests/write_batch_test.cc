#include "authidx/storage/write_batch.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

TEST(WriteBatchTest, BuildAndIterate) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.count(), 3u);
  std::vector<std::string> ops;
  ASSERT_TRUE(WriteBatch::Iterate(
                  batch.rep(),
                  [&](std::string_view k, std::string_view v) {
                    ops.push_back("put " + std::string(k) + "=" +
                                  std::string(v));
                  },
                  [&](std::string_view k) {
                    ops.push_back("del " + std::string(k));
                  })
                  .ok());
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], "put a=1");
  EXPECT_EQ(ops[1], "del b");
  EXPECT_EQ(ops[2], "put c=3");
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.rep().empty());
}

TEST(WriteBatchTest, IterateRejectsGarbage) {
  auto nop_put = [](std::string_view, std::string_view) {};
  auto nop_del = [](std::string_view) {};
  EXPECT_TRUE(WriteBatch::Iterate("X", nop_put, nop_del).IsCorruption());
  WriteBatch batch;
  batch.Put("key", "value");
  std::string truncated = batch.rep().substr(0, batch.rep().size() - 2);
  EXPECT_TRUE(WriteBatch::Iterate(truncated, nop_put, nop_del).IsCorruption());
}

TEST(WriteBatchTest, BinarySafety) {
  WriteBatch batch;
  std::string key("k\0ey", 4), value("v\xffl", 3);
  batch.Put(key, value);
  bool seen = false;
  ASSERT_TRUE(WriteBatch::Iterate(
                  batch.rep(),
                  [&](std::string_view k, std::string_view v) {
                    EXPECT_EQ(k, key);
                    EXPECT_EQ(v, value);
                    seen = true;
                  },
                  [](std::string_view) {})
                  .ok());
  EXPECT_TRUE(seen);
}

class BatchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/batch_engine_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<StorageEngine> Open(EngineOptions options = {}) {
    auto engine = StorageEngine::Open(dir_, options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  std::string dir_;
};

TEST_F(BatchEngineTest, ApplyIsVisibleImmediately) {
  auto engine = Open();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(engine->Apply(batch).ok());
  EXPECT_FALSE((*engine->Get("a")).has_value());
  EXPECT_EQ(**engine->Get("b"), "2");
  EXPECT_EQ(engine->stats().puts, 2u);
  EXPECT_EQ(engine->stats().deletes, 1u);
}

TEST_F(BatchEngineTest, EmptyBatchIsNoop) {
  auto engine = Open();
  WriteBatch batch;
  ASSERT_TRUE(engine->Apply(batch).ok());
  EXPECT_EQ(engine->stats().puts, 0u);
}

TEST_F(BatchEngineTest, BatchSurvivesWalRecovery) {
  {
    EngineOptions options;
    options.sync_writes = true;
    auto engine = Open(options);
    WriteBatch batch;
    for (int i = 0; i < 100; ++i) {
      batch.Put(StringPrintf("key%03d", i), StringPrintf("v%d", i));
    }
    batch.Delete("key050");
    ASSERT_TRUE(engine->Apply(batch).ok());
    ASSERT_TRUE(engine->Close().ok());
  }
  auto engine = Open();
  EXPECT_EQ(**engine->Get("key000"), "v0");
  EXPECT_EQ(**engine->Get("key099"), "v99");
  EXPECT_FALSE((*engine->Get("key050")).has_value());
}

TEST_F(BatchEngineTest, TornBatchIsAllOrNothing) {
  std::string wal_copy;
  uint64_t wal_number;
  {
    EngineOptions options;
    options.sync_writes = true;
    auto engine = Open(options);
    ASSERT_TRUE(engine->Put("before", "1").ok());
    WriteBatch batch;
    for (int i = 0; i < 50; ++i) {
      batch.Put(StringPrintf("batch%03d", i), "v");
    }
    ASSERT_TRUE(engine->Apply(batch).ok());
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    wal_number = manifest.wal_number;
    wal_copy = *Env::Default()->ReadFileToString(
        WalFileName(dir_, wal_number));
    ASSERT_TRUE(engine->Close().ok());
  }
  // Rewind to pre-Close state with the batch record torn mid-payload.
  {
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    for (const FileMeta& meta : manifest.files) {
      ASSERT_TRUE(Env::Default()
                      ->RemoveFile(TableFileName(dir_, meta.file_number))
                      .ok());
    }
    manifest.files.clear();
    manifest.wal_number = wal_number;
    ASSERT_TRUE(manifest.Save(Env::Default(), dir_).ok());
    std::string torn = wal_copy.substr(0, wal_copy.size() - 100);
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(WalFileName(dir_, wal_number),
                                            torn)
                    .ok());
  }
  auto engine = Open();
  EXPECT_TRUE(engine->stats().wal_tail_corruption);
  // The single put before the batch survived; the torn batch vanished
  // entirely (no partial application).
  EXPECT_EQ(**engine->Get("before"), "1");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE((*engine->Get(StringPrintf("batch%03d", i))).has_value())
        << i;
  }
}

TEST_F(BatchEngineTest, LargeBatchTriggersFlush) {
  EngineOptions options;
  options.memtable_bytes = 32 * 1024;
  auto engine = Open(options);
  WriteBatch batch;
  for (int i = 0; i < 2000; ++i) {
    batch.Put(StringPrintf("key%05d", i), std::string(64, 'v'));
  }
  ASSERT_TRUE(engine->Apply(batch).ok());
  EXPECT_GT(engine->stats().flushes, 0u);
  EXPECT_EQ(**engine->Get("key00000"), std::string(64, 'v'));
  EXPECT_EQ(**engine->Get("key01999"), std::string(64, 'v'));
}

}  // namespace
}  // namespace authidx::storage
