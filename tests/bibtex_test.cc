#include "authidx/parse/bibtex.h"

#include <gtest/gtest.h>

namespace authidx {
namespace {

constexpr const char* kDoc = R"bib(
% A proceedings-style bibliography.
This free text between entries is ignored, per BibTeX convention.

@inproceedings{minow92,
  author = {Minow, Martha},
  title  = {All in the Family {\&} In All Families},
  year   = 1992,
  volume = {95},
  pages  = {275--334},
}

@article{coal93,
  author = "Webster J. Arceneaux and Philip B. Scott",
  title  = "Potential Criminal Liability in the {Coal} Fields",
  year   = "1993",
  volume = "95",
  pages  = "691-720"
}

@comment{this whole group is skipped}

@book{noVolume,
  author = {Alexandrov, Pavel},
  title  = {Combinatorial Topology},
  year   = {1947}
}
)bib";

TEST(BibTexParseTest, ParsesEntriesAndFields) {
  Result<std::vector<BibTexEntry>> parsed = ParseBibTex(kDoc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  const BibTexEntry& first = (*parsed)[0];
  EXPECT_EQ(first.type, "inproceedings");
  EXPECT_EQ(first.key, "minow92");
  EXPECT_EQ(first.Field("author"), "Minow, Martha");
  EXPECT_EQ(first.Field("year"), "1992");
  EXPECT_EQ(first.Field("missing"), "");
  const BibTexEntry& second = (*parsed)[1];
  EXPECT_EQ(second.type, "article");
  EXPECT_EQ(second.Field("title"),
            "Potential Criminal Liability in the {Coal} Fields");
}

TEST(BibTexParseTest, BracesInsideValuesBalance) {
  auto parsed = ParseBibTex("@misc{k, note = {a {b {c}} d} }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)[0].Field("note"), "a {b {c}} d");
}

TEST(BibTexParseTest, Rejections) {
  EXPECT_FALSE(ParseBibTex("@{k, a = {v}}").ok());         // No type.
  EXPECT_FALSE(ParseBibTex("@misc{k, a = {v}").ok());      // Unterminated.
  EXPECT_FALSE(ParseBibTex("@misc{k, a {v}}").ok());       // Missing '='.
  EXPECT_FALSE(ParseBibTex("@misc{k, a = {v}, b = }").ok());
  // @string macros declared unsupported, not silently wrong.
  Result<std::vector<BibTexEntry>> macros =
      ParseBibTex("@misc{k, a = somemacro }");
  EXPECT_TRUE(macros.status().IsNotSupported());
}

TEST(BibTexParseTest, EmptyAndCommentOnlyDocs) {
  EXPECT_TRUE(ParseBibTex("")->empty());
  EXPECT_TRUE(ParseBibTex("% only a comment\nand free text")->empty());
}

TEST(BibTexConvertTest, OneEntryPerAuthorWithCoauthors) {
  auto entries = ParseBibTexToEntries(kDoc);
  ASSERT_TRUE(entries.ok()) << entries.status();
  // minow92 -> 1, coal93 -> 2, noVolume -> 1.
  ASSERT_EQ(entries->size(), 4u);
  const Entry& minow = (*entries)[0];
  EXPECT_EQ(minow.author.surname, "Minow");
  EXPECT_EQ(minow.author.given, "Martha");
  EXPECT_EQ(minow.title, "All in the Family \\& In All Families");
  EXPECT_EQ(minow.citation, (Citation{95, 275, 1992}));
  EXPECT_TRUE(minow.coauthors.empty());

  const Entry& arceneaux = (*entries)[1];
  EXPECT_EQ(arceneaux.author.surname, "Arceneaux");
  EXPECT_EQ(arceneaux.author.given, "Webster J.");
  EXPECT_EQ(arceneaux.citation, (Citation{95, 691, 1993}));
  ASSERT_EQ(arceneaux.coauthors.size(), 1u);
  EXPECT_EQ(arceneaux.coauthors[0], "Scott, Philip B.");

  const Entry& scott = (*entries)[2];
  EXPECT_EQ(scott.author.surname, "Scott");
  ASSERT_EQ(scott.coauthors.size(), 1u);
  EXPECT_EQ(scott.coauthors[0], "Arceneaux, Webster J.");
}

TEST(BibTexConvertTest, DefaultsForMissingVolumeAndPages) {
  auto entries = ParseBibTexToEntries(kDoc);
  ASSERT_TRUE(entries.ok());
  const Entry& book = entries->back();
  EXPECT_EQ(book.author.surname, "Alexandrov");
  EXPECT_EQ(book.citation.volume, 1u);
  EXPECT_EQ(book.citation.page, 1u);
  EXPECT_EQ(book.citation.year, 1947u);
}

TEST(BibTexConvertTest, MissingRequiredFieldsRejected) {
  EXPECT_FALSE(
      ParseBibTexToEntries("@misc{k, title = {T}, year = {1990}}").ok());
  EXPECT_FALSE(
      ParseBibTexToEntries("@misc{k, author = {A B}, year = {1990}}").ok());
  EXPECT_FALSE(
      ParseBibTexToEntries("@misc{k, author = {A B}, title = {T}}").ok());
}

TEST(BibTexConvertTest, AndInsideBracesIsNotASeparator) {
  auto entries = ParseBibTexToEntries(
      "@misc{k, author = {{Mining and Safety Commission}}, title = {T}, "
      "year = {1990}}");
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].author.surname, "Commission");
}

TEST(BibTexConvertTest, TildeBecomesSpace) {
  auto entries = ParseBibTexToEntries(
      "@misc{k, author = {Donald~E. Knuth}, title = {T}, year = {1973}}");
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_EQ((*entries)[0].author.surname, "Knuth");
  EXPECT_EQ((*entries)[0].author.given, "Donald E.");
}

}  // namespace
}  // namespace authidx
