#include "authidx/storage/cache.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "authidx/common/strings.h"

namespace authidx::storage {
namespace {

std::shared_ptr<Block> MakeBlock(int n_entries) {
  BlockBuilder builder;
  for (int i = 0; i < n_entries; ++i) {
    builder.Add(StringPrintf("key%05d", i), "value");
  }
  auto block = Block::Parse(std::string(builder.Finish()));
  EXPECT_TRUE(block.ok());
  return std::move(block).value();
}

// Actual charge of one cached MakeBlock(n_entries) block, measured via a
// probe cache so tests don't hard-code the charge formula.
size_t ChargeOf(int n_entries) {
  BlockCache probe(1 << 20);
  probe.Insert(BlockCache::MakeKey(1, 0), MakeBlock(n_entries));
  return probe.size_bytes();
}

// First `count` offsets of `file` whose keys land in the same shard, so
// LRU-eviction tests exercise one shard deterministically.
std::vector<BlockCacheKey> SameShardKeys(uint64_t file, size_t count) {
  std::vector<BlockCacheKey> keys;
  size_t shard = BlockCache::ShardIndex(BlockCache::MakeKey(file, 0));
  for (uint64_t offset = 0; keys.size() < count; ++offset) {
    BlockCacheKey key = BlockCache::MakeKey(file, offset);
    if (BlockCache::ShardIndex(key) == shard) {
      keys.push_back(key);
    }
  }
  return keys;
}

TEST(BlockCacheTest, InsertGetAndRecency) {
  BlockCache cache(1 << 20);
  auto block = MakeBlock(10);
  BlockCacheKey key = BlockCache::MakeKey(1, 0);
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, block);
  EXPECT_EQ(cache.Get(key), block);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(BlockCacheTest, KeysDistinguishFileAndOffset) {
  BlockCache cache(1 << 20);
  cache.Insert(BlockCache::MakeKey(1, 0), MakeBlock(1));
  cache.Insert(BlockCache::MakeKey(1, 4096), MakeBlock(2));
  cache.Insert(BlockCache::MakeKey(2, 0), MakeBlock(3));
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 0)), nullptr);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(2, 0)), nullptr);
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(2, 4096)), nullptr);
}

TEST(BlockCacheTest, KeyHashIsPrecomputedAndStable) {
  BlockCacheKey a = BlockCache::MakeKey(7, 4096);
  BlockCacheKey b = BlockCache::MakeKey(7, 4096);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.hash, BlockCache::MakeKey(7, 8192).hash);
}

TEST(BlockCacheTest, KeysSpreadAcrossShards) {
  // Sequential offsets within one file must not all pile onto one shard.
  std::set<size_t> shards;
  for (uint64_t offset = 0; offset < 64; ++offset) {
    shards.insert(BlockCache::ShardIndex(BlockCache::MakeKey(3, offset * 4096)));
  }
  EXPECT_GT(shards.size(), BlockCache::kNumShards / 2);
}

TEST(BlockCacheTest, LruEvictionOrderWithinShard) {
  size_t charge = ChargeOf(50);
  // Shard capacity = total / kNumShards = exactly three entries.
  BlockCache cache(charge * 3 * BlockCache::kNumShards);
  std::vector<BlockCacheKey> keys = SameShardKeys(1, 4);
  cache.Insert(keys[0], MakeBlock(50));
  cache.Insert(keys[1], MakeBlock(50));
  cache.Insert(keys[2], MakeBlock(50));
  // Touch keys[0] so keys[1] becomes the LRU victim.
  EXPECT_NE(cache.Get(keys[0]), nullptr);
  cache.Insert(keys[3], MakeBlock(50));
  EXPECT_EQ(cache.Get(keys[1]), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(keys[0]), nullptr);  // Kept.
  EXPECT_NE(cache.Get(keys[3]), nullptr);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(BlockCacheTest, ReplacingAKeyUpdatesCharge) {
  BlockCache cache(1 << 20);
  BlockCacheKey key = BlockCache::MakeKey(1, 0);
  cache.Insert(key, MakeBlock(1000));
  size_t big = cache.size_bytes();
  cache.Insert(key, MakeBlock(1));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_LT(cache.size_bytes(), big);
}

TEST(BlockCacheTest, EraseFileDropsOnlyThatFile) {
  BlockCache cache(1 << 20);
  cache.Insert(BlockCache::MakeKey(7, 0), MakeBlock(5));
  cache.Insert(BlockCache::MakeKey(7, 100), MakeBlock(5));
  cache.Insert(BlockCache::MakeKey(8, 0), MakeBlock(5));
  cache.EraseFile(7);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(7, 0)), nullptr);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(8, 0)), nullptr);
}

TEST(BlockCacheTest, ZeroCapacityDisables) {
  BlockCache cache(0);
  BlockCacheKey key = BlockCache::MakeKey(1, 0);
  cache.Insert(key, MakeBlock(5));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(BlockCacheTest, EvictedBlockSurvivesWhilePinned) {
  size_t charge = ChargeOf(50);
  // Shard capacity fits one entry but not two.
  BlockCache cache((charge + 100) * BlockCache::kNumShards);
  std::vector<BlockCacheKey> keys = SameShardKeys(1, 2);
  cache.Insert(keys[0], MakeBlock(50));
  std::shared_ptr<Block> pinned = cache.Get(keys[0]);
  ASSERT_NE(pinned, nullptr);
  // Force eviction of the pinned block.
  cache.Insert(keys[1], MakeBlock(50));
  EXPECT_EQ(cache.Get(keys[0]), nullptr);
  // Still usable through the pin.
  auto it = pinned->NewIterator();
  it->SeekToFirst();
  EXPECT_TRUE(it->Valid());
}

TEST(BlockCacheTest, ConcurrentMixedUseIsSafe) {
  BlockCache cache(1 << 16);  // Small enough to force evictions.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        BlockCacheKey key = BlockCache::MakeKey(t % 2, (i % 64) * 4096);
        if (i % 3 == 0) {
          cache.Insert(key, MakeBlock(8));
        } else if (i % 7 == 0) {
          cache.EraseFile(t % 2);
        } else {
          std::shared_ptr<Block> block = cache.Get(key);
          if (block != nullptr) {
            auto it = block->NewIterator();
            it->SeekToFirst();
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
  EXPECT_LE(cache.size_bytes(), (1u << 16));
}

}  // namespace
}  // namespace authidx::storage
