#include "authidx/storage/cache.h"

#include <gtest/gtest.h>

#include "authidx/common/strings.h"

namespace authidx::storage {
namespace {

std::shared_ptr<Block> MakeBlock(int n_entries) {
  BlockBuilder builder;
  for (int i = 0; i < n_entries; ++i) {
    builder.Add(StringPrintf("key%05d", i), "value");
  }
  auto block = Block::Parse(std::string(builder.Finish()));
  EXPECT_TRUE(block.ok());
  return std::move(block).value();
}

TEST(BlockCacheTest, InsertGetAndRecency) {
  BlockCache cache(1 << 20);
  auto block = MakeBlock(10);
  std::string key = BlockCache::MakeKey(1, 0);
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(key, block);
  EXPECT_EQ(cache.Get(key), block);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(BlockCacheTest, KeysDistinguishFileAndOffset) {
  BlockCache cache(1 << 20);
  cache.Insert(BlockCache::MakeKey(1, 0), MakeBlock(1));
  cache.Insert(BlockCache::MakeKey(1, 4096), MakeBlock(2));
  cache.Insert(BlockCache::MakeKey(2, 0), MakeBlock(3));
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 0)), nullptr);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(2, 0)), nullptr);
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(2, 4096)), nullptr);
}

TEST(BlockCacheTest, LruEvictionOrder) {
  auto sample = MakeBlock(50);
  size_t per_entry = sample->size_bytes() + 16 + 64;  // Rough charge.
  BlockCache cache(per_entry * 3);
  cache.Insert(BlockCache::MakeKey(1, 1), MakeBlock(50));
  cache.Insert(BlockCache::MakeKey(1, 2), MakeBlock(50));
  cache.Insert(BlockCache::MakeKey(1, 3), MakeBlock(50));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 1)), nullptr);
  cache.Insert(BlockCache::MakeKey(1, 4), MakeBlock(50));
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(1, 2)), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 1)), nullptr);  // Kept.
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 4)), nullptr);
}

TEST(BlockCacheTest, ReplacingAKeyUpdatesCharge) {
  BlockCache cache(1 << 20);
  std::string key = BlockCache::MakeKey(1, 0);
  cache.Insert(key, MakeBlock(1000));
  size_t big = cache.size_bytes();
  cache.Insert(key, MakeBlock(1));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_LT(cache.size_bytes(), big);
}

TEST(BlockCacheTest, EraseFileDropsOnlyThatFile) {
  BlockCache cache(1 << 20);
  cache.Insert(BlockCache::MakeKey(7, 0), MakeBlock(5));
  cache.Insert(BlockCache::MakeKey(7, 100), MakeBlock(5));
  cache.Insert(BlockCache::MakeKey(8, 0), MakeBlock(5));
  cache.EraseFile(7);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(7, 0)), nullptr);
  EXPECT_NE(cache.Get(BlockCache::MakeKey(8, 0)), nullptr);
}

TEST(BlockCacheTest, ZeroCapacityDisables) {
  BlockCache cache(0);
  std::string key = BlockCache::MakeKey(1, 0);
  cache.Insert(key, MakeBlock(5));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(BlockCacheTest, EvictedBlockSurvivesWhilePinned) {
  auto sample = MakeBlock(50);
  BlockCache cache(sample->size_bytes() + 100);
  std::string key = BlockCache::MakeKey(1, 0);
  cache.Insert(key, MakeBlock(50));
  std::shared_ptr<Block> pinned = cache.Get(key);
  ASSERT_NE(pinned, nullptr);
  // Force eviction of the pinned block.
  cache.Insert(BlockCache::MakeKey(1, 1), MakeBlock(50));
  EXPECT_EQ(cache.Get(key), nullptr);
  // Still usable through the pin.
  auto it = pinned->NewIterator();
  it->SeekToFirst();
  EXPECT_TRUE(it->Valid());
}

}  // namespace
}  // namespace authidx::storage
