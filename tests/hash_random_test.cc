#include <gtest/gtest.h>

#include <map>
#include <set>

#include "authidx/common/hash.h"
#include "authidx/common/random.h"

namespace authidx {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_EQ(Hash64("abc", 1), Hash64("abc", 1));
}

TEST(HashTest, SeedChangesHash64) {
  EXPECT_NE(Hash64("abc", 1), Hash64("abc", 2));
}

TEST(HashTest, SmallInputChangesPropagate) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Hash64("abc", 0), Hash64("abd", 0));
  EXPECT_NE(Hash64("", 0), Hash64(std::string(1, '\0'), 0));
}

TEST(HashTest, FewCollisionsOnSequentialKeys) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 100000; ++i) {
    seen.insert(Hash64("key" + std::to_string(i), 0));
  }
  // Birthday bound: expected collisions over 1e5 draws from 2^64 ~ 0.
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next64();
    EXPECT_EQ(va, b.Next64());
    (void)c;
  }
  Random d(43);
  EXPECT_NE(Random(42).Next64(), d.Next64());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, UniformRoughlyBalanced) {
  Random rng(11);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Uniform(10)];
  }
  for (const auto& [bucket, count] : counts) {
    // Each bucket expects 10000; allow +-10%.
    EXPECT_GT(count, 9000) << "bucket " << bucket;
    EXPECT_LT(count, 11000) << "bucket " << bucket;
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, OneInApproximatesProbability) {
  Random rng(5);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.OneIn(10)) {
      ++hits;
    }
  }
  EXPECT_GT(hits, 9000);
  EXPECT_LT(hits, 11000);
}

TEST(ZipfTest, RanksWithinRangeAndSkewed) {
  Zipf zipf(1000, 0.99, 17);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t rank = zipf.Next();
    ASSERT_LT(rank, 1000u);
    ++counts[rank];
  }
  // Rank 0 must dominate: more hits than rank 10 and far more than a
  // deep-tail rank.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20 * (counts[500] + 1));
  // Head mass: top-10 ranks should hold a large share under s~1.
  int head = 0;
  for (uint64_t r = 0; r < 10; ++r) {
    head += counts[r];
  }
  EXPECT_GT(head, kDraws / 4);
}

TEST(ZipfTest, DeterministicPerSeed) {
  Zipf a(100, 0.8, 9), b(100, 0.8, 9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

}  // namespace
}  // namespace authidx
