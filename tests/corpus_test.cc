#include "authidx/workload/corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "authidx/workload/namegen.h"

namespace authidx::workload {
namespace {

TEST(NameGeneratorTest, DeterministicPerSeed) {
  NameGenerator a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextAuthor(), b.NextAuthor());
    EXPECT_EQ(a.NextTitle(), b.NextTitle());
  }
  NameGenerator a2(7);
  EXPECT_NE(a2.NextAuthor(), c.NextAuthor());
}

TEST(NameGeneratorTest, AuthorsHavePlausibleShape) {
  NameGenerator names(99);
  int students = 0, suffixes = 0;
  for (int i = 0; i < 1000; ++i) {
    AuthorName name = names.NextAuthor();
    EXPECT_FALSE(name.surname.empty());
    EXPECT_FALSE(name.given.empty());
    students += name.student_material;
    suffixes += !name.suffix.empty();
  }
  EXPECT_GT(students, 150);
  EXPECT_LT(students, 400);
  EXPECT_GT(suffixes, 30);
  EXPECT_LT(suffixes, 200);
}

TEST(NameGeneratorTest, TitlesAreNonTrivial) {
  NameGenerator names(3);
  std::set<std::string> titles;
  for (int i = 0; i < 200; ++i) {
    std::string title = names.NextTitle();
    EXPECT_GT(title.size(), 10u);
    titles.insert(title);
  }
  EXPECT_GT(titles.size(), 100u);  // Diverse.
}

TEST(CorpusTest, DeterministicAndValid) {
  CorpusOptions options;
  options.entries = 2000;
  options.authors = 300;
  std::vector<Entry> a = GenerateCorpus(options);
  std::vector<Entry> b = GenerateCorpus(options);
  ASSERT_EQ(a.size(), 2000u);
  EXPECT_EQ(a, b);
  for (const Entry& entry : a) {
    EXPECT_TRUE(ValidateEntry(entry).ok()) << entry.title;
  }
  options.seed = 999;
  EXPECT_NE(GenerateCorpus(options), a);
}

TEST(CorpusTest, VolumeYearCoupling) {
  CorpusOptions options;
  options.entries = 3000;
  options.first_volume = 69;
  options.last_volume = 95;
  options.first_year = 1966;
  for (const Entry& entry : GenerateCorpus(options)) {
    EXPECT_GE(entry.citation.volume, 69u);
    EXPECT_LE(entry.citation.volume, 95u);
    EXPECT_EQ(entry.citation.year - 1966,
              entry.citation.volume - 69);  // One volume per year.
  }
}

TEST(CorpusTest, AuthorProductivityIsSkewed) {
  CorpusOptions options;
  options.entries = 20000;
  options.authors = 1000;
  options.author_skew = 0.9;
  std::map<std::string, size_t> per_author;
  for (const Entry& entry : GenerateCorpus(options)) {
    ++per_author[entry.author.GroupKey()];
  }
  size_t max_count = 0;
  for (const auto& [author, count] : per_author) {
    max_count = std::max(max_count, count);
  }
  double avg = 20000.0 / static_cast<double>(per_author.size());
  // Zipf head: most productive author far above average.
  EXPECT_GT(static_cast<double>(max_count), avg * 10);
}

TEST(CorpusTest, SomeEntriesHaveCoauthors) {
  CorpusOptions options;
  options.entries = 1000;
  options.coauthor_one_in = 4;
  size_t with_coauthors = 0;
  for (const Entry& entry : GenerateCorpus(options)) {
    with_coauthors += !entry.coauthors.empty();
  }
  EXPECT_GT(with_coauthors, 150u);
  EXPECT_LT(with_coauthors, 400u);
}

TEST(CorpusTest, TinyCorpusEdgeCases) {
  CorpusOptions options;
  options.entries = 1;
  options.authors = 1;
  auto entries = GenerateCorpus(options);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(ValidateEntry(entries[0]).ok());
  options.entries = 0;
  EXPECT_TRUE(GenerateCorpus(options).empty());
}

}  // namespace
}  // namespace authidx::workload
