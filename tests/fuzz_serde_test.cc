// Deterministic fuzzing of the Entry binary serde (the value format of
// the storage engine and WAL) and of the block-max postings decoder:
//  * encode(entry) -> decode must reproduce the entry exactly for
//    arbitrary field contents (including embedded NUL and non-UTF-8);
//  * decoding corrupted or random bytes must never crash and must fail
//    with a Status (Corruption/InvalidArgument), never UB — in the
//    block-max case that covers forged counts ahead of any reserve(),
//    corrupted skip entries, and truncated blocks;
//  * decode -> encode -> decode must be a fixed point.
// Run under the asan-ubsan preset for full effect.

#include <gtest/gtest.h>

#include <set>

#include "authidx/index/postings.h"
#include "authidx/model/serde.h"
#include "fuzz_util.h"

namespace authidx {
namespace {

Entry RandomEntry(Random* rng) {
  Entry e;
  e.author.surname = RandomBytes(rng, 24);
  e.author.given = RandomBytes(rng, 24);
  e.author.suffix = RandomBytes(rng, 8);
  e.author.student_material = rng->OneIn(3);
  e.title = RandomBytes(rng, 120);
  e.citation.volume = static_cast<uint32_t>(rng->Skewed(31));
  e.citation.page = static_cast<uint32_t>(rng->Skewed(31));
  e.citation.year = static_cast<uint32_t>(rng->Skewed(31));
  uint64_t n = rng->Uniform(5);
  for (uint64_t i = 0; i < n; ++i) {
    e.coauthors.push_back(RandomBytes(rng, 32));
  }
  return e;
}

TEST(FuzzSerde, RandomEntriesRoundTripExactly) {
  Random rng(0x5e2de1);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    Entry entry = RandomEntry(&rng);
    std::string encoded = EncodeEntryToString(entry);
    Result<Entry> decoded = DecodeEntryExact(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, entry);
  }
}

TEST(FuzzSerde, CorruptedEncodingsNeverCrash) {
  Random seed_rng(0xc0de02);
  std::vector<std::string> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back(EncodeEntryToString(RandomEntry(&seed_rng)));
  }
  CorpusMutator mutator(std::move(corpus), /*seed=*/0xbadbed);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string bytes = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    std::string_view input(bytes);
    Result<Entry> decoded = DecodeEntry(&input);
    if (!decoded.ok()) {
      continue;  // Rejection must be a Status, never a crash.
    }
    // Accepted decodes must be a fixed point: re-encoding the decoded
    // entry and decoding again yields the same entry (the canonical
    // encoding is self-consistent even when reached from mutated bytes).
    std::string reencoded = EncodeEntryToString(*decoded);
    Result<Entry> redecoded = DecodeEntryExact(reencoded);
    ASSERT_TRUE(redecoded.ok())
        << "re-decode of canonical encoding failed: " << redecoded.status();
    EXPECT_EQ(*redecoded, *decoded);
  }
}

TEST(FuzzSerde, RandomBytesNeverCrash) {
  Random rng(0xf00d03);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string bytes = RandomBytes(&rng, 256);
    SCOPED_TRACE("case " + std::to_string(i));
    // Both entry points must tolerate arbitrary input.
    DecodeEntryExact(bytes).status().IgnoreError();
    std::string_view input(bytes);
    DecodeEntry(&input).status().IgnoreError();
  }
}

std::string RandomBlockMaxList(Random* rng, size_t max_postings) {
  std::set<EntryId> ids;
  uint64_t n = rng->Uniform(max_postings + 1);
  while (ids.size() < n) {
    ids.insert(static_cast<EntryId>(rng->Uniform(1 << 22)));
  }
  std::vector<Posting> postings;
  for (EntryId id : ids) {
    postings.push_back({id, 1 + static_cast<uint32_t>(rng->Skewed(4))});
  }
  return EncodeBlockMaxPostings(postings);
}

TEST(FuzzBlockMax, CorruptedEncodingsNeverCrash) {
  // Mutated real encodings hammer the skip-table validation: forged
  // counts, broken last-doc chains, payload/skip disagreements,
  // truncations mid-varint and mid-block.
  Random seed_rng(0xb10c);
  std::vector<std::string> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back(RandomBlockMaxList(&seed_rng, 200));
  }
  CorpusMutator mutator(std::move(corpus), /*seed=*/0xb10cbad);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string bytes = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    Result<std::vector<Posting>> decoded = DecodeBlockMaxPostings(bytes);
    if (!decoded.ok()) {
      continue;  // Rejection must be a Status, never a crash.
    }
    // Anything accepted must re-encode to a decodable, equal list.
    Result<std::vector<Posting>> redecoded =
        DecodeBlockMaxPostings(EncodeBlockMaxPostings(*decoded));
    ASSERT_TRUE(redecoded.ok()) << redecoded.status();
    EXPECT_EQ(*redecoded, *decoded);
  }
}

TEST(FuzzBlockMax, RandomBytesNeverCrash) {
  Random rng(0xb10cf00d);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    std::string bytes = RandomBytes(&rng, 300);
    DecodeBlockMaxPostings(bytes).status().IgnoreError();
    // The reader path too: a skip table that validates structurally
    // must still decode every block without UB or over-read.
    Result<BlockMaxReader> reader = BlockMaxReader::Open(bytes);
    if (!reader.ok()) {
      continue;
    }
    std::vector<Posting> block;
    for (size_t b = 0; b < reader->block_count(); ++b) {
      reader->DecodeBlock(b, &block).IgnoreError();
    }
  }
}

}  // namespace
}  // namespace authidx
