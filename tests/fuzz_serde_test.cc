// Deterministic fuzzing of the Entry binary serde (the value format of
// the storage engine and WAL):
//  * encode(entry) -> decode must reproduce the entry exactly for
//    arbitrary field contents (including embedded NUL and non-UTF-8);
//  * decoding corrupted or random bytes must never crash and must fail
//    with a Status (Corruption/InvalidArgument), never UB;
//  * decode -> encode -> decode must be a fixed point.
// Run under the asan-ubsan preset for full effect.

#include <gtest/gtest.h>

#include "authidx/model/serde.h"
#include "fuzz_util.h"

namespace authidx {
namespace {

Entry RandomEntry(Random* rng) {
  Entry e;
  e.author.surname = RandomBytes(rng, 24);
  e.author.given = RandomBytes(rng, 24);
  e.author.suffix = RandomBytes(rng, 8);
  e.author.student_material = rng->OneIn(3);
  e.title = RandomBytes(rng, 120);
  e.citation.volume = static_cast<uint32_t>(rng->Skewed(31));
  e.citation.page = static_cast<uint32_t>(rng->Skewed(31));
  e.citation.year = static_cast<uint32_t>(rng->Skewed(31));
  uint64_t n = rng->Uniform(5);
  for (uint64_t i = 0; i < n; ++i) {
    e.coauthors.push_back(RandomBytes(rng, 32));
  }
  return e;
}

TEST(FuzzSerde, RandomEntriesRoundTripExactly) {
  Random rng(0x5e2de1);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    Entry entry = RandomEntry(&rng);
    std::string encoded = EncodeEntryToString(entry);
    Result<Entry> decoded = DecodeEntryExact(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, entry);
  }
}

TEST(FuzzSerde, CorruptedEncodingsNeverCrash) {
  Random seed_rng(0xc0de02);
  std::vector<std::string> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back(EncodeEntryToString(RandomEntry(&seed_rng)));
  }
  CorpusMutator mutator(std::move(corpus), /*seed=*/0xbadbed);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string bytes = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    std::string_view input(bytes);
    Result<Entry> decoded = DecodeEntry(&input);
    if (!decoded.ok()) {
      continue;  // Rejection must be a Status, never a crash.
    }
    // Accepted decodes must be a fixed point: re-encoding the decoded
    // entry and decoding again yields the same entry (the canonical
    // encoding is self-consistent even when reached from mutated bytes).
    std::string reencoded = EncodeEntryToString(*decoded);
    Result<Entry> redecoded = DecodeEntryExact(reencoded);
    ASSERT_TRUE(redecoded.ok())
        << "re-decode of canonical encoding failed: " << redecoded.status();
    EXPECT_EQ(*redecoded, *decoded);
  }
}

TEST(FuzzSerde, RandomBytesNeverCrash) {
  Random rng(0xf00d03);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string bytes = RandomBytes(&rng, 256);
    SCOPED_TRACE("case " + std::to_string(i));
    // Both entry points must tolerate arbitrary input.
    DecodeEntryExact(bytes).status().IgnoreError();
    std::string_view input(bytes);
    DecodeEntry(&input).status().IgnoreError();
  }
}

}  // namespace
}  // namespace authidx
