#include "authidx/format/export.h"

#include <gtest/gtest.h>

#include "authidx/workload/sample_data.h"

namespace authidx::format {
namespace {

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("with space"), "with space");
}

TEST(CsvEscapeTest, SpecialsQuoted) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(JsonEscapeTest, Escapes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("q\"b\\"), "q\\\"b\\\\");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  // UTF-8 passthrough.
  EXPECT_EQ(JsonEscape("Dvořák"), "Dvořák");
}

std::unique_ptr<core::AuthorIndex> SampleCatalog() {
  auto entries = authidx::workload::LoadSampleEntries();
  EXPECT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

TEST(CsvExportTest, HeaderAndRowCount) {
  auto catalog = SampleCatalog();
  std::string csv = CatalogToCsv(*catalog);
  size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, catalog->entry_count() + 1);  // Header + rows.
  EXPECT_EQ(csv.substr(0, 7), "surname");
  // Titles containing commas are quoted; look for the Ashdown entry.
  EXPECT_NE(csv.find("\"Drugs, Ideology, and the Deconstitutionalization "
                     "of Criminal Procedure\""),
            std::string::npos);
}

TEST(CsvExportTest, StudentFlagAndCitationsPresent) {
  auto catalog = SampleCatalog();
  std::string csv = CatalogToCsv(*catalog);
  EXPECT_NE(csv.find("Abdalla,Tarek F.,,true"), std::string::npos);
  EXPECT_NE(csv.find(",95,691,1993,"), std::string::npos);
}

TEST(JsonExportTest, WellFormedArrayWithAllEntries) {
  auto catalog = SampleCatalog();
  std::string json = CatalogToJson(*catalog);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  size_t objects = 0;
  size_t pos = 0;
  while ((pos = json.find("\"surname\":", pos)) != std::string::npos) {
    ++objects;
    pos += 1;
  }
  EXPECT_EQ(objects, catalog->entry_count());
  // Balanced braces/brackets as a cheap well-formedness check (titles in
  // the sample contain no braces).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonExportTest, QuotesInTitlesEscaped) {
  auto catalog = SampleCatalog();
  std::string json = CatalogToJson(*catalog);
  // The Archibald title contains quoted words in the source.
  EXPECT_NE(json.find("\\\"Nonproduction\\\""), std::string::npos);
}

TEST(JsonExportTest, CoauthorsArrayPresentOnlyWhenNonEmpty) {
  auto catalog = SampleCatalog();
  std::string json = CatalogToJson(*catalog);
  EXPECT_NE(json.find("\"coauthors\":[\"Lewin, Jeff L.\""),
            std::string::npos);
}

TEST(ExportTest, EmptyCatalog) {
  auto catalog = core::AuthorIndex::Create();
  std::string csv = CatalogToCsv(*catalog);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);  // Header only.
  EXPECT_EQ(CatalogToJson(*catalog), "[\n]\n");
}

}  // namespace
}  // namespace authidx::format
