// Crash-recovery torture tests: random operation streams with periodic
// close/reopen verification, WAL truncation at every byte offset
// (prefix-consistency), and checkpoint semantics.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/crash_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Every prefix of a synced WAL must recover to a prefix of the applied
// operations — never to garbage, never to out-of-order application.
TEST_F(CrashRecoveryTest, EveryWalTruncationRecoversAPrefix) {
  // Build a WAL of known operations.
  std::vector<std::pair<std::string, std::string>> ops;  // key -> value.
  std::string wal_bytes;
  uint64_t wal_number;
  {
    EngineOptions options;
    options.sync_writes = true;
    auto engine = StorageEngine::Open(dir_, options);
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 30; ++i) {
      std::string key = StringPrintf("key%02d", i % 10);
      std::string value = StringPrintf("value%02d", i);
      ASSERT_TRUE((*engine)->Put(key, value).ok());
      ops.emplace_back(key, value);
    }
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    wal_number = manifest.wal_number;
    wal_bytes = *Env::Default()->ReadFileToString(
        WalFileName(dir_, wal_number));
    // Abandon without Close: the directory now holds manifest + WAL.
    // (Close would flush; instead we recreate state below per trial.)
    ASSERT_TRUE((*engine)->Close().ok());
  }
  std::string manifest_template;
  {
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    for (const FileMeta& meta : manifest.files) {
      ASSERT_TRUE(Env::Default()
                      ->RemoveFile(TableFileName(dir_, meta.file_number))
                      .ok());
    }
    manifest.files.clear();
    manifest.wal_number = wal_number;
    manifest_template = manifest.Encode();
  }

  // Step through truncation points (every byte would be slow with
  // reopen-flush; step 7 still covers all header/payload phases).
  for (size_t cut = 0; cut <= wal_bytes.size(); cut += 7) {
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir_).ok());
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(ManifestFileName(dir_),
                                            manifest_template)
                    .ok());
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(WalFileName(dir_, wal_number),
                                            wal_bytes.substr(0, cut))
                    .ok());
    auto engine = StorageEngine::Open(dir_, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << "cut=" << cut << ": " << engine.status();
    uint64_t replayed = (*engine)->stats().wal_replayed_records;
    ASSERT_LE(replayed, ops.size());
    // The recovered state must equal applying exactly the first
    // `replayed` operations.
    std::map<std::string, std::string> model;
    for (size_t i = 0; i < replayed; ++i) {
      model[ops[i].first] = ops[i].second;
    }
    for (int k = 0; k < 10; ++k) {
      std::string key = StringPrintf("key%02d", k);
      auto hit = (*engine)->Get(key);
      ASSERT_TRUE(hit.ok());
      auto expected = model.find(key);
      ASSERT_EQ(hit->has_value(), expected != model.end())
          << "cut=" << cut << " key=" << key;
      if (hit->has_value()) {
        ASSERT_EQ(**hit, expected->second) << "cut=" << cut;
      }
    }
  }
}

TEST_F(CrashRecoveryTest, ReopenLoopTortureAgainstModel) {
  Random rng(777);
  std::map<std::string, std::string> model;
  EngineOptions options;
  options.memtable_bytes = 8 * 1024;
  options.l0_compaction_trigger = 2;
  for (int session = 0; session < 8; ++session) {
    auto engine = StorageEngine::Open(dir_, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    // Recovered state must match the model exactly at session start.
    auto it = (*engine)->NewIterator();
    auto expected = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
      ASSERT_NE(expected, model.end()) << "session " << session;
      ASSERT_EQ(it->key(), expected->first);
      ASSERT_EQ(it->value(), expected->second);
    }
    ASSERT_EQ(expected, model.end()) << "session " << session;
    // More random ops.
    for (int op = 0; op < 400; ++op) {
      std::string key = StringPrintf("k%03llu",
          static_cast<unsigned long long>(rng.Uniform(150)));
      if (rng.OneIn(3)) {
        ASSERT_TRUE((*engine)->Delete(key).ok());
        model.erase(key);
      } else {
        std::string value = StringPrintf("s%dv%llu", session,
            static_cast<unsigned long long>(rng.Next64() % 100000));
        ASSERT_TRUE((*engine)->Put(key, value).ok());
        model[key] = value;
      }
    }
    ASSERT_TRUE((*engine)->Close().ok());
  }
}

TEST_F(CrashRecoveryTest, CheckpointIsConsistentAndIndependent) {
  std::string checkpoint_dir = dir_ + "_checkpoint";
  std::filesystem::remove_all(checkpoint_dir);
  auto engine = StorageEngine::Open(dir_, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        (*engine)->Put(StringPrintf("key%04d", i), "checkpointed").ok());
  }
  ASSERT_TRUE((*engine)->Delete("key0000").ok());
  ASSERT_TRUE((*engine)->CreateCheckpoint(checkpoint_dir).ok());
  // Post-checkpoint mutations do not leak into the checkpoint.
  ASSERT_TRUE((*engine)->Put("key0001", "mutated-after").ok());
  ASSERT_TRUE((*engine)->Delete("key0002").ok());

  auto copy = StorageEngine::Open(checkpoint_dir, EngineOptions{});
  ASSERT_TRUE(copy.ok()) << copy.status();
  EXPECT_FALSE((*(*copy)->Get("key0000")).has_value());
  EXPECT_EQ(**(*copy)->Get("key0001"), "checkpointed");
  EXPECT_EQ(**(*copy)->Get("key0002"), "checkpointed");
  // And the copy is writable on its own.
  ASSERT_TRUE((*copy)->Put("copy-only", "v").ok());
  EXPECT_FALSE((*(*engine)->Get("copy-only")).has_value());
  // Live store saw its own mutations.
  EXPECT_EQ(**(*engine)->Get("key0001"), "mutated-after");
  std::filesystem::remove_all(checkpoint_dir);
}

// Recovery after a simulated crash must announce itself: structured
// wal_recovery / wal_tail_truncated events on the engine logger and a
// bumped authidx_engine_recovery_records_total counter.
TEST_F(CrashRecoveryTest, RecoveryEmitsStructuredEventsAndCounter) {
  std::string wal_bytes;
  uint64_t wal_number;
  {
    EngineOptions options;
    options.sync_writes = true;
    auto engine = StorageEngine::Open(dir_, options);
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*engine)
                      ->Put(StringPrintf("key%02d", i),
                            StringPrintf("value%02d", i))
                      .ok());
    }
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    wal_number = manifest.wal_number;
    wal_bytes =
        *Env::Default()->ReadFileToString(WalFileName(dir_, wal_number));
    ASSERT_TRUE((*engine)->Close().ok());
  }
  // Recreate the pre-crash directory: manifest referencing no tables
  // plus the WAL cut mid-record (a torn tail).
  {
    Manifest manifest = *Manifest::Load(Env::Default(), dir_);
    for (const FileMeta& meta : manifest.files) {
      ASSERT_TRUE(Env::Default()
                      ->RemoveFile(TableFileName(dir_, meta.file_number))
                      .ok());
    }
    manifest.files.clear();
    manifest.wal_number = wal_number;
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(ManifestFileName(dir_),
                                            manifest.Encode())
                    .ok());
    ASSERT_TRUE(Env::Default()
                    ->WriteStringToFileSync(
                        WalFileName(dir_, wal_number),
                        wal_bytes.substr(0, wal_bytes.size() - 3))
                    .ok());
  }

  obs::Logger logger(obs::LogLevel::kInfo);
  auto sink = std::make_unique<obs::VectorSink>();
  obs::VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  EngineOptions options;
  options.logger = &logger;
  auto engine = StorageEngine::Open(dir_, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  uint64_t replayed = (*engine)->stats().wal_replayed_records;
  EXPECT_GT(replayed, 0u);
  EXPECT_LT(replayed, 20u);  // The torn tail dropped the last record.
  EXPECT_TRUE((*engine)->stats().wal_tail_corruption);

  EXPECT_TRUE(lines->Contains("event=wal_recovery"));
  EXPECT_TRUE(lines->Contains(
      StringPrintf("records_replayed=%llu",
                   static_cast<unsigned long long>(replayed))));
  EXPECT_TRUE(lines->Contains("tail_corruption=true"));
  EXPECT_TRUE(lines->Contains("level=WARN event=wal_tail_truncated"));
  EXPECT_TRUE(lines->Contains("event=engine_open"));

  obs::MetricsSnapshot snapshot = (*engine)->metrics().Snapshot();
  const obs::MetricValue* counter =
      snapshot.Find("authidx_engine_recovery_records_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter, replayed);

  ASSERT_TRUE((*engine)->Close().ok());
  EXPECT_TRUE(lines->Contains("event=engine_close"));
}

TEST_F(CrashRecoveryTest, CheckpointOntoExistingStoreRefused) {
  auto engine = StorageEngine::Open(dir_, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Put("k", "v").ok());
  EXPECT_TRUE((*engine)->CreateCheckpoint(dir_).IsAlreadyExists());
}

}  // namespace
}  // namespace authidx::storage
