#include "authidx/storage/table.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "authidx/common/strings.h"

namespace authidx::storage {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/table_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/test.tbl";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds a table file from sorted kvs and returns a reader.
  std::unique_ptr<TableReader> BuildAndOpen(
      const std::map<std::string, std::string>& kvs,
      TableBuilder::Options options = {}) {
    auto file = Env::Default()->NewWritableFile(path_);
    EXPECT_TRUE(file.ok());
    TableBuilder builder(options, file->get());
    for (const auto& [key, value] : kvs) {
      EXPECT_TRUE(builder.Add(key, value).ok());
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE((*file)->Sync().ok());
    EXPECT_TRUE((*file)->Close().ok());
    auto reader = TableReader::Open(Env::Default(), path_);
    EXPECT_TRUE(reader.ok()) << reader.status();
    return std::move(reader).value();
  }

  std::map<std::string, std::string> ManyKvs(int n) {
    std::map<std::string, std::string> kvs;
    for (int i = 0; i < n; ++i) {
      kvs[StringPrintf("key%06d", i)] = StringPrintf("value-%d", i);
    }
    return kvs;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(TableTest, PointLookupsAcrossManyBlocks) {
  TableBuilder::Options options;
  options.block_bytes = 512;  // Force many data blocks.
  auto kvs = ManyKvs(3000);
  auto reader = BuildAndOpen(kvs, options);
  for (int i = 0; i < 3000; i += 37) {
    std::string key = StringPrintf("key%06d", i);
    auto hit = reader->Get(key);
    ASSERT_TRUE(hit.ok()) << hit.status();
    ASSERT_TRUE(hit->has_value()) << key;
    EXPECT_EQ(**hit, StringPrintf("value-%d", i));
  }
}

TEST_F(TableTest, AbsentKeysReturnNulloptAndHitBloom) {
  auto reader = BuildAndOpen(ManyKvs(2000));
  uint64_t misses = 0;
  for (int i = 0; i < 2000; ++i) {
    auto hit = reader->Get(StringPrintf("absent%06d", i));
    ASSERT_TRUE(hit.ok());
    EXPECT_FALSE(hit->has_value());
    ++misses;
  }
  // The Bloom filter must have short-circuited nearly all misses.
  EXPECT_GT(reader->bloom_negative_count(), misses * 9 / 10);
}

TEST_F(TableTest, FullIterationInOrder) {
  TableBuilder::Options options;
  options.block_bytes = 256;
  auto kvs = ManyKvs(1500);
  auto reader = BuildAndOpen(kvs, options);
  auto it = reader->NewIterator();
  auto expected = kvs.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, kvs.end());
    ASSERT_EQ(it->key(), expected->first);
    ASSERT_EQ(it->value(), expected->second);
  }
  EXPECT_EQ(expected, kvs.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TableTest, IteratorSeekAcrossBlockBoundaries) {
  TableBuilder::Options options;
  options.block_bytes = 128;
  auto kvs = ManyKvs(500);
  auto reader = BuildAndOpen(kvs, options);
  auto it = reader->NewIterator();
  for (int i = 0; i < 500; i += 61) {
    std::string key = StringPrintf("key%06d", i);
    it->Seek(key);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), key);
  }
  it->Seek("key9");  // Past everything.
  EXPECT_FALSE(it->Valid());
  it->Seek("a");  // Before everything.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "key000000");
}

TEST_F(TableTest, OutOfOrderAddRejected) {
  auto file = Env::Default()->NewWritableFile(path_);
  ASSERT_TRUE(file.ok());
  TableBuilder builder({}, file->get());
  ASSERT_TRUE(builder.Add("b", "1").ok());
  EXPECT_TRUE(builder.Add("a", "2").IsInvalidArgument());
  EXPECT_TRUE(builder.Add("b", "2").IsInvalidArgument());
}

TEST_F(TableTest, EmptyTableOpensAndIterates) {
  auto reader = BuildAndOpen({});
  auto it = reader->NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  auto hit = reader->Get("anything");
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->has_value());
}

TEST_F(TableTest, CorruptedDataBlockDetected) {
  TableBuilder::Options options;
  options.block_bytes = 256;
  options.bloom_bits_per_key = 2;  // Weak filter: more reads reach data.
  auto kvs = ManyKvs(500);
  BuildAndOpen(kvs, options);
  // Flip a byte early in the file (inside the first data block).
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto reader = TableReader::Open(Env::Default(), path_);
  ASSERT_TRUE(reader.ok());  // Footer/index/filter are intact.
  // A read touching the damaged block must report corruption, never
  // wrong data.
  bool saw_corruption = false;
  for (int i = 0; i < 20 && !saw_corruption; ++i) {
    auto hit = (*reader)->Get(StringPrintf("key%06d", i));
    if (!hit.ok()) {
      EXPECT_TRUE(hit.status().IsCorruption()) << hit.status();
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST_F(TableTest, TruncatedFileRejectedAtOpen) {
  BuildAndOpen(ManyKvs(100));
  std::filesystem::resize_file(path_, 10);
  auto reader = TableReader::Open(Env::Default(), path_);
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption()) << reader.status();
}

TEST_F(TableTest, BadMagicRejected) {
  BuildAndOpen(ManyKvs(10));
  uint64_t size = std::filesystem::file_size(path_);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size - 1));
    f.put('\0');
  }
  auto reader = TableReader::Open(Env::Default(), path_);
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(TableTest, LargeValuesRoundTrip) {
  std::map<std::string, std::string> kvs;
  kvs["big1"] = std::string(100000, 'x');
  kvs["big2"] = std::string(50000, 'y');
  kvs["small"] = "s";
  auto reader = BuildAndOpen(kvs);
  auto hit = reader->Get("big1");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ(hit->value().size(), 100000u);
  EXPECT_EQ((*reader->Get("small"))->front(), 's');
}

}  // namespace
}  // namespace authidx::storage
