#include "authidx/core/stats.h"

#include <gtest/gtest.h>

#include "authidx/workload/sample_data.h"

namespace authidx::core {
namespace {

std::unique_ptr<AuthorIndex> SampleCatalog() {
  auto entries = workload::LoadSampleEntries();
  EXPECT_TRUE(entries.ok());
  auto catalog = AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

TEST(StatsTest, EmptyCatalog) {
  auto catalog = AuthorIndex::Create();
  CatalogStats stats = ComputeStats(*catalog);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.distinct_authors, 0u);
  EXPECT_TRUE(stats.volume_histogram.empty());
  EXPECT_TRUE(stats.top_authors.empty());
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(StatsTest, SampleCorpusNumbers) {
  auto catalog = SampleCatalog();
  CatalogStats stats = ComputeStats(*catalog);
  EXPECT_EQ(stats.entries, catalog->entry_count());
  EXPECT_EQ(stats.distinct_authors, catalog->group_count());
  EXPECT_LT(stats.distinct_authors, stats.entries);  // Repeat authors.
  EXPECT_GT(stats.student_entries, 0u);
  EXPECT_GT(stats.coauthored_entries, 0u);
  // The sample spans volumes 69..95 and years 1966..1993.
  EXPECT_EQ(stats.min_volume, 69u);
  EXPECT_EQ(stats.max_volume, 95u);
  EXPECT_GE(stats.min_year, 1966u);
  EXPECT_LE(stats.max_year, 1993u);
  EXPECT_GT(stats.avg_title_tokens, 2.0);
  EXPECT_GT(stats.distinct_terms, 50u);
}

TEST(StatsTest, HistogramsSumToEntries) {
  auto catalog = SampleCatalog();
  CatalogStats stats = ComputeStats(*catalog);
  size_t vol_sum = 0, year_sum = 0;
  for (const auto& [vol, count] : stats.volume_histogram) {
    vol_sum += count;
  }
  for (const auto& [year, count] : stats.year_histogram) {
    year_sum += count;
  }
  EXPECT_EQ(vol_sum, stats.entries);
  EXPECT_EQ(year_sum, stats.entries);
}

TEST(StatsTest, TopAuthorsDescendingAndCapped) {
  auto catalog = SampleCatalog();
  CatalogStats stats = ComputeStats(*catalog, /*top_k=*/5);
  ASSERT_EQ(stats.top_authors.size(), 5u);
  for (size_t i = 1; i < stats.top_authors.size(); ++i) {
    EXPECT_GE(stats.top_authors[i - 1].second, stats.top_authors[i].second);
  }
  // Cady and Cardi have 3 entries each in the sample: top count >= 3.
  EXPECT_GE(stats.top_authors[0].second, 3u);
}

TEST(StatsTest, ReportMentionsKeyNumbers) {
  auto catalog = SampleCatalog();
  CatalogStats stats = ComputeStats(*catalog);
  std::string report = stats.ToString();
  EXPECT_NE(report.find("entries:"), std::string::npos);
  EXPECT_NE(report.find("69..95"), std::string::npos);
  EXPECT_NE(report.find("top authors:"), std::string::npos);
}

TEST(StatsTest, ToJsonCarriesSameNumbers) {
  auto catalog = SampleCatalog();
  CatalogStats stats = ComputeStats(*catalog, /*top_k=*/3);
  std::string json = stats.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"entries\":" + std::to_string(stats.entries)),
            std::string::npos);
  EXPECT_NE(json.find("\"distinct_authors\":" +
                      std::to_string(stats.distinct_authors)),
            std::string::npos);
  EXPECT_NE(json.find("\"min_volume\":69"), std::string::npos);
  EXPECT_NE(json.find("\"max_volume\":95"), std::string::npos);
  // Histograms render as {"<key>":count} objects keyed by the numbers.
  EXPECT_NE(json.find("\"volume_histogram\":{\"69\":"), std::string::npos);
  EXPECT_NE(json.find("\"year_histogram\":{"), std::string::npos);
  // top_authors as [{"name":...,"entries":...}] with quoted names.
  ASSERT_EQ(stats.top_authors.size(), 3u);
  EXPECT_NE(json.find("\"top_authors\":[{\"name\":\""), std::string::npos);
  EXPECT_NE(
      json.find("\"entries\":" +
                std::to_string(stats.top_authors[0].second) + "}"),
      std::string::npos);
  // No stray control characters: the whole thing must stay one line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(StatsTest, ToJsonEmptyCatalogIsWellFormed) {
  auto catalog = AuthorIndex::Create();
  std::string json = ComputeStats(*catalog).ToJson();
  EXPECT_NE(json.find("\"entries\":0"), std::string::npos);
  EXPECT_NE(json.find("\"volume_histogram\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"top_authors\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"avg_title_tokens\":0"), std::string::npos);
}

}  // namespace
}  // namespace authidx::core
