#include "authidx/format/typeset.h"

#include <gtest/gtest.h>

#include "authidx/parse/tsv.h"
#include "authidx/workload/sample_data.h"

namespace authidx::format {
namespace {

TEST(WrapTextTest, BasicWrapping) {
  auto lines = WrapText("one two three four", 9);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one two");
  EXPECT_EQ(lines[1], "three");
  EXPECT_EQ(lines[2], "four");
  for (const auto& line : lines) {
    EXPECT_LE(line.size(), 9u);
  }
}

TEST(WrapTextTest, NoWrapNeeded) {
  auto lines = WrapText("short", 20);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "short");
}

TEST(WrapTextTest, LongWordHardBroken) {
  auto lines = WrapText("anextraordinarilylongword ok", 10);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "anextraord");
  EXPECT_EQ(lines[1], "inarilylon");
  for (const auto& line : lines) {
    EXPECT_LE(line.size(), 10u);
  }
}

TEST(WrapTextTest, EmptyInputYieldsOneEmptyLine) {
  auto lines = WrapText("", 10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "");
  lines = WrapText("   ", 10);
  ASSERT_EQ(lines.size(), 1u);
}

TEST(WrapTextTest, EveryLineFitsProperty) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "word" + std::to_string(i) + " ";
  }
  for (size_t width : {5, 8, 13, 30, 80}) {
    for (const auto& line : WrapText(text, width)) {
      EXPECT_LE(line.size(), width);
      EXPECT_FALSE(line.empty());
    }
  }
}

std::unique_ptr<core::AuthorIndex> SampleCatalog() {
  auto entries = authidx::workload::LoadSampleEntries();
  EXPECT_TRUE(entries.ok());
  auto catalog = core::AuthorIndex::Create();
  EXPECT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  return catalog;
}

TEST(TypesetTest, PagesCarryHeadersAndNumbers) {
  auto catalog = SampleCatalog();
  TypesetOptions options;
  auto pages = TypesetAuthorIndex(*catalog, options);
  ASSERT_GT(pages.size(), 1u);
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i].number, options.first_page_number + i);
    EXPECT_NE(pages[i].text.find("AUTHOR INDEX"), std::string::npos);
    EXPECT_NE(pages[i].text.find("AUTHOR"), std::string::npos);
    EXPECT_NE(pages[i].text.find("ARTICLE"), std::string::npos);
    EXPECT_NE(pages[i].text.find("W. VA. L. REV."), std::string::npos);
    EXPECT_NE(pages[i].text.find(std::to_string(pages[i].number)),
              std::string::npos);
  }
}

TEST(TypesetTest, FirstEntriesInPrintedOrderWithMarkers) {
  auto catalog = SampleCatalog();
  auto pages = TypesetAuthorIndex(*catalog);
  const std::string& first_page = pages[0].text;
  size_t abdalla = first_page.find("Abdalla, Tarek F.*");
  size_t abramovsky = first_page.find("Abramovsky, Deborah");
  size_t abrams = first_page.find("Abrams, Dennis M.");
  ASSERT_NE(abdalla, std::string::npos);
  ASSERT_NE(abramovsky, std::string::npos);
  ASSERT_NE(abrams, std::string::npos);
  EXPECT_LT(abdalla, abramovsky);
  EXPECT_LT(abramovsky, abrams);
  // Citations appear in the layout.
  EXPECT_NE(first_page.find("91:973 (1989)"), std::string::npos);
}

TEST(TypesetTest, RepeatedAuthorsGetOneRowPerArticle) {
  auto catalog = SampleCatalog();
  std::string all = TypesetToString(*catalog);
  // Cady, Thomas C. has three articles in the sample: three rows.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = all.find("Cady, Thomas C.", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST(TypesetTest, LinesRespectTotalWidth) {
  auto catalog = SampleCatalog();
  TypesetOptions options;
  size_t total = options.author_width + options.gutter + options.title_width +
                 options.gutter + options.citation_width;
  for (const Page& page : TypesetAuthorIndex(*catalog, options)) {
    size_t start = 0;
    while (start < page.text.size()) {
      size_t end = page.text.find('\n', start);
      if (end == std::string::npos) {
        end = page.text.size();
      }
      EXPECT_LE(end - start, total + 2) << page.text.substr(start, end - start);
      start = end + 1;
    }
  }
}

TEST(TypesetTest, RowsNeverSplitAcrossPages) {
  auto catalog = SampleCatalog();
  TypesetOptions options;
  options.lines_per_page = 10;  // Tiny pages force many boundaries.
  auto pages = TypesetAuthorIndex(*catalog, options);
  ASSERT_GT(pages.size(), 3u);
  // Every citation (row start) must appear on the same page as its
  // author cell: scan for a citation on each page and confirm the line
  // containing it also has non-space content in the author column.
  for (const Page& page : pages) {
    size_t cite = page.text.find(" (19");
    if (cite == std::string::npos) {
      continue;
    }
    size_t line_start = page.text.rfind('\n', cite);
    line_start = (line_start == std::string::npos) ? 0 : line_start + 1;
    std::string line = page.text.substr(line_start, cite - line_start);
    EXPECT_NE(line.find_first_not_of(' '), std::string::npos);
  }
}

TEST(TypesetTest, EmptyCatalogProducesOneHeaderPage) {
  auto catalog = core::AuthorIndex::Create();
  auto pages = TypesetAuthorIndex(*catalog);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_NE(pages[0].text.find("AUTHOR INDEX"), std::string::npos);
}

TEST(TypesetTest, CustomHeadingAndFooters) {
  auto catalog = SampleCatalog();
  TypesetOptions options;
  options.heading = "PROCEEDINGS AUTHOR INDEX";
  options.footer_left = "[Vol. 95:1365";
  options.footer_right = "1993]";
  options.first_page_number = 1366;  // Even page: left footer.
  auto pages = TypesetAuthorIndex(*catalog, options);
  EXPECT_NE(pages[0].text.find("PROCEEDINGS AUTHOR INDEX"),
            std::string::npos);
  EXPECT_NE(pages[0].text.find("[Vol. 95:1365"), std::string::npos);
  ASSERT_GT(pages.size(), 1u);
  EXPECT_NE(pages[1].text.find("1993]"), std::string::npos);
}

TEST(TypesetTest, DeterministicOutput) {
  auto catalog = SampleCatalog();
  EXPECT_EQ(TypesetToString(*catalog), TypesetToString(*catalog));
}

}  // namespace
}  // namespace authidx::format
