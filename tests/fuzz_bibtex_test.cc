// Deterministic corpus-driven fuzzing of the BibTeX and TSV parsers:
// mutated documents must never crash the parser (errors must surface as
// Status), and successful parses must survive a print -> re-parse round
// trip. Run under the asan-ubsan preset for full effect.

#include <gtest/gtest.h>

#include "authidx/parse/bibtex.h"
#include "authidx/parse/tsv.h"
#include "fuzz_util.h"

namespace authidx {
namespace {

std::vector<std::string> BibTexCorpus() {
  return {
      R"(@article{coal93,
  author = "Webster J. Arceneaux and Philip B. Scott",
  title  = "Potential Criminal Liability in the {Coal} Fields",
  year   = "1993",
  volume = "95",
  pages  = "691-720"
})",
      R"(@inproceedings{minow92,
  author = {Minow, Martha},
  title  = {All in the Family {\&} In All Families},
  year   = 1992,
  volume = {95},
  pages  = {275--334},
})",
      R"(% comment line
free text between entries
@book{topo47,
  author = {Alexandrov, Pavel},
  title  = {Combinatorial Topology},
  year   = {1947}
})",
      R"(@comment{skipped}
@preamble{"also skipped"}
@misc{k, author={A, B and C, D}, title={{Nested {Braces}}}, year=2000})",
      "@article{x, author={Solo, Han}, title={Kessel Run}, year=1977,"
      " volume=12, pages=1}",
  };
}

TEST(FuzzBibTex, MutatedDocumentsNeverCrash) {
  CorpusMutator mutator(BibTexCorpus(), /*seed=*/0xb1b7e4);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string doc = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    Result<std::vector<BibTexEntry>> parsed = ParseBibTex(doc);
    if (!parsed.ok()) {
      continue;  // Rejection must be a Status, never a crash.
    }
    // Raw entries that parsed must also convert without crashing.
    BibTexToEntries(*parsed).status().IgnoreError();
  }
}

TEST(FuzzBibTex, AcceptedEntriesRoundTripThroughTsv) {
  CorpusMutator mutator(BibTexCorpus(), /*seed=*/0xcafe01);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string doc = mutator.Next();
    Result<std::vector<Entry>> entries = ParseBibTexToEntries(doc);
    if (!entries.ok()) {
      continue;
    }
    for (const Entry& entry : *entries) {
      if (!ValidateEntry(entry).ok()) {
        continue;  // TSV only guarantees round trips for valid entries.
      }
      SCOPED_TRACE("case " + std::to_string(i) + " entry " +
                   entry.author.ToIndexForm());
      std::string line = EntryToTsvLine(entry);
      Result<Entry> reparsed = ParseTsvLine(line);
      ASSERT_TRUE(reparsed.ok())
          << "print -> parse failed for '" << line
          << "': " << reparsed.status();
      EXPECT_EQ(EntryToTsvLine(*reparsed), line)
          << "print -> parse -> print not stable";
    }
  }
}

std::vector<std::string> TsvCorpus() {
  return {
      "Arceneaux, Webster J.\tPotential Criminal Liability\t95:691 (1993)\t"
      "Scott, Philip B.",
      "Minow, Martha\tAll in the Family\t95:275 (1992)",
      "# comment\n\nMcGinley, Patrick C.*\tSurface Mining\t82:1 (1976)",
      "A, B\tT\t1:1 (1900)\tC, D;E, F",
  };
}

TEST(FuzzTsv, MutatedDocumentsNeverCrashAndReparseStably) {
  CorpusMutator mutator(TsvCorpus(), /*seed=*/0x75f5a1);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string doc = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    Result<std::vector<Entry>> parsed = ParseTsv(doc);
    if (!parsed.ok()) {
      continue;
    }
    // Whatever the parser accepted must print and re-parse to the same
    // entries: the printed form is the interchange format of record.
    std::string printed = EntriesToTsv(*parsed);
    Result<std::vector<Entry>> reparsed = ParseTsv(printed);
    ASSERT_TRUE(reparsed.ok())
        << "re-parse of printed TSV failed: " << reparsed.status();
    EXPECT_EQ(*reparsed, *parsed);
  }
}

}  // namespace
}  // namespace authidx
