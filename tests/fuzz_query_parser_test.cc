// Deterministic corpus-driven fuzzing of the query-string parser:
// mutated queries must never crash (rejection is a Status), accepted
// queries must satisfy the Query invariants documented in ast.h, and
// parsing must be deterministic (same input -> same debug rendering).
// Run under the asan-ubsan preset for full effect.

#include <gtest/gtest.h>

#include "authidx/query/parser.h"
#include "fuzz_util.h"

namespace authidx::query {
namespace {

std::vector<std::string> QueryCorpus() {
  return {
      "author:mcginley title:\"surface mining\" year:1976..1985 -tax",
      "author:sm* vol:82 student:yes order:relevance limit:20",
      "author~jonson",
      "coauthor:scott year:1993 offset:10 limit:5",
      "title:liability vol:95..96 order:collation student:no",
      "\"all in the family\" -topology year:1992",
      "author:\"Arceneaux, Webster J.\" vol:95",
  };
}

void CheckInvariants(const Query& q, const std::string& input) {
  // At most one author-match mode (documented in ast.h).
  int author_modes = (q.author_exact ? 1 : 0) + (q.author_prefix ? 1 : 0) +
                     (q.author_fuzzy ? 1 : 0);
  EXPECT_LE(author_modes, 1) << "query: " << input;
  if (q.year) {
    EXPECT_LE(q.year->lo, q.year->hi) << "query: " << input;
  }
  if (q.volume) {
    EXPECT_LE(q.volume->lo, q.volume->hi) << "query: " << input;
  }
  // ToString on an accepted query must not crash and must be stable.
  EXPECT_EQ(q.ToString(), q.ToString()) << "query: " << input;
}

TEST(FuzzQueryParser, MutatedQueriesNeverCrash) {
  CorpusMutator mutator(QueryCorpus(), /*seed=*/0x9e41f);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string text = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    Result<Query> q = ParseQuery(text);
    if (!q.ok()) {
      continue;  // Rejection must be a Status, never a crash.
    }
    CheckInvariants(*q, text);
  }
}

TEST(FuzzQueryParser, ParseIsDeterministic) {
  CorpusMutator mutator(QueryCorpus(), /*seed=*/0x517e9);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string text = mutator.Next();
    SCOPED_TRACE("case " + std::to_string(i));
    Result<Query> a = ParseQuery(text);
    Result<Query> b = ParseQuery(text);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->ToString(), b->ToString());
    } else {
      EXPECT_EQ(a.status(), b.status());
    }
  }
}

// Random garbage (not derived from the corpus) exercises the lexer's
// first-byte dispatch harder than mutations of well-formed queries.
TEST(FuzzQueryParser, RandomGarbageNeverCrashes) {
  Random rng(0xdead11);
  int iters = FuzzIterations();
  for (int i = 0; i < iters; ++i) {
    std::string text = RandomBytes(&rng, 64);
    SCOPED_TRACE("case " + std::to_string(i));
    Result<Query> q = ParseQuery(text);
    if (q.ok()) {
      CheckInvariants(*q, text);
    }
  }
}

}  // namespace
}  // namespace authidx::query
