#include "authidx/storage/memtable.h"

#include <gtest/gtest.h>

#include <map>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"

namespace authidx::storage {
namespace {

TEST(MemTableTest, PutGetDelete) {
  MemTable table;
  std::string value;
  EXPECT_EQ(table.Get("k", &value), MemTable::GetResult::kNotFound);
  table.Put("k", "v1");
  EXPECT_EQ(table.Get("k", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v1");
  table.Put("k", "v2");  // Overwrite.
  EXPECT_EQ(table.Get("k", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v2");
  table.Delete("k");
  EXPECT_EQ(table.Get("k", &value), MemTable::GetResult::kDeleted);
  table.Put("k", "v3");  // Resurrect.
  EXPECT_EQ(table.Get("k", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v3");
}

TEST(MemTableTest, DeleteOfUnknownKeyIsTombstone) {
  MemTable table;
  table.Delete("ghost");
  std::string value;
  EXPECT_EQ(table.Get("ghost", &value), MemTable::GetResult::kDeleted);
  EXPECT_EQ(table.entry_count(), 1u);  // Tombstone occupies a node.
}

TEST(MemTableTest, IteratorYieldsSortedKeysWithTags) {
  MemTable table;
  table.Put("delta", "4");
  table.Put("alpha", "1");
  table.Put("charlie", "3");
  table.Delete("bravo");
  auto it = table.NewIterator();
  std::vector<std::pair<std::string, bool>> seen;  // (key, is_tombstone).
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen.emplace_back(std::string(it->key()),
                      MemTable::IsTombstoneValue(it->value()));
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_pair(std::string("alpha"), false));
  EXPECT_EQ(seen[1], std::make_pair(std::string("bravo"), true));
  EXPECT_EQ(seen[2], std::make_pair(std::string("charlie"), false));
  EXPECT_EQ(seen[3], std::make_pair(std::string("delta"), false));
}

TEST(MemTableTest, IteratorSeek) {
  MemTable table;
  table.Put("b", "1");
  table.Put("d", "2");
  auto it = table.NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("e");
  EXPECT_FALSE(it->Valid());
  it->Seek("");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
}

TEST(MemTableTest, TagHelpers) {
  std::string tagged = MemTable::TagPut("payload");
  EXPECT_FALSE(MemTable::IsTombstoneValue(tagged));
  EXPECT_EQ(MemTable::StripTag(tagged), "payload");
  std::string tombstone = MemTable::TagTombstone();
  EXPECT_TRUE(MemTable::IsTombstoneValue(tombstone));
  EXPECT_EQ(MemTable::StripTag(tombstone), "");
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable table;
  size_t before = table.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    table.Put(StringPrintf("key%06d", i), std::string(100, 'v'));
  }
  EXPECT_GT(table.ApproximateMemoryUsage(), before + 100 * 1000);
}

class MemTableModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemTableModelTest, AgreesWithStdMap) {
  Random rng(GetParam());
  MemTable table;
  // Model: key -> (deleted?, value).
  std::map<std::string, std::pair<bool, std::string>> model;
  for (int op = 0; op < 30000; ++op) {
    std::string key = StringPrintf("k%04llu",
        static_cast<unsigned long long>(rng.Uniform(2000)));
    if (rng.OneIn(4)) {
      table.Delete(key);
      model[key] = {true, ""};
    } else {
      std::string value = StringPrintf("v%llu",
          static_cast<unsigned long long>(rng.Next64()));
      table.Put(key, value);
      model[key] = {false, value};
    }
  }
  for (const auto& [key, state] : model) {
    std::string value;
    MemTable::GetResult result = table.Get(key, &value);
    if (state.first) {
      ASSERT_EQ(result, MemTable::GetResult::kDeleted) << key;
    } else {
      ASSERT_EQ(result, MemTable::GetResult::kFound) << key;
      ASSERT_EQ(value, state.second) << key;
    }
  }
  // Iterator agrees with the model's key order.
  auto it = table.NewIterator();
  it->SeekToFirst();
  for (const auto& [key, state] : model) {
    ASSERT_TRUE(it->Valid());
    ASSERT_EQ(it->key(), key);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemTableModelTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace authidx::storage
