#include "authidx/index/postings.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "authidx/common/random.h"

namespace authidx {
namespace {

std::vector<EntryId> RandomSortedIds(Random* rng, size_t n, EntryId max_id) {
  std::set<EntryId> ids;
  while (ids.size() < n) {
    ids.insert(static_cast<EntryId>(rng->Uniform(max_id)));
  }
  return {ids.begin(), ids.end()};
}

TEST(PostingsCodecTest, RoundTrip) {
  std::vector<Posting> postings = {
      {0, 1}, {1, 3}, {7, 1}, {100, 2}, {1000000, 9}};
  std::string encoded = EncodePostings(postings);
  Result<std::vector<Posting>> decoded = DecodePostings(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, postings);
}

TEST(PostingsCodecTest, EmptyList) {
  Result<std::vector<Posting>> decoded = DecodePostings(EncodePostings({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PostingsCodecTest, DeltaCompressionIsCompact) {
  // Dense small-gap lists should take ~2 bytes per posting.
  std::vector<Posting> postings;
  for (EntryId i = 0; i < 1000; ++i) {
    postings.push_back({i * 2, 1});
  }
  std::string encoded = EncodePostings(postings);
  EXPECT_LT(encoded.size(), 1000u * 3);
}

TEST(PostingsCodecTest, CorruptionRejected) {
  std::string encoded = EncodePostings({{5, 1}, {9, 2}});
  // Truncations.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodePostings(encoded.substr(0, len)).ok()) << len;
  }
  // Trailing junk.
  EXPECT_TRUE(DecodePostings(encoded + "x").status().IsCorruption());
  // Absurd count with tiny buffer.
  std::string absurd;
  absurd.push_back('\xFF');
  absurd.push_back('\xFF');
  absurd.push_back('\x7F');
  EXPECT_TRUE(DecodePostings(absurd).status().IsCorruption());
}

TEST(PostingsCodecTest, NonIncreasingDocsRejected) {
  // Hand-craft: count 2, first doc 5, gap 0 (duplicate).
  std::vector<Posting> good = {{5, 1}, {6, 1}};
  std::string encoded = EncodePostings(good);
  // Patch second gap byte (1) to 0: layout is [count][5][1][gap][1].
  encoded[3] = 0;
  EXPECT_TRUE(DecodePostings(encoded).status().IsCorruption());
}

TEST(IntersectTest, BasicCases) {
  std::vector<EntryId> a = {1, 3, 5, 7, 9};
  std::vector<EntryId> b = {3, 4, 5, 9, 11};
  std::vector<EntryId> expected = {3, 5, 9};
  EXPECT_EQ(IntersectLinear(a, b), expected);
  EXPECT_EQ(IntersectGalloping(a, b), expected);
  EXPECT_EQ(Intersect(a, b), expected);
  EXPECT_EQ(Intersect(b, a), expected);
  EXPECT_TRUE(Intersect(a, {}).empty());
  EXPECT_TRUE(Intersect({}, b).empty());
  EXPECT_EQ(Intersect(a, a), a);
}

TEST(UnionDifferenceTest, BasicCases) {
  std::vector<EntryId> a = {1, 3, 5};
  std::vector<EntryId> b = {2, 3, 6};
  EXPECT_EQ(Union(a, b), (std::vector<EntryId>{1, 2, 3, 5, 6}));
  EXPECT_EQ(Difference(a, b), (std::vector<EntryId>{1, 5}));
  EXPECT_EQ(Difference(a, {}), a);
  EXPECT_TRUE(Difference({}, b).empty());
}

// Property: all three intersection strategies agree with a brute-force
// set intersection across size ratios (the galloping path must engage
// at high ratios).
struct RatioParam {
  size_t small_size;
  size_t large_size;
  uint64_t seed;
};

class IntersectPropertyTest : public ::testing::TestWithParam<RatioParam> {};

TEST_P(IntersectPropertyTest, StrategiesAgree) {
  const RatioParam param = GetParam();
  Random rng(param.seed);
  std::vector<EntryId> small =
      RandomSortedIds(&rng, param.small_size, 1 << 20);
  std::vector<EntryId> large =
      RandomSortedIds(&rng, param.large_size, 1 << 20);
  std::vector<EntryId> expected;
  std::set_intersection(small.begin(), small.end(), large.begin(),
                        large.end(), std::back_inserter(expected));
  EXPECT_EQ(IntersectLinear(small, large), expected);
  EXPECT_EQ(IntersectGalloping(small, large), expected);
  EXPECT_EQ(IntersectGalloping(large, small), expected);
  EXPECT_EQ(Intersect(small, large), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, IntersectPropertyTest,
    ::testing::Values(RatioParam{10, 10, 1}, RatioParam{100, 100, 2},
                      RatioParam{10, 10000, 3}, RatioParam{3, 50000, 4},
                      RatioParam{1000, 1000, 5}, RatioParam{1, 100000, 6}));

TEST(CodecPropertyTest, RandomListsRoundTrip) {
  Random rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<EntryId> ids = RandomSortedIds(&rng, rng.Uniform(500), 1 << 24);
    std::vector<Posting> postings;
    for (EntryId id : ids) {
      postings.push_back({id, 1 + static_cast<uint32_t>(rng.Uniform(5))});
    }
    Result<std::vector<Posting>> decoded =
        DecodePostings(EncodePostings(postings));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(*decoded, postings);
  }
}

}  // namespace
}  // namespace authidx
