#include "authidx/index/postings.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "authidx/common/random.h"

namespace authidx {
namespace {

std::vector<EntryId> RandomSortedIds(Random* rng, size_t n, EntryId max_id) {
  std::set<EntryId> ids;
  while (ids.size() < n) {
    ids.insert(static_cast<EntryId>(rng->Uniform(max_id)));
  }
  return {ids.begin(), ids.end()};
}

TEST(PostingsCodecTest, RoundTrip) {
  std::vector<Posting> postings = {
      {0, 1}, {1, 3}, {7, 1}, {100, 2}, {1000000, 9}};
  std::string encoded = EncodePostings(postings);
  Result<std::vector<Posting>> decoded = DecodePostings(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, postings);
}

TEST(PostingsCodecTest, EmptyList) {
  Result<std::vector<Posting>> decoded = DecodePostings(EncodePostings({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PostingsCodecTest, DeltaCompressionIsCompact) {
  // Dense small-gap lists should take ~2 bytes per posting.
  std::vector<Posting> postings;
  for (EntryId i = 0; i < 1000; ++i) {
    postings.push_back({i * 2, 1});
  }
  std::string encoded = EncodePostings(postings);
  EXPECT_LT(encoded.size(), 1000u * 3);
}

TEST(PostingsCodecTest, CorruptionRejected) {
  std::string encoded = EncodePostings({{5, 1}, {9, 2}});
  // Truncations.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodePostings(encoded.substr(0, len)).ok()) << len;
  }
  // Trailing junk.
  EXPECT_TRUE(DecodePostings(encoded + "x").status().IsCorruption());
  // Absurd count with tiny buffer.
  std::string absurd;
  absurd.push_back('\xFF');
  absurd.push_back('\xFF');
  absurd.push_back('\x7F');
  EXPECT_TRUE(DecodePostings(absurd).status().IsCorruption());
}

TEST(PostingsCodecTest, NonIncreasingDocsRejected) {
  // Hand-craft: count 2, first doc 5, gap 0 (duplicate).
  std::vector<Posting> good = {{5, 1}, {6, 1}};
  std::string encoded = EncodePostings(good);
  // Patch second gap byte (1) to 0: layout is [count][5][1][gap][1].
  encoded[3] = 0;
  EXPECT_TRUE(DecodePostings(encoded).status().IsCorruption());
}

std::vector<Posting> MakePostings(Random* rng, size_t n) {
  std::vector<EntryId> ids = RandomSortedIds(rng, n, 1 << 24);
  std::vector<Posting> postings;
  for (EntryId id : ids) {
    postings.push_back({id, 1 + static_cast<uint32_t>(rng->Uniform(7))});
  }
  return postings;
}

TEST(BlockMaxCodecTest, RoundTripAcrossBlockBoundaries) {
  Random rng(7);
  // 0, 1, partial, exactly one, one + partial, many blocks.
  for (size_t n : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 1000u}) {
    std::vector<Posting> postings = MakePostings(&rng, n);
    std::string encoded = EncodeBlockMaxPostings(postings);
    Result<std::vector<Posting>> decoded = DecodeBlockMaxPostings(encoded);
    ASSERT_TRUE(decoded.ok()) << n << ": " << decoded.status();
    EXPECT_EQ(*decoded, postings) << n;
  }
}

TEST(BlockMaxCodecTest, SkipTableMatchesBlocks) {
  Random rng(8);
  std::vector<Posting> postings = MakePostings(&rng, 100);
  std::string encoded = EncodeBlockMaxPostings(postings);
  Result<BlockMaxReader> reader = BlockMaxReader::Open(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->total_count(), 100u);
  ASSERT_EQ(reader->block_count(), 4u);  // 32 + 32 + 32 + 4.
  std::vector<Posting> block;
  size_t seen = 0;
  for (size_t b = 0; b < reader->block_count(); ++b) {
    ASSERT_TRUE(reader->DecodeBlock(b, &block).ok());
    ASSERT_EQ(block.size(), reader->block(b).count);
    uint32_t max_freq = 0;
    for (const Posting& p : block) {
      max_freq = std::max(max_freq, p.freq);
      ASSERT_EQ(p, postings[seen]);
      ++seen;
    }
    EXPECT_EQ(reader->block(b).max_freq, max_freq);
    EXPECT_EQ(reader->block(b).last_doc, block.back().doc);
  }
  EXPECT_EQ(seen, postings.size());
}

TEST(BlockMaxCodecTest, BlocksDecodeIndependently) {
  Random rng(9);
  std::vector<Posting> postings = MakePostings(&rng, 200);
  std::string encoded = EncodeBlockMaxPostings(postings);
  Result<BlockMaxReader> reader = BlockMaxReader::Open(encoded);
  ASSERT_TRUE(reader.ok());
  // Decode only the last block — no predecessor decode needed.
  std::vector<Posting> block;
  size_t last = reader->block_count() - 1;
  ASSERT_TRUE(reader->DecodeBlock(last, &block).ok());
  ASSERT_FALSE(block.empty());
  EXPECT_EQ(block.back().doc, postings.back().doc);
  EXPECT_EQ(block.front().doc, postings[32 * last].doc);
}

TEST(BlockMaxCodecTest, TruncationsRejected) {
  Random rng(10);
  std::string encoded = EncodeBlockMaxPostings(MakePostings(&rng, 70));
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeBlockMaxPostings(encoded.substr(0, len)).ok()) << len;
  }
  EXPECT_TRUE(
      DecodeBlockMaxPostings(encoded + "x").status().IsCorruption());
}

TEST(BlockMaxCodecTest, ForgedCountsRejectedBeforeAllocation) {
  // A huge total_count in a tiny buffer must fail validation, not
  // drive a reserve() of attacker-chosen size.
  std::string absurd;
  absurd.push_back('\xFF');
  absurd.push_back('\xFF');
  absurd.push_back('\xFF');
  absurd.push_back('\x7F');
  EXPECT_TRUE(DecodeBlockMaxPostings(absurd).status().IsCorruption());
  // Plausible total_count but absurd block_count.
  std::string forged;
  forged.push_back('\x04');  // total_count = 4
  forged.push_back('\xFF');
  forged.push_back('\xFF');
  forged.push_back('\x7F');  // block_count huge
  EXPECT_TRUE(DecodeBlockMaxPostings(forged).status().IsCorruption());
  // block_count inconsistent with total_count.
  std::string mismatched;
  mismatched.push_back('\x04');  // total_count = 4
  mismatched.push_back('\x02');  // block_count = 2 (should be 1)
  EXPECT_TRUE(DecodeBlockMaxPostings(mismatched).status().IsCorruption());
}

TEST(BlockMaxCodecTest, CorruptedSkipEntriesRejected) {
  Random rng(11);
  std::vector<Posting> postings = MakePostings(&rng, 64);
  std::string encoded = EncodeBlockMaxPostings(postings);
  // Flip every byte in turn; decode must never crash, and anything it
  // accepts must still be structurally valid (strictly increasing doc
  // ids). Content integrity beyond structure is the storage layer's
  // CRC job, not the codec's.
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (uint8_t delta : {uint8_t{1}, uint8_t{0x80}}) {
      std::string corrupt = encoded;
      corrupt[i] = static_cast<char>(static_cast<uint8_t>(corrupt[i]) ^ delta);
      Result<std::vector<Posting>> decoded = DecodeBlockMaxPostings(corrupt);
      if (!decoded.ok()) {
        continue;
      }
      EntryId prev = 0;
      bool first = true;
      for (const Posting& p : *decoded) {
        EXPECT_TRUE(first || p.doc > prev) << "byte " << i;
        prev = p.doc;
        first = false;
      }
    }
  }
}

TEST(BlockMaxCodecTest, MatchesPlainCodecPayload) {
  // Block payloads concatenated are exactly the EncodePostings stream
  // minus its count prefix — the formats share the inner codec.
  Random rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Posting> postings = MakePostings(&rng, rng.Uniform(300));
    Result<std::vector<Posting>> plain =
        DecodePostings(EncodePostings(postings));
    Result<std::vector<Posting>> blockmax =
        DecodeBlockMaxPostings(EncodeBlockMaxPostings(postings));
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(blockmax.ok());
    EXPECT_EQ(*plain, *blockmax);
  }
}

TEST(IntersectTest, BasicCases) {
  std::vector<EntryId> a = {1, 3, 5, 7, 9};
  std::vector<EntryId> b = {3, 4, 5, 9, 11};
  std::vector<EntryId> expected = {3, 5, 9};
  EXPECT_EQ(IntersectLinear(a, b), expected);
  EXPECT_EQ(IntersectGalloping(a, b), expected);
  EXPECT_EQ(Intersect(a, b), expected);
  EXPECT_EQ(Intersect(b, a), expected);
  EXPECT_TRUE(Intersect(a, {}).empty());
  EXPECT_TRUE(Intersect({}, b).empty());
  EXPECT_EQ(Intersect(a, a), a);
}

TEST(UnionDifferenceTest, BasicCases) {
  std::vector<EntryId> a = {1, 3, 5};
  std::vector<EntryId> b = {2, 3, 6};
  EXPECT_EQ(Union(a, b), (std::vector<EntryId>{1, 2, 3, 5, 6}));
  EXPECT_EQ(Difference(a, b), (std::vector<EntryId>{1, 5}));
  EXPECT_EQ(Difference(a, {}), a);
  EXPECT_TRUE(Difference({}, b).empty());
}

// Property: all three intersection strategies agree with a brute-force
// set intersection across size ratios (the galloping path must engage
// at high ratios).
struct RatioParam {
  size_t small_size;
  size_t large_size;
  uint64_t seed;
};

class IntersectPropertyTest : public ::testing::TestWithParam<RatioParam> {};

TEST_P(IntersectPropertyTest, StrategiesAgree) {
  const RatioParam param = GetParam();
  Random rng(param.seed);
  std::vector<EntryId> small =
      RandomSortedIds(&rng, param.small_size, 1 << 20);
  std::vector<EntryId> large =
      RandomSortedIds(&rng, param.large_size, 1 << 20);
  std::vector<EntryId> expected;
  std::set_intersection(small.begin(), small.end(), large.begin(),
                        large.end(), std::back_inserter(expected));
  EXPECT_EQ(IntersectLinear(small, large), expected);
  EXPECT_EQ(IntersectGalloping(small, large), expected);
  EXPECT_EQ(IntersectGalloping(large, small), expected);
  EXPECT_EQ(Intersect(small, large), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, IntersectPropertyTest,
    ::testing::Values(RatioParam{10, 10, 1}, RatioParam{100, 100, 2},
                      RatioParam{10, 10000, 3}, RatioParam{3, 50000, 4},
                      RatioParam{1000, 1000, 5}, RatioParam{1, 100000, 6}));

TEST(CodecPropertyTest, RandomListsRoundTrip) {
  Random rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<EntryId> ids = RandomSortedIds(&rng, rng.Uniform(500), 1 << 24);
    std::vector<Posting> postings;
    for (EntryId id : ids) {
      postings.push_back({id, 1 + static_cast<uint32_t>(rng.Uniform(5))});
    }
    Result<std::vector<Posting>> decoded =
        DecodePostings(EncodePostings(postings));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(*decoded, postings);
  }
}

}  // namespace
}  // namespace authidx
