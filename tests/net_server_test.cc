// Client <-> server integration over real loopback sockets: round
// trips, pipelining, framing limits, abort/drain behavior, admission
// control, and the degraded-storage contract surfaced over RPC.

#include "authidx/net/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/net/client.h"
#include "authidx/parse/tsv.h"
#include "fault_env.h"
#include "net_fault_util.h"

namespace authidx::net {
namespace {

const char* const kMinowTsv =
    "Minow, Martha\tAll in the Family and in All Families\t95:275 (1992)";
const char* const kArceneauxTsv =
    "Arceneaux, Webster J., III\tPotential Criminal Liability in the Coal "
    "Fields\t95:691 (1993)";

// In-memory catalog + running server on an ephemeral port.
struct TestServer {
  std::unique_ptr<core::AuthorIndex> catalog;
  std::unique_ptr<Server> server;

  explicit TestServer(ServerOptions options = {}) {
    catalog = core::AuthorIndex::Create();
    // Share the catalog registry, as authidx_server does: one metrics
    // page must cover engine and RPC instruments.
    options.metrics = catalog->mutable_metrics();
    server = std::make_unique<Server>(catalog.get(), options);
    AUTHIDX_CHECK_OK(server->Start());
  }

  Client MakeClient(int max_attempts = 1) const {
    ClientOptions options;
    options.port = server->port();
    options.retry.max_attempts = max_attempts;
    options.retry.base_delay_us = 100;
    return Client(options);
  }

  uint64_t CounterValue(const std::string& name) const {
    // Keep the snapshot alive past Find(): the pointer aliases it.
    obs::MetricsSnapshot snapshot = server->metrics().Snapshot();
    const obs::MetricValue* value = snapshot.Find(name);
    return value != nullptr ? value->counter : 0;
  }

  // The worker records a trace AFTER writing the response, so a client
  // that just received its reply can race the store briefly; poll.
  uint64_t WaitForTraces(uint64_t at_least) const {
    uint64_t recorded = 0;
    for (int i = 0; i < 400; ++i) {
      recorded = server->trace_store().total_recorded();
      if (recorded >= at_least) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return recorded;
  }
};

TEST(NetServerTest, PingAddQueryStatsFlushRoundTrip) {
  TestServer fixture;
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Ping().ok());

  Result<uint64_t> added = client.Add({kMinowTsv, kArceneauxTsv});
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_EQ(*added, 2u);
  EXPECT_EQ(fixture.catalog->entry_count(), 2u);

  Result<WireQueryResult> result = client.Query("author:minow");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_matches, 1u);
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].author, "Minow, Martha");
  EXPECT_EQ(result->hits[0].title,
            "All in the Family and in All Families");
  EXPECT_EQ(result->hits[0].citation, "95:275 (1992)");

  Result<WireStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entry_count, 2u);
  EXPECT_EQ(stats->group_count, 2u);

  EXPECT_TRUE(client.Flush().ok());  // No-op for in-memory, still OK.

  // The shared registry carries the server-side instruments.
  EXPECT_GE(fixture.CounterValue("authidx_server_requests_total"), 5u);
  EXPECT_EQ(fixture.CounterValue("authidx_shed_requests_total"), 0u);
}

TEST(NetServerTest, BadQueryAndBadTsvSurfaceEngineStatusCodes) {
  TestServer fixture;
  Client client = fixture.MakeClient();
  Result<WireQueryResult> result = client.Query("year:abc");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();

  Result<uint64_t> added = client.Add({"not a tsv line"});
  EXPECT_FALSE(added.ok());
  EXPECT_FALSE(added.status().IsIOError());  // Parse error, not I/O.
  EXPECT_EQ(fixture.catalog->entry_count(), 0u);

  // The connection survives request-level errors.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, PipelinedRequestsAllAnsweredAndMatchedById) {
  TestServer fixture;
  ASSERT_TRUE(fixture.catalog
                  ->AddAll(*ParseTsv(std::string(kMinowTsv) + "\n" +
                                     kArceneauxTsv + "\n"))
                  .ok());
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  std::string query_payload;
  EncodeQueryRequest("author:minow", &query_payload);
  constexpr size_t kDepth = 16;
  std::set<uint64_t> sent;
  for (size_t i = 0; i < kDepth; ++i) {
    uint64_t id = 0;
    Status s = (i % 2 == 0)
                   ? client.SendRequest(Opcode::kQuery, query_payload, &id)
                   : client.SendRequest(Opcode::kPing, {}, &id);
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_TRUE(sent.insert(id).second);
  }
  // Responses may arrive in any order (the protocol's request_id is the
  // correlation mechanism); every request must be answered exactly once.
  std::set<uint64_t> received;
  for (size_t i = 0; i < kDepth; ++i) {
    uint64_t id = 0;
    ResponsePayload response;
    ASSERT_TRUE(client.ReceiveResponse(&id, &response).ok());
    EXPECT_EQ(response.status, WireStatus::kOk);
    EXPECT_TRUE(received.insert(id).second) << "duplicate response " << id;
  }
  EXPECT_EQ(received, sent);
}

TEST(NetServerTest, OversizedFrameGetsBadFrameAndCloses) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  TestServer fixture(options);
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  std::string big_payload;
  EncodeAddRequest({std::string(4096, 'x')}, &big_payload);
  uint64_t id = 0;
  ASSERT_TRUE(client.SendRequest(Opcode::kAdd, big_payload, &id).ok());

  ResponsePayload response;
  uint64_t response_id = 0;
  ASSERT_TRUE(client.ReceiveResponse(&response_id, &response).ok());
  EXPECT_EQ(response.status, WireStatus::kBadFrame);
  // The stream cannot be resynchronized, so the BAD_FRAME response
  // cannot echo the request id (the header was never trusted).
  EXPECT_EQ(response_id, 0u);
  // ...and the server closes the connection right after.
  Status s = client.ReceiveResponse(&response_id, &response);
  EXPECT_TRUE(s.IsIOError()) << s;

  EXPECT_GE(fixture.CounterValue("authidx_server_bad_frames_total"), 1u);

  // A fresh connection works: the poisoned one was quarantined alone.
  Client fresh = fixture.MakeClient();
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST(NetServerTest, CorruptFrameAlsoGetsBadFrame) {
  TestServer fixture;
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());

  // Hand-corrupt a frame on a second raw connection so the CRC fails.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(fixture.server->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  FrameHeader header;
  header.request_id = 5;
  std::string frame;
  EncodeFrame(header, "payload", &frame);
  frame[frame.size() - 1] = static_cast<char>(frame.back() ^ 0x1);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  // The server answers BAD_FRAME then closes; read until EOF.
  std::string response_bytes;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response_bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  DecodedFrame decoded;
  ASSERT_EQ(DecodeFrame(response_bytes, kMaxFrameBytesDefault, &decoded,
                        nullptr),
            DecodeOutcome::kFrame);
  ResponsePayload response;
  ASSERT_TRUE(DecodeResponsePayload(decoded.payload, &response).ok());
  EXPECT_EQ(response.status, WireStatus::kBadFrame);

  // The first client's connection is unaffected.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, ResponseTruncatedMidFrameIsATransientIOError) {
  TestServer fixture;
  tests::TcpRelay relay(fixture.server->port());
  ASSERT_TRUE(relay.Start());

  ClientOptions options;
  options.port = relay.port();
  options.retry.max_attempts = 1;
  Client client(options);

  // Arm before the client's first connection: deliver only the first
  // few bytes of the response — a frame cut off inside its header —
  // then hard-close.
  relay.set_truncate_after(3);
  Status truncated = client.Ping();
  EXPECT_TRUE(truncated.IsIOError()) << truncated;
  EXPECT_EQ(relay.response_bytes_forwarded(), 3u);

  // Disarm: the client reconnects (new relay connection, fresh budget)
  // and the stream works end to end again.
  relay.clear_faults();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, UnknownOpcodeIsAnsweredWithoutClosing) {
  TestServer fixture;
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  uint64_t id = 0;
  ASSERT_TRUE(
      client.SendRequest(static_cast<Opcode>(0x7f), "", &id).ok());
  ResponsePayload response;
  uint64_t response_id = 0;
  ASSERT_TRUE(client.ReceiveResponse(&response_id, &response).ok());
  EXPECT_EQ(response.status, WireStatus::kUnknownOpcode);
  EXPECT_EQ(response_id, id);  // CRC-valid header, so the id is usable.
  // The stream stayed in sync: the same connection keeps working.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, ClientAbortMidResponseDoesNotHurtTheServer) {
  TestServer fixture;
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < 500; ++i) {
    Entry entry;
    entry.author = {"Abbott", "A. " + std::to_string(i), "", false};
    entry.title = "Title number " + std::to_string(i) +
                  std::string(200, 'x');  // Fatten the response.
    entry.citation = {90, i + 1, 1990};
    entries.push_back(std::move(entry));
  }
  ASSERT_TRUE(fixture.catalog->AddAll(std::move(entries)).ok());

  // Request a large result, then reset the connection without reading a
  // byte (SO_LINGER 0 turns close() into an RST): the worker's write
  // must fail gracefully, never kill the process via SIGPIPE.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(fixture.server->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string payload;
  EncodeQueryRequest("author:abbott limit:500", &payload);
  FrameHeader header;
  header.opcode = Opcode::kQuery;
  header.request_id = 1;
  std::string frame;
  EncodeFrame(header, payload, &frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  struct linger hard_reset = {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
               sizeof(hard_reset));
  ::close(fd);

  // The server keeps serving everyone else.
  Client client = fixture.MakeClient();
  for (int i = 0; i < 5; ++i) {
    Result<WireQueryResult> result =
        client.Query("author:abbott limit:3");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->hits.size(), 3u);
  }
}

TEST(NetServerTest, SheddingTriggersUnderOverloadAndCountsIt) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_limit = 1;
  options.max_pipeline = 64;
  options.handler_delay_ms_for_test = 50;  // Hold the one worker busy.
  TestServer fixture(options);
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  constexpr size_t kBurst = 8;
  for (size_t i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendRequest(Opcode::kPing, {}, &id).ok());
  }
  size_t ok = 0;
  size_t busy = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ResponsePayload response;
    ASSERT_TRUE(client.ReceiveResponse(&id, &response).ok());
    if (response.status == WireStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response.status, WireStatus::kRetryableBusy)
          << response.message;
      ++busy;
    }
  }
  // One slow worker + queue bound 1: the burst must overflow admission
  // control (exact counts depend on scheduling, the invariant doesn't).
  EXPECT_GE(ok, 1u);
  EXPECT_GE(busy, 1u);
  EXPECT_EQ(ok + busy, kBurst);
  EXPECT_GE(fixture.CounterValue("authidx_shed_requests_total"), busy);

  // RETRYABLE_BUSY maps to a transient Status, so the synchronous
  // client retries through the overload and eventually lands.
  Client retrying = fixture.MakeClient(/*max_attempts=*/10);
  EXPECT_TRUE(retrying.Ping().ok());
}

TEST(NetServerTest, PerConnectionPipelineLimitSheds) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_limit = 1024;  // Queue never fills; the cap must come
  options.max_pipeline = 2;    // from the per-connection limit.
  options.handler_delay_ms_for_test = 50;
  TestServer fixture(options);
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  constexpr size_t kBurst = 6;
  for (size_t i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendRequest(Opcode::kPing, {}, &id).ok());
  }
  size_t busy = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ResponsePayload response;
    ASSERT_TRUE(client.ReceiveResponse(&id, &response).ok());
    if (response.status == WireStatus::kRetryableBusy) {
      EXPECT_NE(response.message.find("pipeline"), std::string::npos);
      ++busy;
    }
  }
  EXPECT_GE(busy, 1u);
}

// ADD is not idempotent: once the request is fully sent, a failure
// while waiting for the response must NOT be blindly retried — the
// server may have executed the ingest with only the reply lost, and a
// re-send would duplicate entries.
TEST(NetServerTest, AmbiguousAddFailureIsNotRetried) {
  ServerOptions options;
  options.handler_delay_ms_for_test = 100;  // Outlive the client's
  TestServer fixture(options);              // receive timeout.
  ClientOptions client_options;
  client_options.port = fixture.server->port();
  client_options.io_timeout_ms = 30;
  client_options.retry.max_attempts = 5;
  client_options.retry.base_delay_us = 100;
  Client client(client_options);

  Result<uint64_t> added = client.Add({kMinowTsv});
  ASSERT_FALSE(added.ok());
  EXPECT_TRUE(added.status().IsIOError()) << added.status();
  EXPECT_NE(added.status().message().find("not retried"),
            std::string::npos)
      << added.status();

  // The server executes the one ADD it received; a blind retry under
  // max_attempts=5 would have ingested the line again.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(fixture.catalog->entry_count(), 1u);
}

// A QUERY whose rendered hit page would overflow the frame cap must
// not produce a frame the client rejects as corrupt: the server
// truncates the page to fit while total_matches reports every match.
TEST(NetServerTest, QueryHitPageIsTruncatedToFitTheFrameCap) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  TestServer fixture(options);
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < 40; ++i) {
    Entry entry;
    entry.author = {"Abbott", "A. " + std::to_string(i), "", false};
    entry.title = "Title number " + std::to_string(i) +
                  std::string(200, 'x');  // ~230 bytes per hit.
    entry.citation = {90, i + 1, 1990};
    entries.push_back(std::move(entry));
  }
  ASSERT_TRUE(fixture.catalog->AddAll(std::move(entries)).ok());

  Client client = fixture.MakeClient();  // Default 1 MiB client cap.
  Result<WireQueryResult> result = client.Query("author:abbott limit:40");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_matches, 40u);
  EXPECT_LT(result->hits.size(), 40u);
  EXPECT_GE(result->hits.size(), 1u);

  // The connection survives: the response frame stayed under the cap.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, ConnectionLimitRejectsTheOverflow) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer fixture(options);
  Client first = fixture.MakeClient();
  ASSERT_TRUE(first.Ping().ok());

  Client second = fixture.MakeClient();
  Status s = second.Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_GE(fixture.CounterValue("authidx_server_rejected_connections_total"),
            1u);
  // The admitted connection is unaffected.
  EXPECT_TRUE(first.Ping().ok());
}

TEST(NetServerTest, StopDrainsQueuedRequestsBeforeExiting) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_limit = 64;
  options.max_pipeline = 64;
  options.handler_delay_ms_for_test = 30;
  TestServer fixture(options);
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Connect().ok());

  constexpr size_t kQueued = 3;
  std::set<uint64_t> sent;
  for (size_t i = 0; i < kQueued; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendRequest(Opcode::kPing, {}, &id).ok());
    sent.insert(id);
  }
  // Give the event loop time to parse and enqueue all three, then stop:
  // the contract is that already-accepted requests are answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture.server->Stop();

  std::set<uint64_t> received;
  for (size_t i = 0; i < kQueued; ++i) {
    uint64_t id = 0;
    ResponsePayload response;
    Status s = client.ReceiveResponse(&id, &response);
    ASSERT_TRUE(s.ok()) << "response " << i << ": " << s;
    EXPECT_EQ(response.status, WireStatus::kOk);
    received.insert(id);
  }
  EXPECT_EQ(received, sent);
  EXPECT_FALSE(fixture.server->running());
}

// Storage latches its sticky background error; the RPC layer must
// surface it (docs/ROBUSTNESS.md meets docs/PROTOCOL.md).
TEST(NetServerTest, DegradedEngineSurfacesStickyErrorOverRpc) {
  std::string dir = ::testing::TempDir() + "/net_server_degraded";
  std::filesystem::remove_all(dir);
  tests::FaultEnv env;
  storage::EngineOptions engine_options;
  engine_options.env = &env;
  engine_options.retry_base_delay_us = 0;
  auto catalog = core::AuthorIndex::OpenPersistent(dir, engine_options);
  ASSERT_TRUE(catalog.ok()) << catalog.status();

  ServerOptions options;
  options.metrics = (*catalog)->mutable_metrics();
  Server server(catalog->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions client_options;
  client_options.port = server.port();
  client_options.retry.max_attempts = 1;
  Client client(client_options);

  ASSERT_TRUE(client.Add({kMinowTsv}).ok());

  env.FailAllFromNow();
  Result<uint64_t> doomed = client.Add({kArceneauxTsv});
  EXPECT_FALSE(doomed.ok());
  env.StopFailing();
  ASSERT_TRUE((*catalog)->StorageDegraded());

  // Degraded is sticky: writes keep failing fast with the latched
  // background error even though the injected fault is gone. The wire
  // carries the original status code and the degraded detail verbatim.
  Result<uint64_t> still_failing = client.Add({kArceneauxTsv});
  ASSERT_FALSE(still_failing.ok());
  EXPECT_TRUE(still_failing.status().IsIOError()) << still_failing.status();
  EXPECT_NE(still_failing.status().message().find("degraded"),
            std::string::npos)
      << still_failing.status();

  // ...while reads serve the durable state over the same connection.
  Result<WireQueryResult> result = client.Query("author:minow");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_matches, 1u);

  server.Stop();
  catalog->reset();
  std::filesystem::remove_all(dir);
}

// A traced query must come back with the client's trace id and the
// server's span tree, and the same id must be findable server-side in
// /tracez and /rpcz — that is the whole point of wire propagation.
TEST(NetServerTest, TracedQueryPropagatesIdAndReturnsSpanTree) {
  TestServer fixture;
  ASSERT_TRUE(fixture.catalog
                  ->AddAll(*ParseTsv(std::string(kMinowTsv) + "\n"))
                  .ok());
  ClientOptions options;
  options.port = fixture.server->port();
  options.retry.max_attempts = 1;
  options.trace = true;
  Client client(options);

  Result<WireQueryResult> result = client.Query("author:minow");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->hits.size(), 1u);

  const RpcTrace& trace = client.last_trace();
  EXPECT_FALSE(trace.trace_id.IsZero());
  EXPECT_TRUE(trace.sampled);
  ASSERT_FALSE(trace.spans.empty());
  EXPECT_EQ(trace.spans[0].name, "rpc/QUERY");
  EXPECT_EQ(trace.spans[0].depth, 0);
  std::set<std::string> names;
  for (const obs::Trace::Span& span : trace.spans) {
    names.insert(span.name);
  }
  // The RPC lifecycle children are always present...
  EXPECT_TRUE(names.count("socket_read")) << "missing socket_read";
  EXPECT_TRUE(names.count("decode")) << "missing decode";
  EXPECT_TRUE(names.count("queue_wait")) << "missing queue_wait";
  EXPECT_TRUE(names.count("execute")) << "missing execute";
  // ...with the engine's own spans grafted beneath "execute".
  EXPECT_TRUE(names.count("query")) << "missing engine query span";
  EXPECT_TRUE(names.count("parse")) << "missing engine parse span";

  // The same trace id is recoverable server-side.
  EXPECT_GE(fixture.WaitForTraces(1), 1u);
  std::string hex = trace.trace_id.ToHex();
  EXPECT_NE(fixture.server->TracezText().find(hex), std::string::npos)
      << "trace " << hex << " not in /tracez";
  std::string rpcz = fixture.server->RpczJson();
  EXPECT_NE(rpcz.find("\"QUERY\""), std::string::npos) << rpcz;
}

// Out-of-order pipelined responses must each carry the trace id of
// their own request — a server that answers from one shared slot (or
// cross-wires trace prefixes between connections' in-flight requests)
// fails this.
TEST(NetServerTest, PipelinedTracesMatchTheirOwnRequests) {
  TestServer fixture;
  ASSERT_TRUE(fixture.catalog
                  ->AddAll(*ParseTsv(std::string(kMinowTsv) + "\n" +
                                     kArceneauxTsv + "\n"))
                  .ok());
  ClientOptions options;
  options.port = fixture.server->port();
  options.retry.max_attempts = 1;
  options.trace = true;
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());

  std::string query_payload;
  EncodeQueryRequest("author:minow", &query_payload);
  constexpr size_t kDepth = 8;
  std::map<uint64_t, obs::TraceId> sent;  // request_id -> trace id
  std::map<uint64_t, std::string> root;   // request_id -> root span
  for (size_t i = 0; i < kDepth; ++i) {
    uint64_t id = 0;
    obs::TraceId trace_id;
    Status s = (i % 2 == 0)
                   ? client.SendRequest(Opcode::kQuery, query_payload,
                                        &id, &trace_id)
                   : client.SendRequest(Opcode::kPing, {}, &id, &trace_id);
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_FALSE(trace_id.IsZero());
    ASSERT_TRUE(sent.emplace(id, trace_id).second);
    root.emplace(id, i % 2 == 0 ? "rpc/QUERY" : "rpc/PING");
  }
  for (size_t i = 0; i < kDepth; ++i) {
    uint64_t id = 0;
    ResponsePayload response;
    ASSERT_TRUE(client.ReceiveResponse(&id, &response).ok());
    EXPECT_EQ(response.status, WireStatus::kOk);
    ASSERT_EQ(sent.count(id), 1u) << "unknown response id " << id;
    // The response's trace context is the one this request carried,
    // independent of the order responses came back in.
    EXPECT_EQ(client.last_trace().trace_id, sent[id])
        << "trace id mismatch on request " << id;
    ASSERT_FALSE(client.last_trace().spans.empty());
    EXPECT_EQ(client.last_trace().spans[0].name, root[id]);
    sent.erase(id);
  }
  EXPECT_TRUE(sent.empty());
  EXPECT_GE(fixture.WaitForTraces(kDepth), kDepth);
}

// Head sampling without client trace context: the server records 1 in
// N requests into its own store, and responses stay flag-free (the
// decision is local; untraced clients never see trace bytes).
TEST(NetServerTest, HeadSamplingRecordsUntracedRequests) {
  ServerOptions options;
  options.trace_sample_every = 1;  // Sample everything.
  TestServer fixture(options);
  Client client = fixture.MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_GE(fixture.WaitForTraces(1), 1u);
  // The client saw no trace context on the wire.
  EXPECT_TRUE(client.last_trace().trace_id.IsZero());
  EXPECT_TRUE(client.last_trace().spans.empty());
}

TEST(NetServerTest, StartStopLifecycle) {
  TestServer fixture;
  EXPECT_TRUE(fixture.server->running());
  EXPECT_GT(fixture.server->port(), 0);
  EXPECT_FALSE(fixture.server->Start().ok());  // Already running.
  fixture.server->Stop();
  EXPECT_FALSE(fixture.server->running());
  fixture.server->Stop();  // Idempotent.

  // Connections after Stop are refused.
  Client client = fixture.MakeClient();
  EXPECT_FALSE(client.Ping().ok());
}

}  // namespace
}  // namespace authidx::net
