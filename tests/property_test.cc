// Cross-module property tests: algebraic invariants that must hold for
// arbitrary inputs, checked over seeded random samples.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "authidx/common/coding.h"
#include "authidx/common/compress.h"
#include "authidx/common/random.h"
#include "authidx/format/typeset.h"
#include "authidx/model/serde.h"
#include "authidx/text/collate.h"
#include "authidx/text/distance.h"
#include "authidx/text/normalize.h"
#include "authidx/text/phonetic.h"
#include "authidx/text/tokenize.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

std::string RandomString(Random* rng, size_t max_len, int alphabet) {
  std::string s;
  size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->Uniform(alphabet)));
  }
  return s;
}

TEST(MetricPropertyTest, LevenshteinIsAMetric) {
  Random rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = RandomString(&rng, 12, 4);
    std::string b = RandomString(&rng, 12, 4);
    std::string c = RandomString(&rng, 12, 4);
    using text::Levenshtein;
    // Identity of indiscernibles.
    EXPECT_EQ(Levenshtein(a, a), 0u);
    EXPECT_EQ(Levenshtein(a, b) == 0, a == b);
    // Symmetry.
    EXPECT_EQ(Levenshtein(a, b), Levenshtein(b, a));
    // Triangle inequality.
    EXPECT_LE(Levenshtein(a, c), Levenshtein(a, b) + Levenshtein(b, c))
        << a << " " << b << " " << c;
    // Length-difference lower bound, max-length upper bound.
    size_t diff = a.size() > b.size() ? a.size() - b.size()
                                      : b.size() - a.size();
    EXPECT_GE(Levenshtein(a, b), diff);
    EXPECT_LE(Levenshtein(a, b), std::max(a.size(), b.size()));
  }
}

TEST(TextPropertyTest, FoldingAndNormalizationIdempotent) {
  Random rng(2);
  workload::NameGenerator names(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = trial % 2 == 0
                            ? names.NextTitle()
                            : RandomString(&rng, 30, 26) + " Édouard Šimek";
    std::string folded = text::FoldCase(input);
    EXPECT_EQ(text::FoldCase(folded), folded) << input;
    std::string normalized = text::NormalizeForIndex(input);
    EXPECT_EQ(text::NormalizeForIndex(normalized), normalized) << input;
  }
}

TEST(TextPropertyTest, AnalyzerIsDeterministicAndCaseBlind) {
  workload::NameGenerator names(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string title = names.NextTitle();
    std::string upper;
    for (char c : title) {
      upper.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    EXPECT_EQ(text::Tokenize(title), text::Tokenize(title));
    EXPECT_EQ(text::Tokenize(title), text::Tokenize(upper)) << title;
  }
}

TEST(PhoneticPropertyTest, CodesAreCaseAndAccentInvariant) {
  workload::NameGenerator names(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string surname = names.NextSurname();
    std::string lower = text::FoldCase(surname);
    EXPECT_EQ(text::Soundex(surname), text::Soundex(lower));
    EXPECT_EQ(text::Metaphone(surname), text::Metaphone(lower));
  }
}

TEST(CollatePropertyTest, SortKeyIsInjective) {
  Random rng(6);
  std::set<std::string> inputs, keys;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string s = RandomString(&rng, 10, 5);
    if (inputs.insert(s).second) {
      EXPECT_TRUE(keys.insert(text::MakeSortKey(s)).second)
          << "duplicate key for '" << s << "'";
    }
  }
}

TEST(CollatePropertyTest, KeyOrderRefinesPrimaryOrder) {
  // If two strings differ at the primary level, adding punctuation or
  // changing case must not reorder them.
  workload::NameGenerator names(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = names.NextSurname();
    std::string b = names.NextSurname();
    if (text::FoldCase(a) == text::FoldCase(b)) {
      continue;
    }
    int base = text::Compare(a, b);
    EXPECT_EQ(text::Compare("  " + a, b) < 0, base < 0);
    EXPECT_EQ(text::Compare(a + "'", b) < 0, base < 0);
    EXPECT_EQ(text::Compare(text::FoldCase(a), b) < 0, base < 0) << a;
  }
}

TEST(CodingPropertyTest, VarintLengthMatchesEncoding) {
  Random rng(8);
  for (int trial = 0; trial < 5000; ++trial) {
    uint64_t v = rng.Skewed(63);
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), static_cast<size_t>(VarintLength64(v))) << v;
    if (v <= UINT32_MAX) {
      std::string buf32;
      PutVarint32(&buf32, static_cast<uint32_t>(v));
      EXPECT_EQ(buf32.size(),
                static_cast<size_t>(VarintLength32(static_cast<uint32_t>(v))));
    }
  }
}

TEST(CompressPropertyTest, DeterministicAndStable) {
  Random rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string input = RandomString(&rng, 3000, 3);
    std::string c1, c2;
    LzCompress(input, &c1);
    LzCompress(input, &c2);
    EXPECT_EQ(c1, c2);
    // Compressing the decompression yields the same stream.
    std::string c3;
    LzCompress(*LzDecompress(c1), &c3);
    EXPECT_EQ(c1, c3);
  }
}

TEST(SerdePropertyTest, EncodingIsCanonical) {
  workload::NameGenerator names(10);
  Random rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    Entry entry;
    entry.author = names.NextAuthor();
    entry.title = names.NextTitle();
    entry.citation = {static_cast<uint32_t>(1 + rng.Uniform(100)),
                      static_cast<uint32_t>(1 + rng.Uniform(2000)),
                      static_cast<uint32_t>(1900 + rng.Uniform(150))};
    if (rng.OneIn(3)) {
      entry.coauthors.push_back(names.NextAuthor().ToIndexForm());
    }
    std::string encoded = EncodeEntryToString(entry);
    Result<Entry> decoded = DecodeEntryExact(encoded);
    ASSERT_TRUE(decoded.ok());
    // Canonical: re-encoding the decoded entry is byte-identical.
    EXPECT_EQ(EncodeEntryToString(*decoded), encoded);
  }
}

TEST(WrapPropertyTest, WrappingPreservesEveryWord) {
  workload::NameGenerator names(12);
  for (int trial = 0; trial < 200; ++trial) {
    std::string title = names.NextTitle();
    for (size_t width : {8u, 14u, 36u}) {
      std::vector<std::string> lines = format::WrapText(title, width);
      // Rejoin and compare word sequences (hard-broken words re-fuse
      // because breaks only happen inside a word when it exceeds width,
      // and such fragments concatenate in order).
      std::string rejoined;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (!rejoined.empty() && !lines[i].empty()) {
          bool prev_full =
              lines[i - 1].size() == width;  // Possible hard break.
          rejoined += prev_full ? "" : " ";
        }
        rejoined += lines[i];
      }
      auto words_of = [](std::string_view s) {
        std::vector<std::string> words;
        std::string w;
        for (char c : s) {
          if (c == ' ') {
            if (!w.empty()) words.push_back(std::move(w));
            w.clear();
          } else {
            w.push_back(c);
          }
        }
        if (!w.empty()) words.push_back(std::move(w));
        return words;
      };
      // Count total non-space characters (robust to hard-break fusing).
      auto chars_of = [&](std::string_view s) {
        size_t n = 0;
        for (char c : s) {
          n += (c != ' ');
        }
        return n;
      };
      EXPECT_EQ(chars_of(rejoined), chars_of(title))
          << title << " @" << width;
      // Word count never shrinks below the original when no hard breaks
      // occurred (every line shorter than width).
      bool any_full = false;
      for (const auto& line : lines) {
        any_full |= line.size() == width;
      }
      if (!any_full) {
        EXPECT_EQ(words_of(rejoined), words_of(title));
      }
    }
  }
}

}  // namespace
}  // namespace authidx
