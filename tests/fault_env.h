#ifndef AUTHIDX_TESTS_FAULT_ENV_H_
#define AUTHIDX_TESTS_FAULT_ENV_H_

// Systematic fault-injection Env for storage robustness tests (see
// docs/ROBUSTNESS.md).
//
// FaultEnv decorates a real Env and counts every write-path operation
// the engine issues — file creation, append, flush, sync, close, atomic
// replace, remove, rename, mkdir — in one global sequence. A *fault
// plan* then picks which of those ops fail:
//
//   FailFrom(k)              op k and everything after it fails (a disk
//                            that dies and stays dead — the model the
//                            crash-consistency sweep uses)
//   FailAllFromNow()         FailFrom(current op index)
//   FailOnceAt(k)            only op k fails (a transient blip; the
//                            engine's retry should absorb it)
//   FailWithProbability(p,s) each op independently fails with
//                            probability p (deterministic for seed s)
//   StopFailing()            clears the plan, keeps the counters
//
// With set_torn_writes(true), a failing Append writes a prefix of the
// data to the underlying file — flushed and synced, like a device that
// tore the final sector — before reporting the error. A failing
// WriteStringToFileSync never touches the destination, matching the
// temp-file+rename implementation it stands in for.
//
// Read-path operations always pass through: the harness tests write
// durability and the read-only degradation contract, so reads must keep
// working while writes fail.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/random.h"

namespace authidx::tests {

class FaultEnv final : public Env {
 public:
  explicit FaultEnv(Env* base = nullptr)
      : base_(base != nullptr ? base : Env::Default()) {}

  // --- fault plan ---
  // All plan state is guarded by one mutex: the engine's background
  // thread and foreground writers consult the plan concurrently, and the
  // op counter must stay a single global sequence.
  void FailFrom(uint64_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kFailFrom;
    target_ = k;
  }
  void FailAllFromNow() {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kFailFrom;
    target_ = write_ops_;
  }
  void FailOnceAt(uint64_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kFailOnce;
    target_ = k;
  }
  void FailWithProbability(double p, uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kProbabilistic;
    probability_ = p;
    rng_ = Random(seed);
  }
  void StopFailing() {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = Mode::kNone;
    fail_removes_ = false;
  }
  void set_torn_writes(bool torn) {
    std::lock_guard<std::mutex> lock(mu_);
    torn_writes_ = torn;
  }
  /// Orthogonal to the plan: every RemoveFile fails (tests best-effort
  /// GC in isolation while all other ops keep succeeding).
  void set_fail_removes(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_removes_ = fail;
  }

  /// Write-path ops observed so far (the index space FailFrom/FailOnceAt
  /// select from).
  uint64_t write_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return write_ops_;
  }
  /// Ops that were made to fail.
  uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_;
  }

  // --- Env ---
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    if (NextOpFails()) {
      return Status::IOError("injected open failure: " + path);
    }
    AUTHIDX_ASSIGN_OR_RETURN(auto base, base_->NewWritableFile(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultyWritableFile>(std::move(base), this));
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return base_->NewRandomAccessFile(path);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status WriteStringToFileSync(const std::string& path,
                               std::string_view data) override {
    if (NextOpFails()) {
      // The real implementation is temp-file + sync + rename, so a torn
      // write tears the temp file and the destination stays intact.
      return Status::IOError("injected atomic-write failure: " + path);
    }
    return base_->WriteStringToFileSync(path, data);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status RemoveFile(const std::string& path) override {
    bool planned = NextOpFails();
    bool forced = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      forced = fail_removes_;
      if (!planned && forced) {
        ++faults_;
      }
    }
    if (planned || forced) {
      return Status::IOError("injected remove failure: " + path);
    }
    return base_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    if (NextOpFails()) {
      return Status::IOError("injected rename failure: " + from);
    }
    return base_->RenameFile(from, to);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    if (NextOpFails()) {
      return Status::IOError("injected mkdir failure: " + dir);
    }
    return base_->CreateDirIfMissing(dir);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }

 private:
  enum class Mode { kNone, kFailFrom, kFailOnce, kProbabilistic };

  class FaultyWritableFile final : public WritableFile {
   public:
    FaultyWritableFile(std::unique_ptr<WritableFile> base, FaultEnv* env)
        : base_(std::move(base)), env_(env) {}

    Status Append(std::string_view data) override {
      if (env_->NextOpFails()) {
        if (env_->torn_writes() && !data.empty()) {
          // Half the payload reaches the platter before the device
          // dies; recovery must detect and discard the torn record.
          base_->Append(data.substr(0, data.size() / 2)).IgnoreError();
          base_->Flush().IgnoreError();
          base_->Sync().IgnoreError();
        }
        return Status::IOError("injected append failure");
      }
      return base_->Append(data);
    }
    Status Flush() override {
      if (env_->NextOpFails()) {
        return Status::IOError("injected flush failure");
      }
      return base_->Flush();
    }
    Status Sync() override {
      if (env_->NextOpFails()) {
        return Status::IOError("injected sync failure");
      }
      return base_->Sync();
    }
    Status Close() override {
      if (env_->NextOpFails()) {
        // Still close the descriptor: a failed close leaks nothing, it
        // just reports that buffered bytes may not have made it.
        base_->Close().IgnoreError();
        return Status::IOError("injected close failure");
      }
      return base_->Close();
    }

   private:
    std::unique_ptr<WritableFile> base_;
    FaultEnv* env_;
  };

  bool torn_writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return torn_writes_;
  }

  // One global decision point: assigns the op its index and consults
  // the plan.
  bool NextOpFails() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = write_ops_++;
    bool fail = false;
    switch (mode_) {
      case Mode::kNone:
        break;
      case Mode::kFailFrom:
        fail = index >= target_;
        break;
      case Mode::kFailOnce:
        fail = index == target_;
        break;
      case Mode::kProbabilistic:
        fail = rng_.NextDouble() < probability_;
        break;
    }
    if (fail) {
      ++faults_;
    }
    return fail;
  }

  Env* base_;
  mutable std::mutex mu_;
  Mode mode_ = Mode::kNone;
  uint64_t target_ = 0;
  double probability_ = 0.0;
  Random rng_{0};
  bool torn_writes_ = false;
  bool fail_removes_ = false;
  uint64_t write_ops_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace authidx::tests

#endif  // AUTHIDX_TESTS_FAULT_ENV_H_
