#include "authidx/storage/iterator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace authidx::storage {
namespace {

// Simple in-memory iterator over a sorted vector, for driving the
// merging iterator in isolation.
class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(
      std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)) {}

  bool Valid() const override { return pos_ < data_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    pos_ = 0;
    while (pos_ < data_.size() && data_[pos_].first < target) {
      ++pos_;
    }
  }
  void Next() override { ++pos_; }
  std::string_view key() const override { return data_[pos_].first; }
  std::string_view value() const override { return data_[pos_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t pos_ = 0;
};

std::unique_ptr<Iterator> Vec(
    std::vector<std::pair<std::string, std::string>> data) {
  return std::make_unique<VectorIterator>(std::move(data));
}

std::vector<std::pair<std::string, std::string>> Drain(Iterator* it) {
  std::vector<std::pair<std::string, std::string>> out;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  return out;
}

TEST(MergingIteratorTest, InterleavedStreams) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({{"a", "1"}, {"c", "3"}, {"e", "5"}}));
  children.push_back(Vec({{"b", "2"}, {"d", "4"}}));
  auto merged = NewMergingIterator(std::move(children));
  EXPECT_EQ(Drain(merged.get()),
            (std::vector<std::pair<std::string, std::string>>{
                {"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}}));
  EXPECT_TRUE(merged->status().ok());
}

TEST(MergingIteratorTest, EarlierChildWinsOnDuplicates) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({{"k", "newest"}, {"z", "n"}}));
  children.push_back(Vec({{"k", "middle"}, {"m", "m"}}));
  children.push_back(Vec({{"a", "o"}, {"k", "oldest"}}));
  auto merged = NewMergingIterator(std::move(children));
  auto out = Drain(merged.get());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], std::make_pair(std::string("a"), std::string("o")));
  EXPECT_EQ(out[1], std::make_pair(std::string("k"), std::string("newest")));
  EXPECT_EQ(out[2], std::make_pair(std::string("m"), std::string("m")));
  EXPECT_EQ(out[3], std::make_pair(std::string("z"), std::string("n")));
}

TEST(MergingIteratorTest, DuplicateInAllChildrenEmittedOnce) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({{"x", "1"}}));
  children.push_back(Vec({{"x", "2"}}));
  children.push_back(Vec({{"x", "3"}}));
  auto merged = NewMergingIterator(std::move(children));
  auto out = Drain(merged.get());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "1");
}

TEST(MergingIteratorTest, EmptyChildrenAndEmptySet) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({}));
  children.push_back(Vec({{"only", "v"}}));
  children.push_back(Vec({}));
  auto merged = NewMergingIterator(std::move(children));
  auto out = Drain(merged.get());
  ASSERT_EQ(out.size(), 1u);

  auto empty = NewMergingIterator({});
  empty->SeekToFirst();
  EXPECT_FALSE(empty->Valid());
}

TEST(MergingIteratorTest, SeekLandsOnMergeOrder) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({{"b", "1"}, {"f", "1"}}));
  children.push_back(Vec({{"d", "2"}, {"f", "2"}, {"h", "2"}}));
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek("c");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "d");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "f");
  EXPECT_EQ(merged->value(), "1");  // First child wins.
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), "h");
  merged->Next();
  EXPECT_FALSE(merged->Valid());
  merged->Seek("zzz");
  EXPECT_FALSE(merged->Valid());
}

TEST(ErrorIteratorTest, CarriesStatusAndStaysInvalid) {
  auto it = NewErrorIterator(Status::Corruption("broken table"));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("k");
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().IsCorruption());
  EXPECT_EQ(it->status().message(), "broken table");
}

TEST(MergingIteratorTest, ErrorChildPropagatesStatus) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(Vec({{"a", "1"}}));
  children.push_back(NewErrorIterator(Status::IOError("disk gone")));
  auto merged = NewMergingIterator(std::move(children));
  auto out = Drain(merged.get());  // Healthy child still drains.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(merged->status().IsIOError());
}

}  // namespace
}  // namespace authidx::storage
