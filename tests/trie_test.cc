#include "authidx/index/trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"

namespace authidx {
namespace {

TEST(TrieTest, EmptyTrie) {
  Trie trie;
  uint64_t value = 0;
  EXPECT_FALSE(trie.Get("x", &value));
  EXPECT_TRUE(trie.PrefixScan("", 10).empty());
  EXPECT_EQ(trie.CountPrefix(""), 0u);
  EXPECT_EQ(trie.size(), 0u);
}

TEST(TrieTest, InsertGetOverwrite) {
  Trie trie;
  trie.Insert("mcginley", 1);
  trie.Insert("mcgraw", 2);
  trie.Insert("mcginley", 7);  // Overwrite.
  EXPECT_EQ(trie.size(), 2u);
  uint64_t value = 0;
  ASSERT_TRUE(trie.Get("mcginley", &value));
  EXPECT_EQ(value, 7u);
  ASSERT_TRUE(trie.Get("mcgraw", &value));
  EXPECT_EQ(value, 2u);
  EXPECT_FALSE(trie.Get("mcg", &value));  // Interior node, no value.
  EXPECT_FALSE(trie.Get("mcginleyx", &value));
}

TEST(TrieTest, EmptyKeyIsAllowed) {
  Trie trie;
  trie.Insert("", 42);
  uint64_t value = 0;
  ASSERT_TRUE(trie.Get("", &value));
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(trie.CountPrefix(""), 1u);
}

TEST(TrieTest, PrefixScanLexicographicOrder) {
  Trie trie;
  trie.Insert("mcateer", 1);
  trie.Insert("mcginley", 2);
  trie.Insert("mcgraw", 3);
  trie.Insert("mclaughlin", 4);
  trie.Insert("means", 5);
  auto hits = trie.PrefixScan("mc", 100);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].first, "mcateer");
  EXPECT_EQ(hits[1].first, "mcginley");
  EXPECT_EQ(hits[2].first, "mcgraw");
  EXPECT_EQ(hits[3].first, "mclaughlin");
  // A key that is itself a prefix of others appears first.
  trie.Insert("mc", 0);
  hits = trie.PrefixScan("mc", 100);
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].first, "mc");
}

TEST(TrieTest, PrefixScanLimit) {
  Trie trie;
  for (int i = 0; i < 100; ++i) {
    trie.Insert(StringPrintf("key%03d", i), static_cast<uint64_t>(i));
  }
  auto hits = trie.PrefixScan("key", 7);
  ASSERT_EQ(hits.size(), 7u);
  EXPECT_EQ(hits[0].first, "key000");
  EXPECT_EQ(hits[6].first, "key006");
}

TEST(TrieTest, CountPrefix) {
  Trie trie;
  trie.Insert("abc", 1);
  trie.Insert("abd", 2);
  trie.Insert("ab", 3);
  trie.Insert("b", 4);
  EXPECT_EQ(trie.CountPrefix("ab"), 3u);
  EXPECT_EQ(trie.CountPrefix("abc"), 1u);
  EXPECT_EQ(trie.CountPrefix(""), 4u);
  EXPECT_EQ(trie.CountPrefix("z"), 0u);
}

TEST(TrieTest, BinaryKeysFullByteAlphabet) {
  Trie trie;
  std::string k1("\x00\x01", 2), k2("\x00\xff", 2), k3("\xff", 1);
  trie.Insert(k1, 1);
  trie.Insert(k2, 2);
  trie.Insert(k3, 3);
  uint64_t value = 0;
  EXPECT_TRUE(trie.Get(k1, &value));
  EXPECT_TRUE(trie.Get(k2, &value));
  auto hits = trie.PrefixScan(std::string("\x00", 1), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, k1);  // 0x01 < 0xff as unsigned bytes.
  EXPECT_EQ(hits[1].first, k2);
}

// Model test against std::map (which is also lexicographic on bytes).
class TrieModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieModelTest, AgreesWithStdMap) {
  Random rng(GetParam());
  Trie trie;
  std::map<std::string, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    std::string key;
    for (size_t j = rng.Uniform(10); j > 0; --j) {
      key += static_cast<char>('a' + rng.Uniform(6));
    }
    uint64_t value = rng.Next64();
    trie.Insert(key, value);
    model[key] = value;
  }
  ASSERT_EQ(trie.size(), model.size());
  for (const auto& [key, value] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(trie.Get(key, &got)) << key;
    ASSERT_EQ(got, value) << key;
  }
  // Prefix scans agree with model range scans.
  for (const char* prefix : {"", "a", "ab", "abc", "ba", "fff"}) {
    auto hits = trie.PrefixScan(prefix, SIZE_MAX);
    std::vector<std::pair<std::string, uint64_t>> expected;
    for (auto it = model.lower_bound(prefix); it != model.end(); ++it) {
      if (it->first.compare(0, strlen(prefix), prefix) != 0) {
        break;
      }
      expected.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(hits, expected) << "prefix '" << prefix << "'";
    ASSERT_EQ(trie.CountPrefix(prefix), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieModelTest,
                         ::testing::Values(11, 22, 33));

// Regression: growing a node's child arrays from capacity 0 used to
// memcpy from the null labels/kids pointers — UB flagged by UBSan's
// nonnull checks. Exercises first-child growth at the root and at
// interior nodes, plus the 2->4 capacity doubling.
TEST(TrieTest, ChildArrayGrowthFromEmptyNode) {
  Trie trie;
  trie.Insert("a", 1);        // Root grows 0 -> 2.
  trie.Insert("ab", 2);       // Node 'a' grows 0 -> 2.
  trie.Insert("ac", 3);
  trie.Insert("ad", 4);       // Node 'a' doubles 2 -> 4.
  trie.Insert("ae", 5);
  uint64_t v = 0;
  EXPECT_TRUE(trie.Get("a", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(trie.Get("ae", &v));
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(trie.size(), 5u);
}

}  // namespace
}  // namespace authidx
