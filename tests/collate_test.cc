#include "authidx/text/collate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "authidx/common/random.h"

namespace authidx::text {
namespace {

// Sorting with precomputed keys must equal sorting with Compare.
std::vector<std::string> SortByKeys(std::vector<std::string> names) {
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return MakeSortKey(a) < MakeSortKey(b);
            });
  return names;
}

TEST(CollateTest, CaseInsensitivePrimary) {
  EXPECT_LT(Compare("abrams", "ZIMAROWSKI"), 0);
  EXPECT_LT(Compare("Abrams", "abramson"), 0);
  // Same letters different case: not equal (tiebreak on raw bytes) but
  // adjacent in order.
  EXPECT_NE(Compare("Smith", "smith"), 0);
}

TEST(CollateTest, AccentInsensitivePrimary) {
  // Ábrams sorts with abrams, not after 'z'.
  EXPECT_LT(Compare("Ábrams", "Baker"), 0);
  EXPECT_LT(Compare("Abramovsky", "Ábrams"), 0);
}

TEST(CollateTest, PunctuationIgnoredAtPrimaryLevel) {
  // O'Brien ~ OBrien: differ only in tiebreak.
  EXPECT_LT(Compare("O'Brien", "Ochoa"), 0);
  EXPECT_LT(Compare("Oakes", "O'Brien"), 0);
  // Hyphenated surname.
  EXPECT_LT(Compare("Bates-Smith, Pamela", "Batey, Robert"), 0);
}

TEST(CollateTest, NumbersCompareNumerically) {
  EXPECT_LT(Compare("Vol 9", "Vol 12"), 0);
  EXPECT_LT(Compare("Vol 12", "Vol 101"), 0);
  EXPECT_LT(Compare("item2", "item10"), 0);
  // Leading zeros do not matter at the primary level.
  EXPECT_LT(Compare("item007", "item8"), 0);
}

TEST(CollateTest, TotalOrderOverDistinctStrings) {
  EXPECT_EQ(Compare("same", "same"), 0);
  EXPECT_NE(Compare("a-b", "ab"), 0);  // Distinct inputs never tie.
  int ab = Compare("a-b", "ab");
  int ba = Compare("ab", "a-b");
  EXPECT_EQ(ab, -ba);  // Antisymmetry.
}

TEST(CollateTest, KeysOrderLikeThePrintedIndex) {
  // Names in the order they appear in the source document.
  std::vector<std::string> printed = {
      "Abdalla, Tarek F.",   "Abramovsky, Deborah", "Abrams, Dennis M.",
      "Adams, Alayne B.",    "Adler, Mortimer J.",  "Albert, Michael C.",
      "Allen, Michael C.",   "Ameri, Samuel J.",    "Anderson, John M.",
      "Arceneaux, Webster J., III",                 "Archer, Debra G.",
      "Archibald, Ellen R.", "Areen, Judith",       "Artimez, Linda R.",
      "Ashdown, Gerald G.",  "Ashe, Marie",         "Atkinson, Stephen L.",
      "Ausness, Richard C.", "Auvil, Walt",         "Avis, Hugh C.",
  };
  std::vector<std::string> shuffled = printed;
  Random rng(5);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  EXPECT_EQ(SortByKeys(shuffled), printed);
}

TEST(CollateTest, McNamesSortByLiteralLetters) {
  // Like the source: MacLeod < Madden < ... < McAteer (letter-by-letter,
  // no Mc/Mac equivalence).
  std::vector<std::string> printed = {"MacLeod, John", "Madden, M. Stuart",
                                      "Malley, Wallace", "McAteer, J. Davitt",
                                      "McGinley, Patrick C."};
  std::vector<std::string> shuffled = {printed[3], printed[0], printed[4],
                                       printed[2], printed[1]};
  EXPECT_EQ(SortByKeys(shuffled), printed);
}

TEST(CollateTest, CompareConsistentWithMakeSortKey) {
  Random rng(99);
  const char* pool[] = {"Abrams", "abrams", "Ábrams", "O'Brien", "OBrien",
                        "Vol 9",  "Vol 12", "a-b",    "ab",      ""};
  for (const char* a : pool) {
    for (const char* b : pool) {
      int direct = Compare(a, b);
      int via_keys = MakeSortKey(a).compare(MakeSortKey(b));
      via_keys = via_keys < 0 ? -1 : (via_keys > 0 ? 1 : 0);
      EXPECT_EQ(direct, via_keys) << a << " vs " << b;
    }
  }
  (void)rng;
}

// Property: the key order is a strict weak ordering; sorting random
// strings by keys is stable w.r.t. repeated sorting and agrees with
// Compare pairwise.
class CollatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollatePropertyTest, PairwiseAgreement) {
  Random rng(GetParam());
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    size_t len = rng.Uniform(12);
    for (size_t j = 0; j < len; ++j) {
      const char alphabet[] =
          "abcXYZ 0123456789-'.,";
      s += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    names.push_back(std::move(s));
  }
  std::vector<std::string> sorted = SortByKeys(names);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(Compare(sorted[i - 1], sorted[i]), 0)
        << "'" << sorted[i - 1] << "' > '" << sorted[i] << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollatePropertyTest,
                         ::testing::Values(1, 22, 333, 4444));

}  // namespace
}  // namespace authidx::text
