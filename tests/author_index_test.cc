#include "authidx/core/author_index.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "authidx/text/collate.h"
#include "authidx/workload/corpus.h"
#include "authidx/workload/sample_data.h"

namespace authidx::core {
namespace {

TEST(AuthorIndexTest, AddAssignsDenseIds) {
  auto catalog = AuthorIndex::Create();
  Entry entry;
  entry.author = {"Minow", "Martha", "", false};
  entry.title = "All in the Family";
  entry.citation = {95, 275, 1992};
  auto id0 = catalog->Add(entry);
  ASSERT_TRUE(id0.ok());
  EXPECT_EQ(*id0, 0u);
  entry.title = "Second Article";
  auto id1 = catalog->Add(entry);
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(catalog->entry_count(), 2u);
  EXPECT_EQ(catalog->group_count(), 1u);  // Same person.
  EXPECT_EQ(catalog->GetEntry(0)->title, "All in the Family");
  EXPECT_EQ(catalog->GetEntry(99), nullptr);
}

TEST(AuthorIndexTest, InvalidEntryRejected) {
  auto catalog = AuthorIndex::Create();
  Entry bad;
  bad.title = "No author";
  bad.citation = {1, 1, 1990};
  EXPECT_TRUE(catalog->Add(bad).status().IsInvalidArgument());
  EXPECT_EQ(catalog->entry_count(), 0u);
}

TEST(AuthorIndexTest, GroupsInOrderMatchesPrintedIndex) {
  auto entries = workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok());
  auto catalog = AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto groups = catalog->GroupsInOrder();
  ASSERT_FALSE(groups.empty());
  // First group of the sample is Abdalla, last is Zlotnick.
  EXPECT_EQ(groups.front().display.substr(0, 7), "Abdalla");
  EXPECT_EQ(groups.back().display.substr(0, 8), "Zlotnick");
  // Display keys ascend in collation order.
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_LT(text::Compare(groups[i - 1].display, groups[i].display), 0)
        << groups[i - 1].display << " !< " << groups[i].display;
  }
  // Multi-entry groups list citations in (volume, page) order.
  for (const auto& group : groups) {
    for (size_t i = 1; i < group.entries.size(); ++i) {
      const Citation& a = catalog->GetEntry(group.entries[i - 1])->citation;
      const Citation& b = catalog->GetEntry(group.entries[i])->citation;
      EXPECT_LE(std::make_pair(a.volume, a.page),
                std::make_pair(b.volume, b.page));
    }
  }
}

TEST(AuthorIndexTest, StudentNoteAndArticleGroupTogether) {
  auto catalog = AuthorIndex::Create();
  Entry note;
  note.author = {"Barrett", "Joshua I.", "", true};
  note.title = "Citizen Participation in the Regulation of Surface Mining";
  note.citation = {81, 675, 1979};
  Entry article;
  article.author = {"Barrett", "Joshua I.", "", false};
  article.title = "Longwall Mining and SMCRA";
  article.citation = {94, 693, 1992};
  ASSERT_TRUE(catalog->AddAll({note, article}).ok());
  EXPECT_EQ(catalog->group_count(), 1u);
  auto groups = catalog->GroupsInOrder();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].entries.size(), 2u);
}

TEST(AuthorIndexTest, CoauthorsOf) {
  auto entries = workload::LoadSampleEntries();
  ASSERT_TRUE(entries.ok());
  auto catalog = AuthorIndex::Create();
  ASSERT_TRUE(catalog->AddAll(std::move(entries).value()).ok());
  auto coauthors = catalog->CoauthorsOf("ameri, samuel j.");
  ASSERT_EQ(coauthors.size(), 3u);  // Lewin, Peng, Sirwandane.
  EXPECT_EQ(coauthors[0].substr(0, 5), "Lewin");
  EXPECT_TRUE(catalog->CoauthorsOf("nonexistent").empty());
}

TEST(AuthorIndexTest, SortKeyStableAndOrdered) {
  auto catalog = AuthorIndex::Create();
  Entry a;
  a.author = {"Zimarowski", "James B.", "", false};
  a.title = "T1";
  a.citation = {90, 387, 1987};
  Entry b;
  b.author = {"Abrams", "Dennis M.", "", false};
  b.title = "T2";
  b.citation = {82, 1241, 1980};
  ASSERT_TRUE(catalog->AddAll({a, b}).ok());
  EXPECT_GT(catalog->SortKey(0), catalog->SortKey(1));
  EXPECT_EQ(catalog->SortKey(12345), "");
}

TEST(AuthorIndexPersistenceTest, ReopenRebuildsEverything) {
  std::string dir = ::testing::TempDir() + "/authoridx_persist";
  std::filesystem::remove_all(dir);
  workload::CorpusOptions copt;
  copt.entries = 500;
  copt.authors = 120;
  std::vector<Entry> entries = workload::GenerateCorpus(copt);
  std::vector<AuthorIndex::Group> groups_before;
  {
    auto catalog = AuthorIndex::OpenPersistent(dir);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    ASSERT_TRUE((*catalog)->AddAll(entries).ok());
    groups_before = (*catalog)->GroupsInOrder();
    ASSERT_TRUE((*catalog)->Flush().ok());
  }
  {
    auto catalog = AuthorIndex::OpenPersistent(dir);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    EXPECT_EQ((*catalog)->entry_count(), entries.size());
    // Identical group structure after recovery.
    auto groups_after = (*catalog)->GroupsInOrder();
    ASSERT_EQ(groups_after.size(), groups_before.size());
    for (size_t i = 0; i < groups_after.size(); ++i) {
      EXPECT_EQ(groups_after[i].display, groups_before[i].display);
      EXPECT_EQ(groups_after[i].entries, groups_before[i].entries);
    }
    // Entries byte-identical.
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(*(*catalog)->GetEntry(static_cast<EntryId>(i)), entries[i]);
    }
    // Queries work over the recovered catalog.
    auto result = (*catalog)->Search("author:mc* limit:1000");
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->total_matches, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(AuthorIndexPersistenceTest, RecoveryFromWalWithoutFlush) {
  std::string dir = ::testing::TempDir() + "/authoridx_wal";
  std::filesystem::remove_all(dir);
  Entry entry;
  entry.author = {"Cox", "Archibald", "", false};
  entry.title = "Ethics in Government";
  entry.citation = {94, 281, 1991};
  {
    storage::EngineOptions options;
    options.sync_writes = true;
    auto catalog = AuthorIndex::OpenPersistent(dir, options);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE((*catalog)->Add(entry).ok());
    // No Flush: destructor Close() flushes, but a crash before that is
    // covered by engine_test; here we check the normal close path.
  }
  auto catalog = AuthorIndex::OpenPersistent(dir);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_EQ((*catalog)->entry_count(), 1u);
  EXPECT_EQ(*(*catalog)->GetEntry(0), entry);
  std::filesystem::remove_all(dir);
}

TEST(AuthorIndexTest, StorageStatsEmptyForInMemory) {
  auto catalog = AuthorIndex::Create();
  EXPECT_EQ(catalog->StorageStats().puts, 0u);
  EXPECT_TRUE(catalog->Flush().ok());
  EXPECT_TRUE(catalog->CompactStorage().ok());
}

}  // namespace
}  // namespace authidx::core
