#include <gtest/gtest.h>

#include "authidx/model/record.h"
#include "authidx/model/serde.h"

namespace authidx {
namespace {

Entry MakeEntry() {
  Entry entry;
  entry.author = {"Arceneaux", "Webster J.", "III", false};
  entry.title =
      "Potential Criminal Liability in the Coal Fields Under the Clean "
      "Water Act: A Defense Perspective";
  entry.citation = {95, 691, 1993};
  entry.coauthors = {"Scott, Philip B.", "Bryant, S. Benjamin"};
  return entry;
}

TEST(RecordTest, ToIndexFormRendering) {
  AuthorName plain{"Minow", "Martha", "", false};
  EXPECT_EQ(plain.ToIndexForm(), "Minow, Martha");
  AuthorName student{"Abdalla", "Tarek F.", "", true};
  EXPECT_EQ(student.ToIndexForm(), "Abdalla, Tarek F.*");
  AuthorName suffixed{"Arceneaux", "Webster J.", "III", false};
  EXPECT_EQ(suffixed.ToIndexForm(), "Arceneaux, Webster J., III");
  AuthorName surname_only{"Cox", "", "", false};
  EXPECT_EQ(surname_only.ToIndexForm(), "Cox");
}

TEST(RecordTest, ReadingFormAndGroupKey) {
  AuthorName name{"Bean", "Ralph J.", "Jr.", true};
  EXPECT_EQ(name.ToReadingForm(), "Ralph J. Bean, Jr.");
  // Group key excludes the student marker so one person groups together.
  AuthorName note = name;
  note.student_material = false;
  EXPECT_EQ(name.GroupKey(), note.GroupKey());
}

TEST(RecordTest, CitationToString) {
  EXPECT_EQ((Citation{95, 691, 1993}).ToString(), "95:691 (1993)");
  EXPECT_EQ((Citation{69, 1, 1966}).ToString(), "69:1 (1966)");
}

TEST(ValidateTest, AcceptsGoodEntry) {
  EXPECT_TRUE(ValidateEntry(MakeEntry()).ok());
}

TEST(ValidateTest, RejectsBadFields) {
  Entry e = MakeEntry();
  e.author.surname.clear();
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());

  e = MakeEntry();
  e.title.clear();
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());

  e = MakeEntry();
  e.citation.volume = 0;
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());

  e = MakeEntry();
  e.citation.page = 0;
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());

  e = MakeEntry();
  e.citation.year = 1200;
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());

  e = MakeEntry();
  e.citation.year = 3000;
  EXPECT_TRUE(ValidateEntry(e).IsInvalidArgument());
}

TEST(SerdeTest, RoundTripFull) {
  Entry entry = MakeEntry();
  std::string encoded = EncodeEntryToString(entry);
  Result<Entry> decoded = DecodeEntryExact(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, entry);
}

TEST(SerdeTest, RoundTripMinimalAndStudent) {
  Entry entry;
  entry.author = {"Cox", "", "", true};
  entry.title = "T";
  entry.citation = {94, 281, 1991};
  Result<Entry> decoded = DecodeEntryExact(EncodeEntryToString(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entry);
  EXPECT_TRUE(decoded->author.student_material);
}

TEST(SerdeTest, StreamOfEntriesDecodesSequentially) {
  Entry a = MakeEntry();
  Entry b = MakeEntry();
  b.author.surname = "Bailey";
  b.coauthors.clear();
  std::string buf;
  EncodeEntry(a, &buf);
  EncodeEntry(b, &buf);
  std::string_view input = buf;
  Result<Entry> first = DecodeEntry(&input);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, a);
  Result<Entry> second = DecodeEntry(&input);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, b);
  EXPECT_TRUE(input.empty());
}

TEST(SerdeTest, TruncationAtEveryPointIsCorruption) {
  std::string encoded = EncodeEntryToString(MakeEntry());
  for (size_t len = 0; len < encoded.size(); ++len) {
    Result<Entry> decoded =
        DecodeEntryExact(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "accepted truncation at " << len;
  }
}

TEST(SerdeTest, TrailingBytesRejectedByExact) {
  std::string encoded = EncodeEntryToString(MakeEntry());
  encoded += "junk";
  EXPECT_TRUE(DecodeEntryExact(encoded).status().IsCorruption());
}

TEST(SerdeTest, UnknownVersionRejected) {
  std::string encoded = EncodeEntryToString(MakeEntry());
  encoded[0] = 9;  // Version byte is first (small varint).
  EXPECT_TRUE(DecodeEntryExact(encoded).status().IsCorruption());
}

TEST(SerdeTest, BinarySafeTitle) {
  Entry entry = MakeEntry();
  entry.title = std::string("bin\0ary\xff title", 15);
  Result<Entry> decoded = DecodeEntryExact(EncodeEntryToString(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->title, entry.title);
}

}  // namespace
}  // namespace authidx
