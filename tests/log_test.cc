#include "authidx/obs/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "authidx/storage/engine.h"

// Global allocation counter, same pattern as metrics_test.cc: the
// no-allocation tests snapshot it around Log() calls to prove the
// formatting path never touches the heap.
namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

// noinline: when GCC inlines replaced global operators it pairs the
// caller's new with the inlined free() and emits a spurious
// -Wmismatched-new-delete.
[[gnu::noinline]] void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

[[gnu::noinline]] void operator delete(void* ptr) noexcept { std::free(ptr); }
[[gnu::noinline]] void operator delete(void* ptr, std::size_t) noexcept {
  std::free(ptr);
}

namespace authidx::obs {
namespace {

// Sink that discards lines without allocating; lets the no-alloc tests
// exercise the full format-and-dispatch path.
class NullSink final : public LogSink {
 public:
  void Write(LogLevel, std::string_view) override { ++writes; }
  uint64_t writes = 0;
};

TEST(LogLevelTest, RoundTripNames) {
  EXPECT_EQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelToString(LogLevel::kWarn), "WARN");
  EXPECT_EQ(LogLevelToString(LogLevel::kError), "ERROR");
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kError);  // Untouched on failure.
}

TEST(LoggerTest, FormatsStructuredFields) {
  Logger logger(LogLevel::kDebug);
  auto sink = std::make_unique<VectorSink>();
  VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  logger.Log(LogLevel::kInfo, "flush",
             {{"table", uint64_t{7}},
              {"signed", int64_t{-3}},
              {"text", "with space"},
              {"bare", "plain"},
              {"ok", true},
              {"ratio", 0.25}});
  ASSERT_EQ(lines->lines().size(), 1u);
  const std::string& line = lines->lines()[0];
  EXPECT_NE(line.find(" level=INFO event=flush"), std::string::npos) << line;
  EXPECT_NE(line.find(" table=7"), std::string::npos) << line;
  EXPECT_NE(line.find(" signed=-3"), std::string::npos) << line;
  EXPECT_NE(line.find(" text=\"with space\""), std::string::npos) << line;
  EXPECT_NE(line.find(" bare=plain"), std::string::npos) << line;
  EXPECT_NE(line.find(" ok=true"), std::string::npos) << line;
  EXPECT_NE(line.find(" ratio=0.25"), std::string::npos) << line;
  // ISO-8601 UTC timestamp prefix: ts=YYYY-MM-DDTHH:MM:SS.mmmZ
  EXPECT_EQ(line.rfind("ts=20", 0), 0u) << line;
  EXPECT_NE(line.find('T'), std::string::npos) << line;
  EXPECT_NE(line.find('Z'), std::string::npos) << line;
}

TEST(LoggerTest, EscapesQuotesAndControlBytes) {
  Logger logger;
  auto sink = std::make_unique<VectorSink>();
  VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  logger.Log(LogLevel::kInfo, "q", {{"v", "say \"hi\"\n"}});
  ASSERT_EQ(lines->lines().size(), 1u);
  EXPECT_NE(lines->lines()[0].find("v=\"say \\\"hi\\\"\\x0a\""),
            std::string::npos)
      << lines->lines()[0];
}

TEST(LoggerTest, MinLevelFiltersAndIsAdjustable) {
  Logger logger(LogLevel::kWarn);
  auto sink = std::make_unique<VectorSink>();
  VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  logger.Log(LogLevel::kInfo, "dropped", {});
  logger.Log(LogLevel::kWarn, "kept", {});
  EXPECT_EQ(lines->lines().size(), 1u);
  logger.set_min_level(LogLevel::kDebug);
  EXPECT_EQ(logger.min_level(), LogLevel::kDebug);
  logger.Log(LogLevel::kDebug, "now kept", {});
  EXPECT_EQ(lines->lines().size(), 2u);
}

TEST(LoggerTest, NoSinksMeansDisabled) {
  Logger logger(LogLevel::kDebug);
  EXPECT_FALSE(logger.Enabled(LogLevel::kError));
  EXPECT_FALSE(Logger::Disabled()->Enabled(LogLevel::kError));
  // Safe no-op.
  Logger::Disabled()->Log(LogLevel::kError, "dropped", {{"k", 1}});
  EXPECT_EQ(Logger::Disabled()->error_count(), 0u);
}

TEST(LoggerTest, TracksErrorCountAndLastError) {
  Logger logger;
  auto sink = std::make_unique<VectorSink>();
  logger.AddSink(std::move(sink));
  EXPECT_EQ(logger.error_count(), 0u);
  EXPECT_EQ(logger.last_error(), "");
  logger.Log(LogLevel::kError, "boom", {{"file", uint64_t{3}}});
  logger.Log(LogLevel::kInfo, "fine", {});
  EXPECT_EQ(logger.error_count(), 1u);
  EXPECT_NE(logger.last_error().find("event=boom"), std::string::npos);
  EXPECT_NE(logger.last_error().find("file=3"), std::string::npos);
}

TEST(LoggerTest, TruncatesOverlongLinesVisibly) {
  Logger logger;
  auto sink = std::make_unique<VectorSink>();
  VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  std::string big(5000, 'x');
  logger.Log(LogLevel::kInfo, "big", {{"payload", big}});
  ASSERT_EQ(lines->lines().size(), 1u);
  EXPECT_LE(lines->lines()[0].size(), 1024u);
  EXPECT_EQ(lines->lines()[0].substr(lines->lines()[0].size() - 3), "...");
}

TEST(LoggerTest, DisabledLevelDoesNotAllocate) {
  Logger logger(LogLevel::kInfo);
  NullSink sink;
  logger.AddBorrowedSink(&sink);
  std::string value = "some value";
  logger.Log(LogLevel::kDebug, "warm", {{"k", value}});
  uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    logger.Log(LogLevel::kDebug, "dropped",
               {{"k", value}, {"i", i}, {"b", true}});
  }
  uint64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled log level allocated";
  EXPECT_EQ(sink.writes, 0u);
}

TEST(LoggerTest, EnabledFormattingDoesNotAllocate) {
  Logger logger(LogLevel::kInfo);
  NullSink sink;
  logger.AddBorrowedSink(&sink);
  std::string value = "bare";
  logger.Log(LogLevel::kInfo, "warm", {{"k", value}});
  uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    logger.Log(LogLevel::kInfo, "event",
               {{"k", value},
                {"quoted", "needs quoting"},
                {"i", i},
                {"u", uint64_t{42}},
                {"d", 2.5},
                {"b", false}});
  }
  uint64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "log formatting allocated";
  EXPECT_EQ(sink.writes, 1001u);  // Warm-up write + 1000 in the loop.
}

TEST(LoggerTest, ConcurrentLoggingIsSerialized) {
  Logger logger(LogLevel::kInfo);
  auto sink = std::make_unique<VectorSink>();
  VectorSink* lines = sink.get();
  logger.AddSink(std::move(sink));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.Log(LogLevel::kInfo, "tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(lines->lines().size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines->lines()) {
    EXPECT_NE(line.find("event=tick"), std::string::npos);
  }
}

TEST(RotatingFileSinkTest, WritesAndRotatesBySize) {
  std::string dir = ::testing::TempDir() + "/rotating_sink";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/app.log";
  RotatingFileSink::Options options;
  options.max_file_bytes = 100;
  options.max_files = 2;
  auto sink = RotatingFileSink::Open(Env::Default(), path, options);
  ASSERT_TRUE(sink.ok()) << sink.status();
  std::string line(60, 'a');
  for (int i = 0; i < 6; ++i) {
    (*sink)->Write(LogLevel::kInfo, line);
  }
  ASSERT_TRUE((*sink)->status().ok()) << (*sink)->status();
  ASSERT_TRUE((*sink)->Flush().ok());
  EXPECT_TRUE(Env::Default()->FileExists(path));
  EXPECT_TRUE(Env::Default()->FileExists(path + ".1"));
  // max_files = 2: nothing beyond .2 may exist.
  EXPECT_FALSE(Env::Default()->FileExists(path + ".3"));
  auto contents = Env::Default()->ReadFileToString(path + ".1");
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find(line), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(RotatingFileSinkTest, OpenRotatesExistingLiveFile) {
  std::string dir = ::testing::TempDir() + "/rotating_sink_reopen";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/app.log";
  {
    auto sink = RotatingFileSink::Open(Env::Default(), path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    (*sink)->Write(LogLevel::kInfo, "first process");
  }
  {
    auto sink = RotatingFileSink::Open(Env::Default(), path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    (*sink)->Write(LogLevel::kInfo, "second process");
  }
  auto rotated = Env::Default()->ReadFileToString(path + ".1");
  ASSERT_TRUE(rotated.ok());
  EXPECT_NE(rotated->find("first process"), std::string::npos);
  auto live = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(live.ok());
  EXPECT_NE(live->find("second process"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// The engine's put/get hot path must not gain a single allocation from
// having a live INFO logger attached (events fire on open/flush/
// compaction only). Same workload, logged vs unlogged, equal counts.
TEST(EngineLoggingTest, PutGetHotPathIsLogFree) {
  std::string base = ::testing::TempDir() + "/engine_log_free";
  std::filesystem::remove_all(base + "_logged");
  std::filesystem::remove_all(base + "_plain");

  Logger logger(LogLevel::kInfo);
  NullSink sink;
  logger.AddBorrowedSink(&sink);

  storage::EngineOptions logged_options;
  logged_options.logger = &logger;
  auto logged = storage::StorageEngine::Open(base + "_logged",
                                             logged_options);
  ASSERT_TRUE(logged.ok()) << logged.status();
  auto plain = storage::StorageEngine::Open(base + "_plain", {});
  ASSERT_TRUE(plain.ok()) << plain.status();

  auto run = [](storage::StorageEngine* engine) {
    for (int i = 0; i < 200; ++i) {
      std::string key = "key" + std::to_string(i % 50);
      ASSERT_TRUE(engine->Put(key, "value-" + std::to_string(i)).ok());
      auto got = engine->Get(key);
      ASSERT_TRUE(got.ok());
    }
  };
  // Warm-up round (lazy init, arena growth) then a measured round on
  // identical engine states.
  run(logged->get());
  run(plain->get());
  uint64_t before_logged = g_heap_allocations.load(std::memory_order_relaxed);
  run(logged->get());
  uint64_t logged_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - before_logged;
  uint64_t before_plain = g_heap_allocations.load(std::memory_order_relaxed);
  run(plain->get());
  uint64_t plain_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - before_plain;
  EXPECT_EQ(logged_allocs, plain_allocs)
      << "attaching a logger changed the put/get allocation count";

  ASSERT_TRUE((*logged)->Close().ok());
  ASSERT_TRUE((*plain)->Close().ok());
  std::filesystem::remove_all(base + "_logged");
  std::filesystem::remove_all(base + "_plain");
}

}  // namespace
}  // namespace authidx::obs
