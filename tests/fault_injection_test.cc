// Fault injection: an Env decorator that starts failing writes/syncs on
// command, verifying the engine surfaces IOError instead of corrupting
// state, and that a store written before the fault still recovers.

#include <gtest/gtest.h>

#include <filesystem>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

// Forwards to the default Env until `fail_writes` flips; then every
// write-path operation returns IOError.
class FaultyEnv final : public Env {
 public:
  bool fail_writes = false;

  class FaultyWritableFile final : public WritableFile {
   public:
    FaultyWritableFile(std::unique_ptr<WritableFile> base, FaultyEnv* env)
        : base_(std::move(base)), env_(env) {}
    Status Append(std::string_view data) override {
      if (env_->fail_writes) {
        return Status::IOError("injected write failure");
      }
      return base_->Append(data);
    }
    Status Flush() override {
      if (env_->fail_writes) {
        return Status::IOError("injected flush failure");
      }
      return base_->Flush();
    }
    Status Sync() override {
      if (env_->fail_writes) {
        return Status::IOError("injected sync failure");
      }
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
    FaultyEnv* env_;
  };

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    if (fail_writes) {
      return Status::IOError("injected open failure: " + path);
    }
    AUTHIDX_ASSIGN_OR_RETURN(auto base,
                             Env::Default()->NewWritableFile(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultyWritableFile>(std::move(base), this));
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return Env::Default()->NewRandomAccessFile(path);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return Env::Default()->ReadFileToString(path);
  }
  Status WriteStringToFileSync(const std::string& path,
                               std::string_view data) override {
    if (fail_writes) {
      return Status::IOError("injected atomic-write failure");
    }
    return Env::Default()->WriteStringToFileSync(path, data);
  }
  bool FileExists(const std::string& path) override {
    return Env::Default()->FileExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return Env::Default()->ListDir(dir);
  }
  Status RemoveFile(const std::string& path) override {
    if (fail_writes) {
      return Status::IOError("injected remove failure");
    }
    return Env::Default()->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    if (fail_writes) {
      return Status::IOError("injected rename failure");
    }
    return Env::Default()->RenameFile(from, to);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return Env::Default()->CreateDirIfMissing(dir);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return Env::Default()->FileSize(path);
  }
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  FaultyEnv faulty_env_;
};

TEST_F(FaultInjectionTest, PutSurfacesIOErrorWhenWalFails) {
  EngineOptions options;
  options.env = &faulty_env_;
  auto engine = StorageEngine::Open(dir_, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->Put("before", "ok").ok());
  faulty_env_.fail_writes = true;
  Status s = (*engine)->Put("after", "fails");
  EXPECT_TRUE(s.IsIOError()) << s;
  // Reads keep working on the pre-fault state.
  faulty_env_.fail_writes = false;
  EXPECT_EQ(**(*engine)->Get("before"), "ok");
}

TEST_F(FaultInjectionTest, FlushFailureIsReportedNotSilent) {
  EngineOptions options;
  options.env = &faulty_env_;
  auto engine = StorageEngine::Open(dir_, options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  faulty_env_.fail_writes = true;
  EXPECT_TRUE((*engine)->Flush().IsIOError());
  faulty_env_.fail_writes = false;
  // Data still served from the memtable.
  EXPECT_EQ(**(*engine)->Get("k050"), "v");
}

TEST_F(FaultInjectionTest, SyncedWritesBeforeFaultSurviveReopen) {
  {
    EngineOptions options;
    options.env = &faulty_env_;
    options.sync_writes = true;
    auto engine = StorageEngine::Open(dir_, options);
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
    }
    faulty_env_.fail_writes = true;
    // Fails by design; the write is meant to be lost.
    (*engine)->Put("lost", "x").IgnoreError();
    // Simulate the process dying here: drop the engine while writes
    // fail (Close's flush fails, as a crash would).
  }
  faulty_env_.fail_writes = false;
  auto engine = StorageEngine::Open(dir_, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  // All synced pre-fault writes recovered from the WAL.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE((*(*engine)->Get(StringPrintf("k%03d", i))).has_value()) << i;
  }
  EXPECT_FALSE((*(*engine)->Get("lost")).has_value());
}

TEST_F(FaultInjectionTest, OpenFailsCleanlyWhenDirUncreatable) {
  faulty_env_.fail_writes = true;
  EngineOptions options;
  options.env = &faulty_env_;
  auto engine = StorageEngine::Open(dir_, options);
  // Fresh store needs a WAL: open must fail with IOError, not crash.
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsIOError()) << engine.status();
}

}  // namespace
}  // namespace authidx::storage
