// Fault injection: FaultEnv (tests/fault_env.h) starts failing
// write-path ops on command, verifying the engine surfaces IOError and
// degrades instead of corrupting state, that transient failures are
// absorbed by the retry policy, and that a store written before the
// fault still recovers. The exhaustive every-k crash-consistency sweep
// lives in fault_sweep_test.cc.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"
#include "fault_env.h"

namespace authidx::storage {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: the same test from two build trees (asan + tsan
    // presets) may run concurrently and must not share directories.
    dir_ = ::testing::TempDir() + "/fault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    options_.env = &faulty_env_;
    options_.retry_base_delay_us = 0;  // Keep retried tests instant.
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  tests::FaultEnv faulty_env_;
  EngineOptions options_;
};

TEST_F(FaultInjectionTest, PutSurfacesIOErrorWhenWalFails) {
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->Put("before", "ok").ok());
  faulty_env_.FailAllFromNow();
  Status s = (*engine)->Put("after", "fails");
  EXPECT_TRUE(s.IsIOError()) << s;
  // Reads keep working on the pre-fault state — even while the env
  // still fails, since lookups never touch the write path.
  EXPECT_EQ(**(*engine)->Get("before"), "ok");
  faulty_env_.StopFailing();
  EXPECT_EQ(**(*engine)->Get("before"), "ok");
}

TEST_F(FaultInjectionTest, FlushFailureIsReportedNotSilent) {
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  faulty_env_.FailAllFromNow();
  EXPECT_TRUE((*engine)->Flush().IsIOError());
  faulty_env_.StopFailing();
  // Data still served from the memtable.
  EXPECT_EQ(**(*engine)->Get("k050"), "v");
}

TEST_F(FaultInjectionTest, SyncedWritesBeforeFaultSurviveReopen) {
  {
    options_.sync_writes = true;
    auto engine = StorageEngine::Open(dir_, options_);
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
    }
    faulty_env_.FailAllFromNow();
    // Fails by design; the write is meant to be lost.
    (*engine)->Put("lost", "x").IgnoreError();
    // Simulate the process dying here: drop the engine while writes
    // fail (Close's flush fails, as a crash would).
  }
  faulty_env_.StopFailing();
  auto engine = StorageEngine::Open(dir_, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  // All synced pre-fault writes recovered from the WAL.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE((*(*engine)->Get(StringPrintf("k%03d", i))).has_value()) << i;
  }
  EXPECT_FALSE((*(*engine)->Get("lost")).has_value());
}

TEST_F(FaultInjectionTest, OpenFailsCleanlyWhenDirUncreatable) {
  faulty_env_.FailAllFromNow();
  auto engine = StorageEngine::Open(dir_, options_);
  // Fresh store needs a WAL: open must fail with IOError, not crash.
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsIOError()) << engine.status();
}

// A single transient failure during flush must be absorbed by the retry
// policy: the flush succeeds, nothing becomes sticky, and the retry is
// visible in the metrics.
TEST_F(FaultInjectionTest, TransientFlushFailureIsRetried) {
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  // Fail exactly the next write-path op: the table file creation of the
  // first flush attempt.
  faulty_env_.FailOnceAt(faulty_env_.write_ops());
  EXPECT_TRUE((*engine)->Flush().ok());
  EXPECT_FALSE((*engine)->degraded());
  EXPECT_EQ(faulty_env_.faults_injected(), 1u);
  auto snap = (*engine)->metrics().Snapshot();
  const auto* retries = snap.Find("authidx_retries_total{op=\"flush\"}");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->counter, 1u);
  EXPECT_EQ(**(*engine)->Get("k010"), "v");
}

// Exhausting the retry budget on a persistent failure trips the sticky
// background error.
TEST_F(FaultInjectionTest, ExhaustedRetriesTripBackgroundError) {
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  faulty_env_.FailAllFromNow();
  EXPECT_TRUE((*engine)->Flush().IsIOError());
  EXPECT_TRUE((*engine)->degraded());
  EXPECT_TRUE((*engine)->background_error().IsIOError());
  auto snap = (*engine)->metrics().Snapshot();
  const auto* retries = snap.Find("authidx_retries_total{op=\"flush\"}");
  ASSERT_NE(retries, nullptr);
  // max_attempts = 3 default: two retries before giving up.
  EXPECT_EQ(retries->counter, 2u);
  const auto* bg = snap.Find("authidx_bg_errors_total");
  ASSERT_NE(bg, nullptr);
  EXPECT_EQ(bg->counter, 1u);
}

// The end-to-end degradation story with a compaction failure as the
// trigger: the sticky error trips with op context, writes return it,
// reads keep serving, and the gauge flips for scrapers.
TEST_F(FaultInjectionTest, CompactionFailureDegradesEngineEndToEnd) {
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  // The memtable is now empty, so Compact's implicit flush is a no-op
  // and the first failing op is compaction's own table write.
  faulty_env_.FailAllFromNow();
  Status s = (*engine)->Compact();
  EXPECT_TRUE(s.IsIOError()) << s;
  EXPECT_TRUE((*engine)->degraded());
  EXPECT_NE((*engine)->background_error().ToString().find("compaction"),
            std::string::npos)
      << (*engine)->background_error();
  faulty_env_.StopFailing();
  Status rejected = (*engine)->Put("more", "x");
  EXPECT_TRUE(rejected.IsIOError());
  EXPECT_NE(rejected.ToString().find("degraded"), std::string::npos);
  EXPECT_EQ(**(*engine)->Get("k025"), "v");
  auto snap = (*engine)->metrics().Snapshot();
  const auto* degraded = snap.Find("authidx_degraded");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->gauge, 1.0);
  const auto* retries =
      snap.Find("authidx_retries_total{op=\"compaction\"}");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->counter, 2u);
}

// A WAL append torn mid-record by the fault (half the bytes reach disk)
// must be detected and discarded by recovery, keeping every
// acknowledged record.
TEST_F(FaultInjectionTest, TornFinalWalAppendIsDiscardedOnRecovery) {
  {
    options_.sync_writes = true;
    auto engine = StorageEngine::Open(dir_, options_);
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
    }
    faulty_env_.set_torn_writes(true);
    faulty_env_.FailAllFromNow();
    EXPECT_FALSE((*engine)->Put("torn", "never-acknowledged").ok());
  }
  faulty_env_.StopFailing();
  auto engine = StorageEngine::Open(dir_, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE((*(*engine)->Get(StringPrintf("k%03d", i))).has_value()) << i;
  }
  EXPECT_FALSE((*(*engine)->Get("torn")).has_value());
  auto report = (*engine)->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean());
}

// A failed obsolete-file unlink is best-effort: logged and counted, the
// flush itself still succeeds, and the file is removed by a later GC
// pass instead of leaking forever.
TEST_F(FaultInjectionTest, FailedObsoleteFileRemovalIsRetriedLater) {
  options_.sync_writes = true;
  auto engine = StorageEngine::Open(dir_, options_);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  // Every unlink fails, everything else succeeds: the flush must still
  // commit, only degrading GC.
  faulty_env_.set_fail_removes(true);
  ASSERT_TRUE((*engine)->Flush().ok()) << (*engine)->background_error();
  EXPECT_FALSE((*engine)->degraded());
  auto snap = (*engine)->metrics().Snapshot();
  const auto* gc = snap.Find("authidx_gc_failures_total");
  ASSERT_NE(gc, nullptr);
  EXPECT_GE(gc->counter, 1u);
  // The superseded WAL is still on disk (its unlink failed).
  uint64_t stuck_faults = faulty_env_.faults_injected();
  EXPECT_GE(stuck_faults, 1u);
  // Once the filesystem recovers, the next flush sweeps the leftovers.
  faulty_env_.set_fail_removes(false);
  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE((*engine)->Put(StringPrintf("k%03d", i), "v").ok());
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ(**(*engine)->Get("k030"), "v");
  // Only the engine's WAL + table + manifest files remain in the dir:
  // nothing the failed GC left behind outlives the sweep.
  auto listing = faulty_env_.ListDir(dir_);
  ASSERT_TRUE(listing.ok());
  size_t wal_files = 0;
  for (const std::string& name : *listing) {
    if (name.find("wal") != std::string::npos) {
      ++wal_files;
    }
  }
  EXPECT_EQ(wal_files, 1u) << "stale WALs not garbage-collected";
}

}  // namespace
}  // namespace authidx::storage
