#include "authidx/text/phonetic.h"

#include <gtest/gtest.h>

namespace authidx::text {
namespace {

TEST(SoundexTest, ClassicVectors) {
  // Canonical examples from the Soundex specification.
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndAccentsIgnored) {
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));
  EXPECT_EQ(Soundex("Müller"), Soundex("Muller"));
}

TEST(SoundexTest, ShortNamesZeroPadded) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("Au"), "A000");
  EXPECT_EQ(Soundex("E"), "E000");
}

TEST(SoundexTest, EmptyAndNonLetters) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
}

TEST(SoundexTest, SimilarSurnamesShareCode) {
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
  EXPECT_EQ(Soundex("Johnson"), Soundex("Jonson"));
  EXPECT_NE(Soundex("Smith"), Soundex("Jones"));
}

TEST(MetaphoneTest, SoundAlikesShareCode) {
  EXPECT_EQ(Metaphone("Knight"), Metaphone("Nite"));
  EXPECT_EQ(Metaphone("Smith"), Metaphone("Smyth"));
  EXPECT_EQ(Metaphone("Phillip"), Metaphone("Filip"));
  EXPECT_EQ(Metaphone("Wright"), Metaphone("Rite"));
}

TEST(MetaphoneTest, MoreDiscriminatingThanSoundex) {
  // Soundex lumps these; Metaphone keeps them apart.
  EXPECT_EQ(Soundex("Robert"), Soundex("Rupert"));
  EXPECT_NE(Metaphone("Robert"), Metaphone("Rupert"));
}

TEST(MetaphoneTest, SpecificRules) {
  EXPECT_EQ(Metaphone("Schmidt").substr(0, 1), "X");  // sch -> X.
  EXPECT_EQ(Metaphone("Xavier").substr(0, 1), "S");   // Initial x -> S.
  EXPECT_EQ(Metaphone("Thomas").substr(0, 1), "0");   // th -> '0'.
  EXPECT_EQ(Metaphone("Church").substr(0, 1), "X");   // ch -> X.
  EXPECT_EQ(Metaphone("Gem").substr(0, 1), "J");      // ge -> J.
  EXPECT_EQ(Metaphone("Game").substr(0, 1), "K");     // ga -> K.
}

TEST(MetaphoneTest, SilentLetters) {
  EXPECT_EQ(Metaphone("Gnome"), Metaphone("Nome"));
  EXPECT_EQ(Metaphone("Pneumonia").substr(0, 1), "N");
  EXPECT_EQ(Metaphone("Lamb"), Metaphone("Lam"));
}

TEST(MetaphoneTest, EmptyAndStability) {
  EXPECT_EQ(Metaphone(""), "");
  EXPECT_EQ(Metaphone("McGinley"), Metaphone("mcginley"));
}

}  // namespace
}  // namespace authidx::text
