// B9: structured query latency over a 100k-entry catalog, one benchmark
// per access path (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include "authidx/core/author_index.h"
#include "authidx/query/parser.h"
#include "authidx/workload/corpus.h"

namespace authidx::core {
namespace {

AuthorIndex& Catalog() {
  static AuthorIndex* catalog = [] {
    workload::CorpusOptions options;
    options.entries = 100000;
    options.authors = 8000;
    auto c = AuthorIndex::Create();
    AUTHIDX_CHECK_OK(c->AddAll(workload::GenerateCorpus(options)));
    return c.release();
  }();
  return *catalog;
}

void RunQuery(benchmark::State& state, const char* query_text) {
  AuthorIndex& catalog = Catalog();
  query::Query q = *query::ParseQuery(query_text);
  size_t matches = 0;
  for (auto _ : state) {
    auto result = catalog.Run(q);
    matches = result->total_matches;
    benchmark::DoNotOptimize(result->hits.data());
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_QueryAuthorExact(benchmark::State& state) {
  RunQuery(state, "author:miller limit:1000");
}
BENCHMARK(BM_QueryAuthorExact);

void BM_QueryAuthorPrefix(benchmark::State& state) {
  RunQuery(state, "author:mc* limit:1000");
}
BENCHMARK(BM_QueryAuthorPrefix);

void BM_QueryAuthorFuzzy(benchmark::State& state) {
  RunQuery(state, "author~milner limit:1000");
}
BENCHMARK(BM_QueryAuthorFuzzy)->Unit(benchmark::kMicrosecond);

void BM_QuerySingleTerm(benchmark::State& state) {
  RunQuery(state, "coal limit:1000");
}
BENCHMARK(BM_QuerySingleTerm);

void BM_QueryConjunction(benchmark::State& state) {
  RunQuery(state, "coal mining limit:1000");
}
BENCHMARK(BM_QueryConjunction);

void BM_QueryConjunctionWithFilters(benchmark::State& state) {
  RunQuery(state, "coal mining year:1975..1985 student:no limit:1000");
}
BENCHMARK(BM_QueryConjunctionWithFilters);

// Routed to the block-max pruned top-k plan (kTitleTopK); the counters
// expose how much of the postings volume the pruning loop skipped.
void BM_QueryRelevanceRanked(benchmark::State& state) {
  AuthorIndex& catalog = Catalog();
  query::Query q =
      *query::ParseQuery("coal mining safety order:relevance limit:20");
  uint64_t decoded = 0;
  uint64_t skipped = 0;
  for (auto _ : state) {
    auto result = catalog.Run(q);
    decoded = result->postings_decoded;
    skipped = result->postings_skipped;
    benchmark::DoNotOptimize(result->hits.data());
  }
  state.counters["postings_decoded"] = static_cast<double>(decoded);
  state.counters["postings_skipped"] = static_cast<double>(skipped);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryRelevanceRanked)->Unit(benchmark::kMicrosecond);

void BM_QueryNegation(benchmark::State& state) {
  RunQuery(state, "mining -safety limit:1000");
}
BENCHMARK(BM_QueryNegation);

void BM_QueryFilterOnlyFullScan(benchmark::State& state) {
  RunQuery(state, "year:1980..1982 limit:1000");
}
BENCHMARK(BM_QueryFilterOnlyFullScan)->Unit(benchmark::kMillisecond);

void BM_QueryParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q = query::ParseQuery(
        "author:mc* title:\"coal mining\" year:1975..1985 -tax "
        "order:relevance limit:50");
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_QueryParseOnly);

}  // namespace
}  // namespace authidx::core
