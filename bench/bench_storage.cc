// B7: storage engine — WAL append (buffered vs synced), engine fill,
// point reads, full scans, compaction, and the Bloom bits/key sweep
// (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "authidx/index/bloom.h"
#include "authidx/storage/engine.h"
#include "authidx/storage/wal.h"

namespace authidx::storage {
namespace {

std::string FreshDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/authidx_bench_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_WalAppendBuffered(benchmark::State& state) {
  std::string dir = FreshDir("walbuf");
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  auto writer = WalWriter::Open(Env::Default(), dir + "/bench.wal");
  for (auto _ : state) {
    benchmark::DoNotOptimize((*writer)->Append(record).ok());
  }
  AUTHIDX_CHECK_OK((*writer)->Close());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppendBuffered)->Arg(128)->Arg(1024)->Arg(16384);

void BM_WalAppendSynced(benchmark::State& state) {
  std::string dir = FreshDir("walsync");
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  auto writer = WalWriter::Open(Env::Default(), dir + "/bench.wal");
  for (auto _ : state) {
    AUTHIDX_CHECK_OK((*writer)->Append(record));
    benchmark::DoNotOptimize((*writer)->Sync().ok());
  }
  AUTHIDX_CHECK_OK((*writer)->Close());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppendSynced)->Arg(128)->Arg(1024);

void BM_EngineFill(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("fill");
    EngineOptions options;
    options.memtable_bytes = 1 << 20;
    auto engine = StorageEngine::Open(dir, options);
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK((*engine)->Put(StringPrintf("key%010zu", i),
                                      "value-payload-0123456789"));
    }
    AUTHIDX_CHECK_OK((*engine)->Flush());
    state.PauseTiming();
    AUTHIDX_CHECK_OK((*engine)->Close());
    engine->reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_EngineFill)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// Shared read-only engine for the read benchmarks.
struct ReadFixture {
  std::string dir;
  std::unique_ptr<StorageEngine> engine;
  size_t n = 200000;

  ReadFixture() {
    dir = FreshDir("read");
    EngineOptions options;
    options.memtable_bytes = 1 << 20;
    auto opened = StorageEngine::Open(dir, options);
    engine = std::move(opened).value();
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK(engine->Put(StringPrintf("key%010zu", i),
                                   "value-payload-0123456789"));
    }
    AUTHIDX_CHECK_OK(engine->Compact());
  }
};

ReadFixture& Reads() {
  static ReadFixture* fixture = new ReadFixture();
  return *fixture;
}

void BM_EnginePointGetHit(benchmark::State& state) {
  ReadFixture& f = Reads();
  Random rng(3);
  for (auto _ : state) {
    auto hit = f.engine->Get(StringPrintf("key%010zu", rng.Uniform(f.n)));
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnginePointGetHit);

void BM_EnginePointGetMiss(benchmark::State& state) {
  ReadFixture& f = Reads();
  Random rng(4);
  // The fixture is shared with the hit bench, so take counter deltas
  // around this bench's own probes.
  auto before = f.engine->metrics().Snapshot();
  for (auto _ : state) {
    auto hit = f.engine->Get(StringPrintf("absent%08zu", rng.Uniform(f.n)));
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  // Fraction of misses the Bloom filter short-circuited before any
  // block read, from the obs registry — the "misses are ~10x cheaper
  // than hits" claim in EXPERIMENTS.md B7 rests on this being ~1.
  auto after = f.engine->metrics().Snapshot();
  double checks = static_cast<double>(
      after.Find("authidx_bloom_checks_total")->counter -
      before.Find("authidx_bloom_checks_total")->counter);
  double negatives = static_cast<double>(
      after.Find("authidx_bloom_negatives_total")->counter -
      before.Find("authidx_bloom_negatives_total")->counter);
  state.counters["obs_bloom_negative_share"] =
      checks > 0 ? negatives / checks : 0.0;
}
BENCHMARK(BM_EnginePointGetMiss);

void BM_EngineFullScan(benchmark::State& state) {
  ReadFixture& f = Reads();
  for (auto _ : state) {
    auto it = f.engine->NewIterator();
    size_t count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.n));
}
BENCHMARK(BM_EngineFullScan)->Unit(benchmark::kMillisecond);

void BM_CompactionThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("compact");
    EngineOptions options;
    options.memtable_bytes = 256 * 1024;
    options.l0_compaction_trigger = 1000;  // Manual compaction only.
    auto engine = StorageEngine::Open(dir, options);
    for (size_t i = 0; i < 50000; ++i) {
      AUTHIDX_CHECK_OK((*engine)->Put(StringPrintf("key%010zu", i * 3 % 60000), "v"));
    }
    AUTHIDX_CHECK_OK((*engine)->Flush());
    state.ResumeTiming();
    AUTHIDX_CHECK_OK((*engine)->Compact());
    state.PauseTiming();
    AUTHIDX_CHECK_OK((*engine)->Close());
    engine->reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_CompactionThroughput)->Unit(benchmark::kMillisecond);

// Bloom filter false-positive-rate sweep, reported as a counter so the
// bits/key -> FPR curve regenerates from one run.
void BM_BloomFprSweep(benchmark::State& state) {
  int bits_per_key = static_cast<int>(state.range(0));
  constexpr size_t kKeys = 100000;
  BloomFilter filter(kKeys, bits_per_key);
  for (size_t i = 0; i < kKeys; ++i) {
    filter.Add(StringPrintf("member%08zu", i));
  }
  size_t false_positives = 0;
  size_t probes = 0;
  for (auto _ : state) {
    std::string probe = StringPrintf("absent%08zu", probes % kKeys);
    false_positives += filter.MayContain(probe);
    ++probes;
  }
  state.counters["fpr"] =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  state.counters["bits_per_key"] = bits_per_key;
}
BENCHMARK(BM_BloomFprSweep)->Arg(4)->Arg(8)->Arg(10)->Arg(16);

}  // namespace
}  // namespace authidx::storage
