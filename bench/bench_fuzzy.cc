// B6: fuzzy author matching — full DP vs banded Levenshtein vs
// phonetic-bucket prefilter over a 100k-surname dictionary (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/text/distance.h"
#include "authidx/text/normalize.h"
#include "authidx/text/phonetic.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

using text::BoundedLevenshtein;
using text::DamerauLevenshtein;
using text::JaroWinkler;
using text::Levenshtein;
using text::WithinEditDistance;

constexpr size_t kDictSize = 100000;
constexpr size_t kMaxEdits = 2;

struct Dict {
  std::vector<std::string> surnames;
  std::unordered_map<std::string, std::vector<size_t>> by_metaphone;
};

const Dict& Dictionary() {
  static const Dict* dict = [] {
    workload::NameGenerator gen(31);
    Random rng(32);
    auto* d = new Dict();
    d->surnames.reserve(kDictSize);
    for (size_t i = 0; i < kDictSize; ++i) {
      // Perturb pool surnames so the dictionary has realistic variety.
      std::string s = text::NormalizeForIndex(gen.NextSurname());
      if (rng.OneIn(3)) {
        s += static_cast<char>('a' + rng.Uniform(26));
      }
      if (rng.OneIn(7) && s.size() > 3) {
        s[1 + rng.Uniform(s.size() - 2)] =
            static_cast<char>('a' + rng.Uniform(26));
      }
      d->by_metaphone[text::Metaphone(s)].push_back(d->surnames.size());
      d->surnames.push_back(std::move(s));
    }
    return d;
  }();
  return *dict;
}

std::string Probe(Random* rng) {
  const Dict& dict = Dictionary();
  std::string s = dict.surnames[rng->Uniform(dict.surnames.size())];
  // One random edit so the probe is close-but-not-exact.
  if (!s.empty()) {
    s[rng->Uniform(s.size())] = static_cast<char>('a' + rng->Uniform(26));
  }
  return s;
}

void BM_FullLevenshteinScan(benchmark::State& state) {
  const Dict& dict = Dictionary();
  Random rng(77);
  size_t matches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string probe = Probe(&rng);
    state.ResumeTiming();
    for (const std::string& surname : dict.surnames) {
      if (Levenshtein(surname, probe) <= kMaxEdits) {
        ++matches;
      }
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDictSize));
}
BENCHMARK(BM_FullLevenshteinScan)->Unit(benchmark::kMillisecond);

void BM_BandedLevenshteinScan(benchmark::State& state) {
  const Dict& dict = Dictionary();
  Random rng(77);
  size_t matches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string probe = Probe(&rng);
    state.ResumeTiming();
    for (const std::string& surname : dict.surnames) {
      if (WithinEditDistance(surname, probe, kMaxEdits)) {
        ++matches;
      }
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDictSize));
}
BENCHMARK(BM_BandedLevenshteinScan)->Unit(benchmark::kMillisecond);

void BM_PhoneticPrefilteredScan(benchmark::State& state) {
  const Dict& dict = Dictionary();
  Random rng(77);
  size_t matches = 0;
  size_t candidates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string probe = Probe(&rng);
    state.ResumeTiming();
    auto bucket = dict.by_metaphone.find(text::Metaphone(probe));
    if (bucket != dict.by_metaphone.end()) {
      candidates += bucket->second.size();
      for (size_t idx : bucket->second) {
        if (WithinEditDistance(dict.surnames[idx], probe, kMaxEdits)) {
          ++matches;
        }
      }
    }
  }
  benchmark::DoNotOptimize(matches);
  state.counters["candidates_frac"] =
      static_cast<double>(candidates) /
      (static_cast<double>(state.iterations()) * kDictSize);
}
BENCHMARK(BM_PhoneticPrefilteredScan)->Unit(benchmark::kMicrosecond);

void BM_PairwiseDistance(benchmark::State& state) {
  Random rng(9);
  const Dict& dict = Dictionary();
  for (auto _ : state) {
    const std::string& a = dict.surnames[rng.Uniform(kDictSize)];
    const std::string& b = dict.surnames[rng.Uniform(kDictSize)];
    switch (state.range(0)) {
      case 0:
        benchmark::DoNotOptimize(Levenshtein(a, b));
        break;
      case 1:
        benchmark::DoNotOptimize(BoundedLevenshtein(a, b, kMaxEdits));
        break;
      case 2:
        benchmark::DoNotOptimize(DamerauLevenshtein(a, b));
        break;
      case 3:
        benchmark::DoNotOptimize(JaroWinkler(a, b));
        break;
    }
  }
}
BENCHMARK(BM_PairwiseDistance)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace authidx
