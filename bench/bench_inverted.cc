// B5: postings algebra — galloping vs linear intersection across
// list-length ratios, plus union and compression ratio, plus block-max
// top-k pruning vs exhaustive BM25 (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <set>
#include <string>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/index/inverted.h"
#include "authidx/index/postings.h"
#include "authidx/index/ranker.h"

namespace authidx {
namespace {

std::vector<EntryId> SortedIds(uint64_t seed, size_t n, EntryId universe) {
  Random rng(seed);
  std::set<EntryId> ids;
  while (ids.size() < n) {
    ids.insert(static_cast<EntryId>(rng.Uniform(universe)));
  }
  return {ids.begin(), ids.end()};
}

// range(0) = |large| / |small| ratio; |small| fixed at 1000.
void BM_IntersectLinear(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectLinear(small, large));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectLinear)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_IntersectGalloping(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectGalloping(small, large));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectGalloping)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_IntersectAdaptive(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(small, large));
  }
}
BENCHMARK(BM_IntersectAdaptive)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Union(benchmark::State& state) {
  auto a = SortedIds(3, static_cast<size_t>(state.range(0)), 1 << 24);
  auto b = SortedIds(4, static_cast<size_t>(state.range(0)), 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_Union)->Arg(1000)->Arg(100000);

void BM_PostingsEncodeDecode(benchmark::State& state) {
  // Zipfian gaps: realistic postings with dense head.
  size_t n = static_cast<size_t>(state.range(0));
  Zipf zipf(1000, 0.99, 9);
  std::vector<Posting> postings;
  EntryId doc = 0;
  for (size_t i = 0; i < n; ++i) {
    doc += static_cast<EntryId>(zipf.Next() + 1);
    postings.push_back({doc, 1});
  }
  size_t encoded_size = EncodePostings(postings).size();
  for (auto _ : state) {
    std::string encoded = EncodePostings(postings);
    auto decoded = DecodePostings(encoded);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.counters["bytes_per_posting"] =
      static_cast<double>(encoded_size) / static_cast<double>(n);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PostingsEncodeDecode)->Arg(1000)->Arg(100000);

// Shared index for the ranking benches: 200k docs of 4–12 zipfian
// tokens each, so the head terms have long postings lists with varied
// term frequencies and doc lengths (duplicate draws raise tf, giving
// the block-max skip table something to discriminate on).
const InvertedIndex& RankedIndex() {
  static const InvertedIndex* index = [] {
    auto* idx = new InvertedIndex();
    Random rng(99);
    Zipf zipf(2000, 1.0, 42);
    std::vector<std::string> tokens;
    for (EntryId doc = 0; doc < 200000; ++doc) {
      tokens.clear();
      size_t len = 4 + rng.Uniform(9);
      for (size_t t = 0; t < len; ++t) {
        tokens.push_back("t" + std::to_string(zipf.Next()));
      }
      idx->AddDocument(doc, tokens);
    }
    return idx;
  }();
  return *index;
}

// A realistic conjunctive mix — one rare term driving two common ones,
// where block skipping should shine: most of the common terms' blocks
// never contain an alignment candidate and are never decoded.
const std::vector<std::string>& RankedTerms() {
  static const std::vector<std::string> terms = {"t2", "t25", "t250"};
  return terms;
}

// The exhaustive baseline: score every posting of every query term.
void BM_RankBm25Exhaustive(benchmark::State& state) {
  const InvertedIndex& index = RankedIndex();
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankBm25(index, RankedTerms(), k));
  }
  uint64_t postings = 0;
  for (const std::string& term : RankedTerms()) {
    postings += index.DocFreq(term);
  }
  state.counters["postings_decoded"] = static_cast<double>(postings);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RankBm25Exhaustive)->Arg(10)->Arg(100);

// Block-max pruned conjunctive top-k over the same index and terms.
void BM_RankBm25TopKPruned(benchmark::State& state) {
  const InvertedIndex& index = RankedIndex();
  size_t k = static_cast<size_t>(state.range(0));
  TopKStats stats;
  for (auto _ : state) {
    stats = TopKStats{};
    benchmark::DoNotOptimize(
        RankBm25TopKConjunctive(index, RankedTerms(), k, {}, &stats));
  }
  state.counters["postings_decoded"] =
      static_cast<double>(stats.postings_decoded);
  state.counters["postings_skipped"] =
      static_cast<double>(stats.postings_skipped);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RankBm25TopKPruned)->Arg(10)->Arg(100);

}  // namespace
}  // namespace authidx
