// B5: postings algebra — galloping vs linear intersection across
// list-length ratios, plus union and compression ratio (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <set>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/index/postings.h"

namespace authidx {
namespace {

std::vector<EntryId> SortedIds(uint64_t seed, size_t n, EntryId universe) {
  Random rng(seed);
  std::set<EntryId> ids;
  while (ids.size() < n) {
    ids.insert(static_cast<EntryId>(rng.Uniform(universe)));
  }
  return {ids.begin(), ids.end()};
}

// range(0) = |large| / |small| ratio; |small| fixed at 1000.
void BM_IntersectLinear(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectLinear(small, large));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectLinear)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_IntersectGalloping(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectGalloping(small, large));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectGalloping)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_IntersectAdaptive(benchmark::State& state) {
  size_t small_n = 1000;
  size_t large_n = small_n * static_cast<size_t>(state.range(0));
  auto small = SortedIds(1, small_n, 1 << 24);
  auto large = SortedIds(2, large_n, 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(small, large));
  }
}
BENCHMARK(BM_IntersectAdaptive)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Union(benchmark::State& state) {
  auto a = SortedIds(3, static_cast<size_t>(state.range(0)), 1 << 24);
  auto b = SortedIds(4, static_cast<size_t>(state.range(0)), 1 << 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_Union)->Arg(1000)->Arg(100000);

void BM_PostingsEncodeDecode(benchmark::State& state) {
  // Zipfian gaps: realistic postings with dense head.
  size_t n = static_cast<size_t>(state.range(0));
  Zipf zipf(1000, 0.99, 9);
  std::vector<Posting> postings;
  EntryId doc = 0;
  for (size_t i = 0; i < n; ++i) {
    doc += static_cast<EntryId>(zipf.Next() + 1);
    postings.push_back({doc, 1});
  }
  size_t encoded_size = EncodePostings(postings).size();
  for (auto _ : state) {
    std::string encoded = EncodePostings(postings);
    auto decoded = DecodePostings(encoded);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.counters["bytes_per_posting"] =
      static_cast<double>(encoded_size) / static_cast<double>(n);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PostingsEncodeDecode)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace authidx
