// B11 (ablations): design-choice sweeps called out in DESIGN.md —
// block compression on/off, Bloom filter on/weak/off for point misses,
// block cache on/off for hot reads, restart-interval space/time trade.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

std::string FreshDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/authidx_ablate_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void FillAndCompact(StorageEngine* engine, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    AUTHIDX_CHECK_OK(
        engine->Put(StringPrintf("author/%08zu/entry", i),
                    "surname given-names suffix title title title " +
                        std::string(60, static_cast<char>('a' + (i % 7)))));
  }
  AUTHIDX_CHECK_OK(engine->Compact());
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      total += entry.file_size();
    }
  }
  return total;
}

// range(0): 0 = raw, 1 = compressed.
void BM_AblateCompression(benchmark::State& state) {
  bool compress = state.range(0) != 0;
  std::string dir = FreshDir(compress ? "lz" : "raw");
  EngineOptions options;
  options.compress_blocks = compress;
  auto engine = StorageEngine::Open(dir, options);
  FillAndCompact(engine->get(), 50000);
  state.counters["table_bytes"] = static_cast<double>(DirBytes(dir));
  Random rng(3);
  for (auto _ : state) {
    auto hit =
        (*engine)->Get(StringPrintf("author/%08zu/entry", rng.Uniform(50000)));
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  AUTHIDX_CHECK_OK((*engine)->Close());
  engine->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AblateCompression)->Arg(0)->Arg(1);

// range(0): bloom bits per key (1 ~ nearly off, 10 default).
void BM_AblateBloomOnMisses(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  std::string dir = FreshDir("bloom");
  EngineOptions options;
  options.bloom_bits_per_key = bits;
  options.block_cache_bytes = 0;  // Isolate the filter effect.
  auto engine = StorageEngine::Open(dir, options);
  FillAndCompact(engine->get(), 50000);
  Random rng(4);
  for (auto _ : state) {
    // Probe keys inside the run's key range (so the level-1 range check
    // cannot short-circuit) but never present.
    auto hit = (*engine)->Get(
        StringPrintf("author/%08zu/absent", rng.Uniform(50000)));
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["bits_per_key"] = bits;
  // Cross-check via the obs registry: every probe key is absent, so
  // filter consultations that were NOT short-circuited are false
  // positives — the measured FPR regenerates from the counters alone.
  {
    auto snap = (*engine)->metrics().Snapshot();
    double checks = static_cast<double>(
        snap.Find("authidx_bloom_checks_total")->counter);
    double negatives = static_cast<double>(
        snap.Find("authidx_bloom_negatives_total")->counter);
    state.counters["obs_bloom_fpr"] =
        checks > 0 ? (checks - negatives) / checks : 0.0;
  }
  AUTHIDX_CHECK_OK((*engine)->Close());
  engine->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AblateBloomOnMisses)->Arg(1)->Arg(4)->Arg(10)->Arg(16);

// range(0): cache bytes (0 = off).
void BM_AblateBlockCache(benchmark::State& state) {
  std::string dir = FreshDir("cache");
  EngineOptions options;
  options.block_cache_bytes = static_cast<size_t>(state.range(0));
  auto engine = StorageEngine::Open(dir, options);
  FillAndCompact(engine->get(), 50000);
  // Hot working set: 100 keys hammered repeatedly.
  Random rng(5);
  std::vector<std::string> hot;
  for (int i = 0; i < 100; ++i) {
    hot.push_back(StringPrintf("author/%08zu/entry", rng.Uniform(50000)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto hit = (*engine)->Get(hot[i++ % hot.size()]);
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["cache_hit_rate"] =
      (*engine)->block_cache().hits() + (*engine)->block_cache().misses() > 0
          ? static_cast<double>((*engine)->block_cache().hits()) /
                static_cast<double>((*engine)->block_cache().hits() +
                                    (*engine)->block_cache().misses())
          : 0.0;
  // Same rate recomputed from the obs registry (independent plumbing:
  // BlockCache mirrors into bound registry counters) — the two must
  // agree, which EXPERIMENTS.md B11 records as the metrics check.
  {
    auto snap = (*engine)->metrics().Snapshot();
    double hits = static_cast<double>(
        snap.Find("authidx_block_cache_hits_total")->counter);
    double misses = static_cast<double>(
        snap.Find("authidx_block_cache_misses_total")->counter);
    state.counters["obs_cache_hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
  }
  AUTHIDX_CHECK_OK((*engine)->Close());
  engine->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AblateBlockCache)->Arg(0)->Arg(16 << 20);

// range(0): restart interval; counter reports resulting table bytes.
void BM_AblateRestartInterval(benchmark::State& state) {
  int interval = static_cast<int>(state.range(0));
  std::string dir = FreshDir("restart");
  EngineOptions options;
  options.restart_interval = interval;
  options.block_cache_bytes = 0;
  auto engine = StorageEngine::Open(dir, options);
  FillAndCompact(engine->get(), 50000);
  state.counters["table_bytes"] = static_cast<double>(DirBytes(dir));
  Random rng(6);
  for (auto _ : state) {
    auto hit =
        (*engine)->Get(StringPrintf("author/%08zu/entry", rng.Uniform(50000)));
    benchmark::DoNotOptimize(hit.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  AUTHIDX_CHECK_OK((*engine)->Close());
  engine->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AblateRestartInterval)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Batch vs single-op ingest (WAL framing and sync amortization).
void BM_AblateBatchIngest(benchmark::State& state) {
  size_t batch_size = static_cast<size_t>(state.range(0));
  std::string dir = FreshDir("batch");
  EngineOptions options;
  options.sync_writes = true;  // Where batching matters most.
  auto engine = StorageEngine::Open(dir, options);
  size_t i = 0;
  for (auto _ : state) {
    if (batch_size <= 1) {
      AUTHIDX_CHECK_OK((*engine)->Put(StringPrintf("key%010zu", i++), "value"));
    } else {
      WriteBatch batch;
      for (size_t j = 0; j < batch_size; ++j) {
        batch.Put(StringPrintf("key%010zu", i++), "value");
      }
      AUTHIDX_CHECK_OK((*engine)->Apply(batch));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size ? batch_size : 1));
  AUTHIDX_CHECK_OK((*engine)->Close());
  engine->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AblateBatchIngest)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace authidx::storage
