// B10: typesetting and export throughput for a 10k-entry index
// (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <map>

#include "authidx/format/export.h"
#include "authidx/format/typeset.h"
#include "authidx/workload/corpus.h"

namespace authidx::format {
namespace {

core::AuthorIndex& Catalog(size_t entries) {
  static std::map<size_t, core::AuthorIndex*>* catalogs =
      new std::map<size_t, core::AuthorIndex*>();
  auto it = catalogs->find(entries);
  if (it == catalogs->end()) {
    workload::CorpusOptions options;
    options.entries = entries;
    options.authors = entries / 10 + 2;
    auto catalog = core::AuthorIndex::Create();
    AUTHIDX_CHECK_OK(catalog->AddAll(workload::GenerateCorpus(options)));
    it = catalogs->emplace(entries, catalog.release()).first;
  }
  return *it->second;
}

void BM_TypesetPages(benchmark::State& state) {
  core::AuthorIndex& catalog = Catalog(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  size_t pages = 0;
  for (auto _ : state) {
    auto result = TypesetAuthorIndex(catalog);
    pages = result.size();
    bytes = 0;
    for (const Page& page : result) {
      bytes += page.text.size();
    }
    benchmark::DoNotOptimize(result.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["pages"] = static_cast<double>(pages);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TypesetPages)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_GroupsInOrder(benchmark::State& state) {
  core::AuthorIndex& catalog = Catalog(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(catalog.GroupsInOrder().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_GroupsInOrder)->Unit(benchmark::kMillisecond);

void BM_ExportCsv(benchmark::State& state) {
  core::AuthorIndex& catalog = Catalog(10000);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string csv = CatalogToCsv(catalog);
    bytes = csv.size();
    benchmark::DoNotOptimize(csv.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ExportCsv)->Unit(benchmark::kMillisecond);

void BM_ExportJson(benchmark::State& state) {
  core::AuthorIndex& catalog = Catalog(10000);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string json = CatalogToJson(catalog);
    bytes = json.size();
    benchmark::DoNotOptimize(json.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ExportJson)->Unit(benchmark::kMillisecond);

void BM_WrapText(benchmark::State& state) {
  std::string title =
      "The Federal Surface Mining Control and Reclamation Act of 1977-"
      "First to Survive a Direct Tenth Amendment Attack";
  for (auto _ : state) {
    benchmark::DoNotOptimize(WrapText(title, 36));
  }
}
BENCHMARK(BM_WrapText);

}  // namespace
}  // namespace authidx::format
