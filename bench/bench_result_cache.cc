// B15: the epoch-invalidated result cache under zipfian repeat
// traffic — the same relevance queries re-issued with a skewed
// popularity distribution, cached vs uncached (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/core/author_index.h"
#include "authidx/query/parser.h"
#include "authidx/workload/corpus.h"

namespace authidx::core {
namespace {

constexpr size_t kCacheBytes = 8u << 20;

// A skewed query mix: single- and two-term relevance queries over the
// corpus title vocabulary, times a few page sizes. Distinct enough to
// exercise eviction bookkeeping, repetitive enough (under the zipfian
// pick below) for a realistic hit rate.
std::vector<query::Query> BuildQueries() {
  const char* words[] = {"mining",     "compensation", "liability",
                         "safety",     "negligence",   "water",
                         "mineral",    "rights",       "arbitration",
                         "bankruptcy", "zoning",       "custody",
                         "securities", "malpractice",  "credit",
                         "succession"};
  const char* limits[] = {"10", "20", "50"};
  std::vector<query::Query> queries;
  for (const char* word : words) {
    for (const char* limit : limits) {
      std::string text = std::string(word) + " order:relevance limit:" + limit;
      queries.push_back(*query::ParseQuery(text));
      std::string pair = std::string(word) + " law order:relevance limit:" +
                         limit;
      queries.push_back(*query::ParseQuery(pair));
    }
  }
  return queries;
}

AuthorIndex* MakeCatalog(bool cached) {
  workload::CorpusOptions options;
  options.entries = 50000;
  options.authors = 4000;
  auto catalog = AuthorIndex::Create();
  AUTHIDX_CHECK_OK(catalog->AddAll(workload::GenerateCorpus(options)));
  if (cached) {
    catalog->EnableResultCache(kCacheBytes);
  }
  return catalog.release();
}

uint64_t CounterValue(AuthorIndex& catalog, const char* name) {
  return catalog.mutable_metrics()->RegisterCounter(name, "")->Value();
}

void RunRepeatTraffic(benchmark::State& state, AuthorIndex& catalog) {
  static const std::vector<query::Query>* queries =
      new std::vector<query::Query>(BuildQueries());
  Zipf zipf(queries->size(), 0.99, 7);
  for (auto _ : state) {
    const query::Query& q = (*queries)[zipf.Next()];
    auto result = catalog.Run(q);
    benchmark::DoNotOptimize(result->hits.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_RepeatTrafficUncached(benchmark::State& state) {
  static AuthorIndex* catalog = MakeCatalog(false);
  RunRepeatTraffic(state, *catalog);
}
BENCHMARK(BM_RepeatTrafficUncached)->Unit(benchmark::kMicrosecond);

void BM_RepeatTrafficCached(benchmark::State& state) {
  static AuthorIndex* catalog = MakeCatalog(true);
  RunRepeatTraffic(state, *catalog);
  state.counters["result_cache_hits_total"] = static_cast<double>(
      CounterValue(*catalog, "authidx_result_cache_hits_total"));
  state.counters["result_cache_misses_total"] = static_cast<double>(
      CounterValue(*catalog, "authidx_result_cache_misses_total"));
  state.counters["result_cache_bytes"] =
      static_cast<double>(catalog->result_cache()->bytes_used());
}
BENCHMARK(BM_RepeatTrafficCached)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace authidx::core
