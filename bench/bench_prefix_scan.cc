// B4: prefix autocomplete — trie subtree scan vs B+-tree range scan for
// prefixes of varying selectivity (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/index/btree.h"
#include "authidx/index/trie.h"
#include "authidx/text/normalize.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

constexpr size_t kAuthors = 200000;
constexpr size_t kLimit = 100;

const std::vector<std::string>& FoldedNames() {
  static const std::vector<std::string>* names = [] {
    workload::NameGenerator gen(23);
    auto* out = new std::vector<std::string>();
    out->reserve(kAuthors);
    for (size_t i = 0; i < kAuthors; ++i) {
      // Disambiguate with a numeric tail so all keys are distinct.
      out->push_back(text::NormalizeForIndex(gen.NextAuthor().GroupKey()) +
                     " #" + std::to_string(i));
    }
    return out;
  }();
  return *names;
}

std::string PrefixOfLength(const std::vector<std::string>& names,
                           Random* rng, size_t len) {
  const std::string& pick = names[rng->Uniform(names.size())];
  return pick.substr(0, std::min(len, pick.size()));
}

void BM_TriePrefixScan(benchmark::State& state) {
  const auto& names = FoldedNames();
  Trie trie;
  for (size_t i = 0; i < names.size(); ++i) {
    trie.Insert(names[i], i);
  }
  Random rng(1);
  size_t prefix_len = static_cast<size_t>(state.range(0));
  size_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string prefix = PrefixOfLength(names, &rng, prefix_len);
    state.ResumeTiming();
    auto hits = trie.PrefixScan(prefix, kLimit);
    total += hits.size();
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["avg_hits"] = static_cast<double>(total) /
                               static_cast<double>(state.iterations());
}
BENCHMARK(BM_TriePrefixScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BTreePrefixScan(benchmark::State& state) {
  const auto& names = FoldedNames();
  BPlusTree tree;
  for (size_t i = 0; i < names.size(); ++i) {
    tree.Insert(names[i], i);
  }
  Random rng(1);
  size_t prefix_len = static_cast<size_t>(state.range(0));
  size_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string prefix = PrefixOfLength(names, &rng, prefix_len);
    state.ResumeTiming();
    auto hits = tree.PrefixScan(prefix, kLimit);
    total += hits.size();
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["avg_hits"] = static_cast<double>(total) /
                               static_cast<double>(state.iterations());
}
BENCHMARK(BM_BTreePrefixScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TrieInsertAll(benchmark::State& state) {
  const auto& names = FoldedNames();
  for (auto _ : state) {
    Trie trie;
    for (size_t i = 0; i < names.size(); ++i) {
      trie.Insert(names[i], i);
    }
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(names.size()));
}
BENCHMARK(BM_TrieInsertAll);

void BM_TrieCountPrefix(benchmark::State& state) {
  const auto& names = FoldedNames();
  Trie trie;
  for (size_t i = 0; i < names.size(); ++i) {
    trie.Insert(names[i], i);
  }
  Random rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    std::string prefix = PrefixOfLength(names, &rng, 3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(trie.CountPrefix(prefix));
  }
}
BENCHMARK(BM_TrieCountPrefix);

}  // namespace
}  // namespace authidx
