// B2: author-name collation — precomputed sort keys vs direct Compare
// vs naive byte compare, across corpus sizes (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "authidx/text/collate.h"
#include "authidx/workload/namegen.h"

namespace authidx {
namespace {

std::vector<std::string> Names(size_t n) {
  workload::NameGenerator gen(11);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(gen.NextAuthor().ToIndexForm());
  }
  return names;
}

void BM_SortWithPrecomputedKeys(benchmark::State& state) {
  auto names = Names(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<std::string, const std::string*>> keyed;
    state.ResumeTiming();
    keyed.reserve(names.size());
    for (const auto& name : names) {
      keyed.emplace_back(text::MakeSortKey(name), &name);
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    benchmark::DoNotOptimize(keyed.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortWithPrecomputedKeys)
    ->Arg(1000)->Arg(16000)->Arg(64000)->Arg(256000);

void BM_SortWithDirectCompare(benchmark::State& state) {
  auto names = Names(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::string> copy = names;
    std::sort(copy.begin(), copy.end(),
              [](const std::string& a, const std::string& b) {
                return text::Compare(a, b) < 0;
              });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortWithDirectCompare)->Arg(1000)->Arg(16000)->Arg(64000);

void BM_SortNaiveBytes(benchmark::State& state) {
  // Baseline: plain byte sort (wrong order, fast) to quantify the cost
  // of linguistic collation.
  auto names = Names(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::string> copy = names;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortNaiveBytes)->Arg(1000)->Arg(16000)->Arg(64000)->Arg(256000);

void BM_MakeSortKey(benchmark::State& state) {
  auto names = Names(10000);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::MakeSortKey(names[i % names.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MakeSortKey);

}  // namespace
}  // namespace authidx
