// B8: end-to-end ingest throughput into AuthorIndex — in-memory vs
// persistent, across batch sizes (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "authidx/core/author_index.h"
#include "authidx/workload/corpus.h"

namespace authidx::core {
namespace {

const std::vector<Entry>& Corpus() {
  static const std::vector<Entry>* corpus = [] {
    workload::CorpusOptions options;
    options.entries = 50000;
    options.authors = 5000;
    return new std::vector<Entry>(workload::GenerateCorpus(options));
  }();
  return *corpus;
}

void BM_IngestInMemory(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const auto& corpus = Corpus();
  for (auto _ : state) {
    auto catalog = AuthorIndex::Create();
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK(catalog->Add(corpus[i % corpus.size()]));
    }
    benchmark::DoNotOptimize(catalog->entry_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IngestInMemory)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_IngestPersistent(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const auto& corpus = Corpus();
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = std::filesystem::temp_directory_path().string() +
                      "/authidx_bench_ingest";
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    {
      auto catalog = AuthorIndex::OpenPersistent(dir);
      for (size_t i = 0; i < n; ++i) {
        AUTHIDX_CHECK_OK((*catalog)->Add(corpus[i % corpus.size()]));
      }
      AUTHIDX_CHECK_OK((*catalog)->Flush());
    }
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IngestPersistent)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ReopenPersistent(benchmark::State& state) {
  // Recovery cost: reopen a persisted catalog and rebuild indexes.
  size_t n = static_cast<size_t>(state.range(0));
  const auto& corpus = Corpus();
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/authidx_bench_reopen";
  std::filesystem::remove_all(dir);
  {
    auto catalog = AuthorIndex::OpenPersistent(dir);
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK((*catalog)->Add(corpus[i % corpus.size()]));
    }
    AUTHIDX_CHECK_OK((*catalog)->CompactStorage());
  }
  for (auto _ : state) {
    auto catalog = AuthorIndex::OpenPersistent(dir);
    benchmark::DoNotOptimize((*catalog)->entry_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ReopenPersistent)
    ->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace authidx::core
