// B3: point lookups — B+-tree vs sorted vector vs std::map vs hash map
// across corpus sizes (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "authidx/index/btree.h"

namespace authidx {
namespace {

std::vector<std::string> Keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(StringPrintf("author-%010zu", i * 7919 % (n * 8)));
  }
  return keys;
}

void BM_BTreeLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  BPlusTree tree;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert(keys[i], i);
  }
  Random rng(5);
  for (auto _ : state) {
    const std::string& key = keys[rng.Uniform(n)];
    benchmark::DoNotOptimize(tree.Get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SortedVectorLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::vector<std::pair<std::string, uint64_t>> sorted;
  sorted.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sorted.emplace_back(keys[i], i);
  }
  std::sort(sorted.begin(), sorted.end());
  Random rng(5);
  for (auto _ : state) {
    const std::string& key = keys[rng.Uniform(n)];
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), key,
        [](const auto& kv, const std::string& k) { return kv.first < k; });
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SortedVectorLookup)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_StdMapLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::map<std::string, uint64_t> map;
  for (size_t i = 0; i < n; ++i) {
    map[keys[i]] = i;
  }
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[rng.Uniform(n)]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StdMapLookup)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HashMapLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::unordered_map<std::string, uint64_t> map;
  for (size_t i = 0; i < n; ++i) {
    map[keys[i]] = i;
  }
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[rng.Uniform(n)]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashMapLookup)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_BTreeInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  for (auto _ : state) {
    BPlusTree tree;
    for (size_t i = 0; i < n; ++i) {
      tree.Insert(keys[i], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace authidx
