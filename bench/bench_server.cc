// B13: network serving — closed-loop client load against an in-process
// authidx_server over real loopback sockets. Reports client-observed
// p50/p99 round-trip latency at 1/4/8 concurrent connections, the
// pipelining win at depth 8, and an overload phase that drives the
// worker queue past its bound to demonstrate load shedding (the
// "shed_total" counter must end > 0; see docs/SERVER.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/net/client.h"
#include "authidx/net/server.h"
#include "authidx/workload/corpus.h"

namespace authidx::net {
namespace {

// In-memory catalog + running server, shared by every benchmark thread
// and leaked so teardown never lands in a timed region.
struct ServerFixture {
  std::unique_ptr<core::AuthorIndex> catalog;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerOptions options) {
    workload::CorpusOptions corpus;
    corpus.entries = 20000;
    corpus.authors = 2000;
    catalog = core::AuthorIndex::Create();
    AUTHIDX_CHECK_OK(catalog->AddAll(workload::GenerateCorpus(corpus)));
    options.metrics = catalog->mutable_metrics();
    server = std::make_unique<Server>(catalog.get(), options);
    AUTHIDX_CHECK_OK(server->Start());
  }
};

ServerFixture& QueryServer() {
  static ServerFixture* fixture = new ServerFixture(ServerOptions{});
  return *fixture;
}

Client MakeClient(int port, int max_attempts) {
  ClientOptions options;
  options.port = port;
  options.retry.max_attempts = max_attempts;
  return Client(options);
}

double PercentileUs(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) {
    return 0;
  }
  std::sort(ns->begin(), ns->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns->size() - 1));
  return static_cast<double>((*ns)[idx]) / 1000.0;
}

// Closed loop: each benchmark thread is one connection issuing
// synchronous queries back-to-back; latency is the full client-observed
// round trip (serialize, loopback, queue, execute, respond, parse).
void BM_ServerQueryClosedLoop(benchmark::State& state) {
  ServerFixture& f = QueryServer();
  Client client = MakeClient(f.server->port(), 3);
  std::vector<uint64_t> latencies_ns;
  for (auto _ : state) {
    uint64_t start = obs::MonotonicNowNs();
    auto result = client.Query("author:mc* limit:10");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->hits.data());
    latencies_ns.push_back(obs::MonotonicNowNs() - start);
  }
  state.counters["p50_us"] = benchmark::Counter(
      PercentileUs(&latencies_ns, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] = benchmark::Counter(
      PercentileUs(&latencies_ns, 0.99), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerQueryClosedLoop)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Pipelining: 8 requests on the wire before the first response is
// collected; compare per-item time against the closed loop above to see
// the per-round-trip overhead amortize away.
void BM_ServerQueryPipelined(benchmark::State& state) {
  ServerFixture& f = QueryServer();
  constexpr size_t kDepth = 8;
  Client client = MakeClient(f.server->port(), 1);
  if (Status s = client.Connect(); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  std::string payload;
  EncodeQueryRequest("author:mc* limit:10", &payload);
  for (auto _ : state) {
    for (size_t i = 0; i < kDepth; ++i) {
      uint64_t id = 0;
      if (Status s = client.SendRequest(Opcode::kQuery, payload, &id);
          !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    for (size_t i = 0; i < kDepth; ++i) {
      uint64_t id = 0;
      ResponsePayload response;
      if (Status s = client.ReceiveResponse(&id, &response); !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response.body.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDepth));
}
BENCHMARK(BM_ServerQueryPipelined)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

ServerFixture& OverloadServer() {
  static ServerFixture* fixture = [] {
    ServerOptions options;
    // One deliberately slow worker and a tiny queue: 8 closed-loop
    // clients must overflow admission control.
    options.num_workers = 1;
    options.queue_limit = 2;
    options.max_pipeline = 2;
    options.handler_delay_ms_for_test = 1;
    return new ServerFixture(options);
  }();
  return *fixture;
}

// Overload phase: more concurrent clients than the one slow worker can
// serve. Shed requests come back RETRYABLE_BUSY in microseconds (the
// point of shedding: reject fast, stay healthy); "shed_total" reports
// the server-side counter and must be > 0 for the run to be meaningful.
void BM_ServerOverloadShedding(benchmark::State& state) {
  ServerFixture& f = OverloadServer();
  Client client = MakeClient(f.server->port(), 1);
  uint64_t ok = 0;
  uint64_t busy = 0;
  for (auto _ : state) {
    Status s = client.Ping();
    if (s.ok()) {
      ++ok;
    } else if (s.IsResourceExhausted()) {
      ++busy;  // RETRYABLE_BUSY surfaced through StatusFromWire.
    } else {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.counters["ok"] =
      benchmark::Counter(static_cast<double>(ok), benchmark::Counter::kAvgThreads);
  state.counters["busy"] =
      benchmark::Counter(static_cast<double>(busy), benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    // Keep the snapshot alive past Find(): the pointers alias it.
    obs::MetricsSnapshot snapshot = f.server->metrics().Snapshot();
    const obs::MetricValue* shed =
        snapshot.Find("authidx_shed_requests_total");
    state.counters["shed_total"] = static_cast<double>(
        shed != nullptr ? shed->counter : 0);
    // Where the admitted requests' time went: queue wait vs execute.
    // Under overload queue_wait must dominate — that is what /rpcz
    // surfaces live and what this counter pins in the bench record.
    const obs::MetricValue* queue_wait =
        snapshot.Find("authidx_server_queue_wait_ns");
    if (queue_wait != nullptr) {
      state.counters["queue_wait_sum_us"] = static_cast<double>(
          queue_wait->histogram.sum) / 1000.0;
    }
    const obs::MetricValue* execute =
        snapshot.Find("authidx_server_execute_ns");
    if (execute != nullptr) {
      state.counters["execute_sum_us"] = static_cast<double>(
          execute->histogram.sum) / 1000.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerOverloadShedding)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace authidx::net
