// B13: network serving — closed-loop client load against an in-process
// authidx_server over real loopback sockets. Reports client-observed
// p50/p99 round-trip latency at 1/4/8 concurrent connections, the
// pipelining win at depth 8, and an overload phase that drives the
// worker queue past its bound to demonstrate load shedding (the
// "shed_total" counter must end > 0; see docs/SERVER.md).
//
// B14: replication — write-to-replica propagation lag against a live
// WAL-shipping follower, and bulk catch-up throughput over a cold
// subscription (see docs/REPLICATION.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/net/client.h"
#include "authidx/net/replica.h"
#include "authidx/net/server.h"
#include "authidx/parse/tsv.h"
#include "authidx/workload/corpus.h"

namespace authidx::net {
namespace {

// In-memory catalog + running server, shared by every benchmark thread
// and leaked so teardown never lands in a timed region.
struct ServerFixture {
  std::unique_ptr<core::AuthorIndex> catalog;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerOptions options) {
    workload::CorpusOptions corpus;
    corpus.entries = 20000;
    corpus.authors = 2000;
    catalog = core::AuthorIndex::Create();
    AUTHIDX_CHECK_OK(catalog->AddAll(workload::GenerateCorpus(corpus)));
    options.metrics = catalog->mutable_metrics();
    server = std::make_unique<Server>(catalog.get(), options);
    AUTHIDX_CHECK_OK(server->Start());
  }
};

ServerFixture& QueryServer() {
  static ServerFixture* fixture = new ServerFixture(ServerOptions{});
  return *fixture;
}

Client MakeClient(int port, int max_attempts) {
  ClientOptions options;
  options.port = port;
  options.retry.max_attempts = max_attempts;
  return Client(options);
}

double PercentileUs(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) {
    return 0;
  }
  std::sort(ns->begin(), ns->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns->size() - 1));
  return static_cast<double>((*ns)[idx]) / 1000.0;
}

// Closed loop: each benchmark thread is one connection issuing
// synchronous queries back-to-back; latency is the full client-observed
// round trip (serialize, loopback, queue, execute, respond, parse).
void BM_ServerQueryClosedLoop(benchmark::State& state) {
  ServerFixture& f = QueryServer();
  Client client = MakeClient(f.server->port(), 3);
  std::vector<uint64_t> latencies_ns;
  for (auto _ : state) {
    uint64_t start = obs::MonotonicNowNs();
    auto result = client.Query("author:mc* limit:10");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->hits.data());
    latencies_ns.push_back(obs::MonotonicNowNs() - start);
  }
  state.counters["p50_us"] = benchmark::Counter(
      PercentileUs(&latencies_ns, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] = benchmark::Counter(
      PercentileUs(&latencies_ns, 0.99), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerQueryClosedLoop)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Pipelining: 8 requests on the wire before the first response is
// collected; compare per-item time against the closed loop above to see
// the per-round-trip overhead amortize away.
void BM_ServerQueryPipelined(benchmark::State& state) {
  ServerFixture& f = QueryServer();
  constexpr size_t kDepth = 8;
  Client client = MakeClient(f.server->port(), 1);
  if (Status s = client.Connect(); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  std::string payload;
  EncodeQueryRequest("author:mc* limit:10", &payload);
  for (auto _ : state) {
    for (size_t i = 0; i < kDepth; ++i) {
      uint64_t id = 0;
      if (Status s = client.SendRequest(Opcode::kQuery, payload, &id);
          !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    for (size_t i = 0; i < kDepth; ++i) {
      uint64_t id = 0;
      ResponsePayload response;
      if (Status s = client.ReceiveResponse(&id, &response); !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response.body.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDepth));
}
BENCHMARK(BM_ServerQueryPipelined)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

ServerFixture& OverloadServer() {
  static ServerFixture* fixture = [] {
    ServerOptions options;
    // One deliberately slow worker and a tiny queue: 8 closed-loop
    // clients must overflow admission control.
    options.num_workers = 1;
    options.queue_limit = 2;
    options.max_pipeline = 2;
    options.handler_delay_ms_for_test = 1;
    return new ServerFixture(options);
  }();
  return *fixture;
}

// Overload phase: more concurrent clients than the one slow worker can
// serve. Shed requests come back RETRYABLE_BUSY in microseconds (the
// point of shedding: reject fast, stay healthy); "shed_total" reports
// the server-side counter and must be > 0 for the run to be meaningful.
void BM_ServerOverloadShedding(benchmark::State& state) {
  ServerFixture& f = OverloadServer();
  Client client = MakeClient(f.server->port(), 1);
  uint64_t ok = 0;
  uint64_t busy = 0;
  for (auto _ : state) {
    Status s = client.Ping();
    if (s.ok()) {
      ++ok;
    } else if (s.IsResourceExhausted()) {
      ++busy;  // RETRYABLE_BUSY surfaced through StatusFromWire.
    } else {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.counters["ok"] =
      benchmark::Counter(static_cast<double>(ok), benchmark::Counter::kAvgThreads);
  state.counters["busy"] =
      benchmark::Counter(static_cast<double>(busy), benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    // Keep the snapshot alive past Find(): the pointers alias it.
    obs::MetricsSnapshot snapshot = f.server->metrics().Snapshot();
    const obs::MetricValue* shed =
        snapshot.Find("authidx_shed_requests_total");
    state.counters["shed_total"] = static_cast<double>(
        shed != nullptr ? shed->counter : 0);
    // Where the admitted requests' time went: queue wait vs execute.
    // Under overload queue_wait must dominate — that is what /rpcz
    // surfaces live and what this counter pins in the bench record.
    const obs::MetricValue* queue_wait =
        snapshot.Find("authidx_server_queue_wait_ns");
    if (queue_wait != nullptr) {
      state.counters["queue_wait_sum_us"] = static_cast<double>(
          queue_wait->histogram.sum) / 1000.0;
    }
    const obs::MetricValue* execute =
        snapshot.Find("authidx_server_execute_ns");
    if (execute != nullptr) {
      state.counters["execute_sum_us"] = static_cast<double>(
          execute->histogram.sum) / 1000.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerOverloadShedding)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Persistent primary + server + persistent follower over loopback,
// leaked like the fixtures above. The entry pool is pre-generated so
// corpus synthesis never lands in a timed region.
struct ReplFixture {
  std::string primary_dir;
  std::string replica_dir;
  std::unique_ptr<core::AuthorIndex> primary;
  std::unique_ptr<Server> server;
  std::unique_ptr<core::AuthorIndex> replica;
  std::unique_ptr<ReplicationFollower> follower;
  std::vector<Entry> pool;
  size_t next = 0;

  explicit ReplFixture(const char* tag) {
    std::string base = std::filesystem::temp_directory_path().string() +
                       "/authidx_bench_repl_" + tag;
    primary_dir = base + "_primary";
    replica_dir = base + "_replica";
    std::filesystem::remove_all(primary_dir);
    std::filesystem::remove_all(replica_dir);

    workload::CorpusOptions corpus;
    corpus.entries = 50000;
    pool = workload::GenerateCorpus(corpus);

    primary = *core::AuthorIndex::OpenPersistent(primary_dir);
    ServerOptions options;
    options.metrics = primary->mutable_metrics();
    server = std::make_unique<Server>(primary.get(), options);
    AUTHIDX_CHECK_OK(server->Start());

    replica = *core::AuthorIndex::OpenReplica(replica_dir);
    ReplicaOptions replica_options;
    replica_options.primary_port = server->port();
    replica_options.metrics = replica->mutable_metrics();
    follower = std::make_unique<ReplicationFollower>(
        replica.get(), replica_dir, replica_options);
  }

  Entry Next() { return pool[next++ % pool.size()]; }
};

// Propagation lag: one ADD over RPC (the production mutation path —
// the server kicks the replication feeder on commit), then spin until
// the live follower's applied position reaches the primary's committed
// frontier. This is the freshness window a replica-served read can lag
// behind an acked write (the follower applies with synced writes, so
// each sample includes its group-commit fsync).
void BM_ReplicationPropagation(benchmark::State& state) {
  static ReplFixture* f = [] {
    auto* fixture = new ReplFixture("prop");
    AUTHIDX_CHECK_OK(fixture->follower->Start());
    return fixture;
  }();
  Client client = MakeClient(f->server->port(), 3);
  std::vector<uint64_t> latencies_ns;
  for (auto _ : state) {
    std::string line = EntryToTsvLine(f->Next());
    uint64_t start = obs::MonotonicNowNs();
    auto added = client.Add({line});
    if (!added.ok()) {
      state.SkipWithError(added.status().ToString().c_str());
      return;
    }
    storage::WalPosition target =
        f->primary->storage_engine()->CommittedWalPosition();
    while (f->follower->applied_position() < target) {
      std::this_thread::yield();
    }
    latencies_ns.push_back(obs::MonotonicNowNs() - start);
  }
  state.counters["p50_us"] = PercentileUs(&latencies_ns, 0.50);
  state.counters["p99_us"] = PercentileUs(&latencies_ns, 0.99);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicationPropagation)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Bulk catch-up: the follower is offline while the primary ingests a
// batch, then one synchronous CatchUpOnce() subscribes and drains the
// backlog. Items/s is replicated records applied per second, connection
// setup amortized over the batch.
void BM_ReplicationCatchUp(benchmark::State& state) {
  static ReplFixture* f = new ReplFixture("catchup");
  constexpr size_t kBatch = 512;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Entry> batch;
    batch.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      batch.push_back(f->Next());
    }
    if (Status s = f->primary->AddAll(std::move(batch)); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    if (Status s = f->follower->CatchUpOnce(); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_ReplicationCatchUp)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace authidx::net
