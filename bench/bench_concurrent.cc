// B12: storage concurrency — multithreaded point lookups, mixed
// read/write, and synced-write group commit at 1/2/4/8 threads.
//
// Read scaling comes from snapshot-pinned lock-free reads (Get holds the
// engine mutex only to pin {memtable, imm, version}); write scaling under
// sync_writes comes from the writer queue's group commit (one leader
// fsync covers every queued writer). NOTE: thread-count scaling is only
// observable with as many physical cores; on a single-core host the
// per-thread rates collapse onto the 1-thread curve (see
// docs/BENCHMARKS.md for the recorded numbers and hardware).

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "authidx/common/random.h"
#include "authidx/common/strings.h"
#include "authidx/storage/engine.h"

namespace authidx::storage {
namespace {

std::string FreshDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/authidx_bench_conc_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Shared compacted engine for the lookup benchmarks (leaked, like the
// other bench fixtures, so teardown cost never lands in a timed region).
struct LookupFixture {
  std::string dir;
  std::unique_ptr<StorageEngine> engine;
  size_t n = 100000;

  LookupFixture() {
    dir = FreshDir("lookup");
    EngineOptions options;
    options.memtable_bytes = 1 << 20;
    auto opened = StorageEngine::Open(dir, options);
    engine = std::move(opened).value();
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK(engine->Put(StringPrintf("key%010zu", i),
                                   "value-payload-0123456789"));
    }
    AUTHIDX_CHECK_OK(engine->Compact());
  }
};

LookupFixture& Lookups() {
  static LookupFixture* fixture = new LookupFixture();
  return *fixture;
}

// Point lookups from N threads against an immutable store: measures how
// well the read path scales when nothing contends but the block cache
// shards and the brief snapshot-pin critical section.
void BM_ConcurrentPointLookup(benchmark::State& state) {
  LookupFixture& f = Lookups();
  Random rng(static_cast<uint64_t>(state.thread_index()) * 7919 + 3);
  for (auto _ : state) {
    size_t i = rng.Next64() % f.n;
    auto found = f.engine->Get(StringPrintf("key%010zu", i));
    if (!found.ok() || !found->has_value()) {
      state.SkipWithError("lookup miss");
      return;
    }
    benchmark::DoNotOptimize(*found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentPointLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// One writer thread streams puts while the remaining threads do point
// lookups: measures read latency shielded from flush/compaction work by
// the background thread and snapshot reads.
struct MixedFixture {
  std::string dir;
  std::unique_ptr<StorageEngine> engine;
  size_t n = 50000;
  std::atomic<uint64_t> next_key{0};

  MixedFixture() {
    dir = FreshDir("mixed");
    EngineOptions options;
    options.memtable_bytes = 1 << 20;
    options.l0_compaction_trigger = 4;
    auto opened = StorageEngine::Open(dir, options);
    engine = std::move(opened).value();
    for (size_t i = 0; i < n; ++i) {
      AUTHIDX_CHECK_OK(engine->Put(StringPrintf("key%010zu", i),
                                   "value-payload-0123456789"));
    }
    AUTHIDX_CHECK_OK(engine->Flush());
    next_key.store(n);
  }
};

MixedFixture& Mixed() {
  static MixedFixture* fixture = new MixedFixture();
  return *fixture;
}

void BM_ConcurrentMixedReadWrite(benchmark::State& state) {
  MixedFixture& f = Mixed();
  Random rng(static_cast<uint64_t>(state.thread_index()) * 104729 + 7);
  if (state.threads() > 1 && state.thread_index() == 0) {
    // Writer thread: append fresh keys.
    for (auto _ : state) {
      uint64_t key = f.next_key.fetch_add(1, std::memory_order_relaxed);
      AUTHIDX_CHECK_OK(f.engine->Put(StringPrintf("key%010zu", key),
                                     "value-payload-0123456789"));
    }
  } else {
    for (auto _ : state) {
      size_t i = rng.Next64() % f.n;
      auto found = f.engine->Get(StringPrintf("key%010zu", i));
      if (!found.ok() || !found->has_value()) {
        state.SkipWithError("lookup miss");
        return;
      }
      benchmark::DoNotOptimize(*found);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentMixedReadWrite)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Synced writes from N threads: with sync_writes every commit is an
// fsync, and the group-commit leader amortizes it over all writers
// queued behind it — the per-write cost should FALL as threads rise.
void BM_GroupCommitSyncedWrites(benchmark::State& state) {
  static std::string dir = FreshDir("sync");
  static StorageEngine* engine = [] {
    EngineOptions options;
    options.sync_writes = true;
    options.memtable_bytes = 8 << 20;
    auto opened = StorageEngine::Open(dir, options);
    return std::move(opened).value().release();
  }();
  static std::atomic<uint64_t> next_key{0};
  for (auto _ : state) {
    uint64_t key = next_key.fetch_add(1, std::memory_order_relaxed);
    AUTHIDX_CHECK_OK(
        engine->Put(StringPrintf("key%012zu", key), "value-payload"));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    obs::MetricsSnapshot snapshot = engine->metrics().Snapshot();
    const obs::MetricValue* batches =
        snapshot.Find("authidx_group_commit_batches_total");
    const obs::MetricValue* writes =
        snapshot.Find("authidx_group_commit_writes_total");
    if (batches != nullptr && writes != nullptr && batches->counter > 0) {
      state.counters["mean_group_size"] =
          static_cast<double>(writes->counter) /
          static_cast<double>(batches->counter);
    }
  }
}
BENCHMARK(BM_GroupCommitSyncedWrites)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace authidx::storage
