// B1: integer coding and checksum throughput (DESIGN.md §3).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"
#include "authidx/common/random.h"

namespace authidx {
namespace {

std::vector<uint64_t> MixedMagnitudeValues(size_t n) {
  Random rng(42);
  std::vector<uint64_t> values(n);
  for (auto& v : values) {
    v = rng.Skewed(60);
  }
  return values;
}

void BM_VarintEncode(benchmark::State& state) {
  auto values = MixedMagnitudeValues(64 * 1024);
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v : values) {
      PutVarint64(&buf, v);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(values.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  auto values = MixedMagnitudeValues(64 * 1024);
  std::string buf;
  for (uint64_t v : values) {
    PutVarint64(&buf, v);
  }
  for (auto _ : state) {
    std::string_view input = buf;
    uint64_t sink = 0;
    uint64_t v;
    while (!input.empty() && GetVarint64(&input, &v).ok()) {
      sink += v;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_VarintDecode);

void BM_Fixed64Roundtrip(benchmark::State& state) {
  auto values = MixedMagnitudeValues(64 * 1024);
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v : values) {
      PutFixed64(&buf, v);
    }
    uint64_t sink = 0;
    for (size_t off = 0; off + 8 <= buf.size(); off += 8) {
      sink += DecodeFixed64(buf.data() + off);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Fixed64Roundtrip);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  Random rng(7);
  for (auto& c : data) {
    c = static_cast<char>(rng.Next64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_ZigZag(benchmark::State& state) {
  auto values = MixedMagnitudeValues(64 * 1024);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (uint64_t v : values) {
      sink += ZigZagEncode64(ZigZagDecode64(v));
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(values.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ZigZag);

}  // namespace
}  // namespace authidx
