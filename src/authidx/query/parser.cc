#include "authidx/query/parser.h"

#include <vector>

#include "authidx/common/strings.h"
#include "authidx/text/normalize.h"
#include "authidx/text/tokenize.h"

namespace authidx::query {
namespace {

// Splits into clauses on whitespace, keeping "quoted spans" together.
// Quotes may appear after a field prefix (title:"coal mining").
std::vector<std::string> SplitClauses(std::string_view text) {
  std::vector<std::string> clauses;
  std::string current;
  bool in_quotes = false;
  for (char c : text) {
    if (c == '"') {
      in_quotes = !in_quotes;
      continue;  // Quotes delimit; they are not part of the value.
    }
    if (!in_quotes && (c == ' ' || c == '\t' || c == '\n')) {
      if (!current.empty()) {
        clauses.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    clauses.push_back(std::move(current));
  }
  return clauses;
}

Result<NumRange> ParseRange(std::string_view value) {
  NumRange range;
  size_t dots = value.find("..");
  auto parse_u32 = [](std::string_view s) -> Result<uint32_t> {
    AUTHIDX_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(s));
    if (v > UINT32_MAX) {
      return Status::OutOfRange("range bound too large");
    }
    return static_cast<uint32_t>(v);
  };
  if (dots == std::string_view::npos) {
    AUTHIDX_ASSIGN_OR_RETURN(uint32_t v, parse_u32(value));
    range.lo = range.hi = v;
    return range;
  }
  std::string_view lo = value.substr(0, dots);
  std::string_view hi = value.substr(dots + 2);
  if (!lo.empty()) {
    AUTHIDX_ASSIGN_OR_RETURN(range.lo, parse_u32(lo));
  }
  if (!hi.empty()) {
    AUTHIDX_ASSIGN_OR_RETURN(range.hi, parse_u32(hi));
  }
  if (range.lo > range.hi) {
    return Status::InvalidArgument("empty range: " + std::string(value));
  }
  return range;
}

void AddTitleTerms(std::string_view value, std::vector<std::string>* terms) {
  for (std::string& token : text::Tokenize(value)) {
    terms->push_back(std::move(token));
  }
}

Status SetAuthorClause(Query* query, std::string_view value, bool fuzzy) {
  if (query->author_exact || query->author_prefix || query->author_fuzzy) {
    return Status::InvalidArgument("multiple author clauses");
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty author clause");
  }
  std::string folded = text::NormalizeForIndex(value);
  if (fuzzy) {
    query->author_fuzzy = folded;
  } else if (!folded.empty() && folded.back() == '*') {
    folded.pop_back();
    query->author_prefix = folded;
  } else {
    query->author_exact = folded;
  }
  return Status::OK();
}

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Query query;
  for (const std::string& clause : SplitClauses(text)) {
    std::string_view c = clause;
    if (c.front() == '-' && c.size() > 1) {
      AddTitleTerms(c.substr(1), &query.not_terms);
      continue;
    }
    size_t colon = c.find(':');
    size_t tilde = c.find('~');
    if (tilde != std::string_view::npos &&
        (colon == std::string_view::npos || tilde < colon) &&
        c.substr(0, tilde) == "author") {
      AUTHIDX_RETURN_NOT_OK(
          SetAuthorClause(&query, c.substr(tilde + 1), /*fuzzy=*/true));
      continue;
    }
    if (colon == std::string_view::npos) {
      AddTitleTerms(c, &query.title_terms);
      continue;
    }
    std::string_view field = c.substr(0, colon);
    std::string_view value = c.substr(colon + 1);
    if (field == "author") {
      AUTHIDX_RETURN_NOT_OK(SetAuthorClause(&query, value, /*fuzzy=*/false));
    } else if (field == "coauthor") {
      if (value.empty()) {
        return Status::InvalidArgument("empty coauthor clause");
      }
      query.coauthor = text::NormalizeForIndex(value);
    } else if (field == "title") {
      AddTitleTerms(value, &query.title_terms);
    } else if (field == "year") {
      AUTHIDX_ASSIGN_OR_RETURN(NumRange r, ParseRange(value));
      query.year = r;
    } else if (field == "vol" || field == "volume") {
      AUTHIDX_ASSIGN_OR_RETURN(NumRange r, ParseRange(value));
      query.volume = r;
    } else if (field == "student") {
      if (value == "yes" || value == "true" || value == "1") {
        query.student = true;
      } else if (value == "no" || value == "false" || value == "0") {
        query.student = false;
      } else {
        return Status::InvalidArgument("student: expects yes/no, got " +
                                       std::string(value));
      }
    } else if (field == "order") {
      if (value == "relevance") {
        query.rank = RankMode::kRelevance;
      } else if (value == "index" || value == "collation") {
        query.rank = RankMode::kCollation;
      } else {
        return Status::InvalidArgument("order: expects relevance/index");
      }
    } else if (field == "limit") {
      AUTHIDX_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(value));
      query.limit = static_cast<size_t>(v);
    } else if (field == "offset") {
      AUTHIDX_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(value));
      query.offset = static_cast<size_t>(v);
    } else {
      return Status::InvalidArgument("unknown query field: " +
                                     std::string(field));
    }
  }
  if (query.author_fuzzy && query.fuzzy_max_edits > 4) {
    return Status::InvalidArgument("fuzzy budget too large");
  }
  return query;
}

}  // namespace authidx::query
