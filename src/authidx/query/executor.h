#ifndef AUTHIDX_QUERY_EXECUTOR_H_
#define AUTHIDX_QUERY_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/index/inverted.h"
#include "authidx/model/record.h"
#include "authidx/obs/metrics.h"
#include "authidx/obs/trace.h"
#include "authidx/query/ast.h"
#include "authidx/query/planner.h"

namespace authidx::query {

/// The read surface the executor runs against. Implemented by
/// core::AuthorIndex; defined here so the query library does not depend
/// on the core layer.
class CatalogView {
 public:
  virtual ~CatalogView() = default;

  /// Entry lookup; nullptr for unknown ids.
  virtual const Entry* GetEntry(EntryId id) const = 0;

  /// Total entries (ids are dense 0..entry_count-1).
  virtual size_t entry_count() const = 0;

  /// Inverted index over analyzed titles.
  virtual const InvertedIndex& title_index() const = 0;

  /// Entry ids of the author group exactly matching the folded group key
  /// ("surname, given[, suffix]" after NormalizeForIndex). Sorted.
  virtual std::vector<EntryId> AuthorExact(
      std::string_view folded_group) const = 0;

  /// Entry ids of all author groups whose folded key starts with
  /// `folded_prefix`, capped at `max_groups` groups. Sorted, deduped.
  virtual std::vector<EntryId> AuthorPrefix(std::string_view folded_prefix,
                                            size_t max_groups) const = 0;

  /// Entry ids of author groups whose surname is within `max_edits` of
  /// `folded_name` (candidates pre-filtered by phonetic bucket). Sorted.
  virtual std::vector<EntryId> AuthorFuzzy(std::string_view folded_name,
                                           size_t max_edits) const = 0;

  /// memcmp-ordered author collation key for the entry (printed order).
  virtual std::string_view SortKey(EntryId id) const = 0;
};

/// One query hit.
struct Hit {
  EntryId id = 0;
  /// BM25 score when ranked by relevance; 0 in collation order.
  double score = 0.0;

  friend bool operator==(const Hit&, const Hit&) = default;
};

/// Executor output.
struct QueryResult {
  std::vector<Hit> hits;
  /// Matches before offset/limit. On the pruned top-k path this counts
  /// only the matches the pruning loop actually verified — a lower
  /// bound whenever total_is_lower_bound is set (Lucene-style
  /// "greater than or equal" totals).
  size_t total_matches = 0;
  /// True when pruning skipped candidates unscored, making
  /// total_matches a lower bound rather than an exact count.
  bool total_is_lower_bound = false;
  /// The access path the planner chose (exposed for tests/benchmarks).
  PlanKind plan = PlanKind::kFullScan;
  /// Postings decoded / provably skipped by the pruned top-k path
  /// (both 0 on every other path, where decoding is exhaustive and
  /// already counted by authidx_inverted_postings_decoded_total).
  uint64_t postings_decoded = 0;
  uint64_t postings_skipped = 0;
};

/// Optional observability hooks for Execute. Histogram/counter pointers
/// are instruments owned by a caller's obs::MetricsRegistry (recorded
/// into without allocation, thread-safe); `trace` is a per-request span
/// buffer (single-threaded, owned by the caller). Any field may be
/// null; a default-constructed ExecObs disables everything.
struct ExecObs {
  /// Per-request span buffer; receives one span per executor stage.
  obs::Trace* trace = nullptr;
  /// Stage latency histograms, all in ns.
  obs::LatencyHistogram* stage_plan_ns = nullptr;
  obs::LatencyHistogram* stage_candidates_ns = nullptr;
  obs::LatencyHistogram* stage_filter_ns = nullptr;
  obs::LatencyHistogram* stage_order_ns = nullptr;
  /// Chosen-access-path counters, indexed by static_cast<size_t>(PlanKind).
  obs::Counter* plan_chosen[kPlanKindCount] = {};
  /// Postings the pruned top-k path proved it could skip undecoded
  /// (authidx_postings_skipped_total). The decoded complement is
  /// recorded by the inverted index itself.
  obs::Counter* postings_skipped = nullptr;
  /// Queries where top-k pruning actually skipped work
  /// (authidx_topk_pruned_queries_total).
  obs::Counter* topk_pruned_queries = nullptr;
};

/// Plans and runs `query` against `catalog`. When `hooks` is non-null,
/// stage timings, the chosen plan, and (if hooks->trace is set) a span
/// tree are recorded into it.
Result<QueryResult> Execute(const Query& query, const CatalogView& catalog,
                            const ExecObs* hooks = nullptr);

}  // namespace authidx::query

#endif  // AUTHIDX_QUERY_EXECUTOR_H_
