#include "authidx/query/executor.h"

#include <algorithm>
#include <limits>

#include "authidx/index/postings.h"
#include "authidx/index/ranker.h"
#include "authidx/text/normalize.h"

namespace authidx::query {
namespace {

// Candidate generation for the chosen access path. Returns sorted ids.
Result<std::vector<EntryId>> Candidates(const Query& query, const Plan& plan,
                                        const CatalogView& catalog) {
  switch (plan.kind) {
    case PlanKind::kAuthorExact:
      return catalog.AuthorExact(*query.author_exact);
    case PlanKind::kAuthorPrefix:
      return catalog.AuthorPrefix(*query.author_prefix,
                                  /*max_groups=*/100000);
    case PlanKind::kAuthorFuzzy:
      return catalog.AuthorFuzzy(*query.author_fuzzy,
                                 query.fuzzy_max_edits);
    case PlanKind::kTitleTerms: {
      // Conjunction, rarest term first to keep intermediates small.
      std::vector<std::string> terms = query.title_terms;
      const InvertedIndex& index = catalog.title_index();
      std::sort(terms.begin(), terms.end(),
                [&](const std::string& a, const std::string& b) {
                  return index.DocFreq(a) < index.DocFreq(b);
                });
      std::vector<EntryId> acc = index.GetDocs(terms.front());
      for (size_t i = 1; i < terms.size() && !acc.empty(); ++i) {
        acc = Intersect(acc, index.GetDocs(terms[i]));
      }
      return acc;
    }
    case PlanKind::kFullScan: {
      std::vector<EntryId> all(catalog.entry_count());
      for (size_t i = 0; i < all.size(); ++i) {
        all[i] = static_cast<EntryId>(i);
      }
      return all;
    }
    case PlanKind::kTitleTopK:
      // Handled by Execute before candidate generation; the pruned
      // ranker never materializes a candidate set.
      return Status::Internal("kTitleTopK has no candidate stage");
  }
  return Status::Internal("unreachable plan kind");
}

// True if `id` passes every residual predicate.
bool PassesFilters(const Query& query, const Plan& plan,
                   const CatalogView& catalog, EntryId id) {
  const Entry* entry = catalog.GetEntry(id);
  if (entry == nullptr) {
    return false;
  }
  if (query.year && !query.year->Contains(entry->citation.year)) {
    return false;
  }
  if (query.volume && !query.volume->Contains(entry->citation.volume)) {
    return false;
  }
  if (query.student && entry->author.student_material != *query.student) {
    return false;
  }
  if (query.coauthor) {
    bool found = false;
    for (const std::string& coauthor : entry->coauthors) {
      std::string folded = text::NormalizeForIndex(coauthor);
      if (folded.find(*query.coauthor) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  // Title terms are residual when the author path was primary.
  if (!query.title_terms.empty() && plan.kind != PlanKind::kTitleTerms) {
    const InvertedIndex& index = catalog.title_index();
    for (const std::string& term : query.title_terms) {
      std::vector<EntryId> docs = index.GetDocs(term);
      if (!std::binary_search(docs.begin(), docs.end(), id)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<QueryResult> Execute(const Query& query, const CatalogView& catalog,
                            const ExecObs* hooks) {
  static const ExecObs kNoObs;
  if (hooks == nullptr) {
    hooks = &kNoObs;
  }

  // Plan.
  PlannerStats stats;
  Plan plan;
  {
    obs::TraceSpan span(hooks->trace, hooks->stage_plan_ns, "plan");
    stats.entry_count = catalog.entry_count();
    stats.has_title_terms = !query.title_terms.empty();
    if (stats.has_title_terms) {
      stats.min_term_df = std::numeric_limits<size_t>::max();
      for (const std::string& term : query.title_terms) {
        size_t df = catalog.title_index().DocFreq(term);
        stats.min_term_df = std::min(stats.min_term_df, df);
        stats.total_term_df += df;
        if (df == 0) {
          stats.unknown_term = true;
        }
      }
      if (stats.unknown_term) {
        stats.min_term_df = 0;
      }
    }
    plan = ChoosePlan(query, stats);
  }
  if (obs::Counter* chosen =
          hooks->plan_chosen[static_cast<size_t>(plan.kind)]) {
    chosen->Inc();
  }

  QueryResult result;
  result.plan = plan.kind;
  if (plan.provably_empty) {
    return result;
  }

  if (plan.kind == PlanKind::kTitleTopK) {
    // Pruned BM25 top-k: the ranker drives the skip-aware cursors
    // directly — no candidate materialization, no residual filters (the
    // planner only picks this path when none apply). Results are
    // bit-identical to the exhaustive kTitleTerms + relevance path.
    obs::TraceSpan span(hooks->trace, hooks->stage_order_ns, "topk_prune");
    TopKStats tstats;
    const size_t need = query.offset + query.limit;
    std::vector<ScoredDoc> top = RankBm25TopKConjunctive(
        catalog.title_index(), query.title_terms, need, Bm25Params{},
        &tstats);
    result.total_matches = static_cast<size_t>(tstats.matches_seen);
    result.total_is_lower_bound = tstats.pruned;
    result.postings_decoded = tstats.postings_decoded;
    result.postings_skipped = tstats.postings_skipped;
    const size_t begin = std::min(query.offset, top.size());
    result.hits.reserve(top.size() - begin);
    for (size_t i = begin; i < top.size(); ++i) {
      result.hits.push_back(Hit{top[i].doc, top[i].score});
    }
    if (hooks->postings_skipped != nullptr && tstats.postings_skipped > 0) {
      hooks->postings_skipped->Inc(tstats.postings_skipped);
    }
    if (hooks->topk_pruned_queries != nullptr && tstats.pruned) {
      hooks->topk_pruned_queries->Inc();
    }
    return result;
  }

  // Candidates, minus exclusions, through residual filters.
  std::vector<EntryId> candidates;
  {
    obs::TraceSpan span(hooks->trace, hooks->stage_candidates_ns,
                        "candidates");
    AUTHIDX_ASSIGN_OR_RETURN(candidates, Candidates(query, plan, catalog));
    if (!query.not_terms.empty()) {
      std::vector<EntryId> excluded;
      for (const std::string& term : query.not_terms) {
        excluded = Union(excluded, catalog.title_index().GetDocs(term));
      }
      candidates = Difference(candidates, excluded);
    }
  }
  std::vector<EntryId> matches;
  {
    obs::TraceSpan span(hooks->trace, hooks->stage_filter_ns, "filter");
    matches.reserve(candidates.size());
    for (EntryId id : candidates) {
      if (PassesFilters(query, plan, catalog, id)) {
        matches.push_back(id);
      }
    }
  }
  result.total_matches = matches.size();

  // Order.
  obs::TraceSpan order_span(hooks->trace, hooks->stage_order_ns, "order");
  std::vector<Hit> ordered;
  ordered.reserve(matches.size());
  if (query.rank == RankMode::kRelevance && !query.title_terms.empty()) {
    // Score the matched set with BM25; matches absent from the ranked
    // list (possible only with empty term lists) keep score 0.
    std::vector<ScoredDoc> ranked = RankBm25(
        catalog.title_index(), query.title_terms, catalog.entry_count());
    std::vector<double> score_of(catalog.entry_count(), 0.0);
    for (const ScoredDoc& sd : ranked) {
      if (sd.doc < score_of.size()) {
        score_of[sd.doc] = sd.score;
      }
    }
    for (EntryId id : matches) {
      ordered.push_back(Hit{id, id < score_of.size() ? score_of[id] : 0.0});
    }
    std::sort(ordered.begin(), ordered.end(), [](const Hit& a, const Hit& b) {
      if (a.score != b.score) {
        return a.score > b.score;
      }
      return a.id < b.id;
    });
  } else {
    for (EntryId id : matches) {
      ordered.push_back(Hit{id, 0.0});
    }
    std::sort(ordered.begin(), ordered.end(),
              [&](const Hit& a, const Hit& b) {
                std::string_view ka = catalog.SortKey(a.id);
                std::string_view kb = catalog.SortKey(b.id);
                if (ka != kb) {
                  return ka < kb;
                }
                const Entry* ea = catalog.GetEntry(a.id);
                const Entry* eb = catalog.GetEntry(b.id);
                if (ea->citation.volume != eb->citation.volume) {
                  return ea->citation.volume < eb->citation.volume;
                }
                if (ea->citation.page != eb->citation.page) {
                  return ea->citation.page < eb->citation.page;
                }
                return a.id < b.id;
              });
  }

  // Paginate.
  size_t begin = std::min(query.offset, ordered.size());
  size_t end = std::min(begin + query.limit, ordered.size());
  result.hits.assign(ordered.begin() + static_cast<ptrdiff_t>(begin),
                     ordered.begin() + static_cast<ptrdiff_t>(end));
  return result;
}

}  // namespace authidx::query
