#ifndef AUTHIDX_QUERY_AST_H_
#define AUTHIDX_QUERY_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace authidx::query {

/// Inclusive numeric range filter.
struct NumRange {
  uint32_t lo = 0;
  uint32_t hi = UINT32_MAX;

  bool Contains(uint32_t v) const { return v >= lo && v <= hi; }

  friend bool operator==(const NumRange&, const NumRange&) = default;
};

/// How results are ordered.
enum class RankMode {
  /// Printed-index order: author collation key, then volume, then page.
  kCollation,
  /// BM25 relevance over the title terms (falls back to collation when
  /// the query has no title terms).
  kRelevance,
};

/// A parsed structured query. Produced by ParseQuery from strings like:
///
///   author:mcginley title:"surface mining" year:1976..1985 -tax
///   author:sm* vol:82 student:yes order:relevance limit:20
///   author~jonson
///
/// Semantics:
///  * at most one of author_exact / author_prefix / author_fuzzy;
///  * title terms are conjunctive (AND); a quoted phrase contributes its
///    tokens (the index is not positional, documented limitation);
///  * `-term` excludes entries whose title contains the term.
struct Query {
  std::optional<std::string> author_exact;
  std::optional<std::string> author_prefix;
  std::optional<std::string> author_fuzzy;
  /// Analyzed (folded/stemmed) title terms, conjunctive.
  std::vector<std::string> title_terms;
  /// Analyzed excluded terms.
  std::vector<std::string> not_terms;
  /// Folded substring that must appear in some coauthor name
  /// (cross-reference filter: "who wrote with X?").
  std::optional<std::string> coauthor;
  std::optional<NumRange> year;
  std::optional<NumRange> volume;
  /// Filter on the student-material asterisk.
  std::optional<bool> student;
  RankMode rank = RankMode::kCollation;
  size_t offset = 0;
  size_t limit = 100;

  /// Fuzzy match budget (edit distance) for author_fuzzy.
  size_t fuzzy_max_edits = 2;

  /// True when nothing constrains the candidate set (pure scan).
  bool IsUnconstrained() const {
    return !author_exact && !author_prefix && !author_fuzzy &&
           title_terms.empty();
  }

  /// Debug rendering (stable, used in tests).
  std::string ToString() const;
};

}  // namespace authidx::query

#endif  // AUTHIDX_QUERY_AST_H_
