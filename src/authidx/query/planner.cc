#include "authidx/query/planner.h"

namespace authidx::query {

std::string_view PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kAuthorExact:
      return "author-exact";
    case PlanKind::kAuthorPrefix:
      return "author-prefix";
    case PlanKind::kAuthorFuzzy:
      return "author-fuzzy";
    case PlanKind::kTitleTerms:
      return "title-terms";
    case PlanKind::kFullScan:
      return "full-scan";
  }
  return "unknown";
}

Plan ChoosePlan(const Query& query, const PlannerStats& stats) {
  Plan plan;
  if (query.author_exact) {
    plan.kind = PlanKind::kAuthorExact;
    plan.estimated_candidates = 4;  // Typical entries per author.
    return plan;
  }
  if (query.author_prefix) {
    plan.kind = PlanKind::kAuthorPrefix;
    // A prefix covers a subtree; assume a small slice of the corpus.
    plan.estimated_candidates = stats.entry_count / 64 + 4;
    return plan;
  }
  if (query.author_fuzzy) {
    plan.kind = PlanKind::kAuthorFuzzy;
    plan.estimated_candidates = stats.entry_count / 128 + 4;
    return plan;
  }
  if (stats.has_title_terms) {
    plan.kind = PlanKind::kTitleTerms;
    if (stats.unknown_term) {
      plan.provably_empty = true;
      plan.estimated_candidates = 0;
    } else {
      // Conjunction is bounded by the rarest term's postings.
      plan.estimated_candidates = stats.min_term_df;
    }
    return plan;
  }
  plan.kind = PlanKind::kFullScan;
  plan.estimated_candidates = stats.entry_count;
  return plan;
}

}  // namespace authidx::query
