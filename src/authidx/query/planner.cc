#include "authidx/query/planner.h"

namespace authidx::query {

std::string_view PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kAuthorExact:
      return "author-exact";
    case PlanKind::kAuthorPrefix:
      return "author-prefix";
    case PlanKind::kAuthorFuzzy:
      return "author-fuzzy";
    case PlanKind::kTitleTerms:
      return "title-terms";
    case PlanKind::kFullScan:
      return "full-scan";
    case PlanKind::kTitleTopK:
      return "title-topk";
  }
  return "unknown";
}

namespace {

// True when the pruned top-k path can serve the query: relevance
// ranking over title terms only, with every filter absent (the pruned
// ranker scores the raw conjunction; residual predicates would need
// post-filtering, which breaks its "top k of what I scored" contract)
// and a bounded result window.
bool TopKPrunable(const Query& query) {
  return query.rank == RankMode::kRelevance && query.not_terms.empty() &&
         !query.coauthor && !query.year && !query.volume && !query.student &&
         query.limit > 0 && query.limit <= kMaxTopKResults &&
         query.offset <= kMaxTopKResults - query.limit;
}

}  // namespace

Plan ChoosePlan(const Query& query, const PlannerStats& stats) {
  Plan plan;
  if (query.author_exact) {
    plan.kind = PlanKind::kAuthorExact;
    plan.estimated_candidates = 4;  // Typical entries per author.
    return plan;
  }
  if (query.author_prefix) {
    plan.kind = PlanKind::kAuthorPrefix;
    // A prefix covers a subtree; assume a small slice of the corpus.
    plan.estimated_candidates = stats.entry_count / 64 + 4;
    return plan;
  }
  if (query.author_fuzzy) {
    plan.kind = PlanKind::kAuthorFuzzy;
    plan.estimated_candidates = stats.entry_count / 128 + 4;
    return plan;
  }
  if (stats.has_title_terms) {
    plan.kind = PlanKind::kTitleTerms;
    if (stats.unknown_term) {
      plan.provably_empty = true;
      plan.estimated_candidates = 0;
    } else {
      // Conjunction is bounded by the rarest term's postings.
      plan.estimated_candidates = stats.min_term_df;
      if (TopKPrunable(query)) {
        plan.kind = PlanKind::kTitleTopK;
      }
    }
    return plan;
  }
  plan.kind = PlanKind::kFullScan;
  plan.estimated_candidates = stats.entry_count;
  return plan;
}

}  // namespace authidx::query
