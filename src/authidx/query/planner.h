#ifndef AUTHIDX_QUERY_PLANNER_H_
#define AUTHIDX_QUERY_PLANNER_H_

#include <cstdint>
#include <string>

#include "authidx/query/ast.h"

namespace authidx::query {

/// Primary access path for a query.
enum class PlanKind {
  kAuthorExact,   // Hash/trie lookup of one author group.
  kAuthorPrefix,  // Trie subtree scan.
  kAuthorFuzzy,   // Phonetic bucket + edit distance.
  kTitleTerms,    // Postings intersection over the inverted index.
  kFullScan,      // Filter-only query: scan all entries.
  kTitleTopK,     // Block-max pruned BM25 top-k over title terms.
};

/// Number of PlanKind values (for per-kind metric arrays).
inline constexpr size_t kPlanKindCount = 6;

/// Largest offset + limit the pruned top-k path accepts: past this the
/// heap threshold rises too slowly for block skipping to pay for its
/// bookkeeping, so the planner falls back to kTitleTerms.
inline constexpr size_t kMaxTopKResults = 4096;

std::string_view PlanKindToString(PlanKind kind);

/// Statistics the planner consults (doc frequencies of the query terms,
/// corpus size).
struct PlannerStats {
  size_t entry_count = 0;
  /// Doc frequency of the rarest title term (0 when no terms or a term
  /// is unknown, which proves an empty result).
  size_t min_term_df = 0;
  /// Sum of all title terms' doc frequencies — the postings the
  /// exhaustive ranked path would decode. The pruned path's
  /// decoded/skipped split (QueryResult, ExecObs) is measured against
  /// this total.
  size_t total_term_df = 0;
  bool has_title_terms = false;
  bool unknown_term = false;  // Some term has df == 0.
};

/// The chosen plan with its cost estimate (candidate rows to touch).
struct Plan {
  PlanKind kind = PlanKind::kFullScan;
  uint64_t estimated_candidates = 0;
  /// Result is provably empty (e.g. a conjunctive term is unknown).
  bool provably_empty = false;
};

/// Picks the cheapest access path:
///  * author clauses always win over title terms (author groups are
///    far more selective in an author index);
///  * relevance-ranked pure keyword queries with a bounded page
///    (offset + limit <= kMaxTopKResults) and no residual filters take
///    the pruned top-k path (kTitleTopK) — same results as kTitleTerms,
///    bit for bit, but most postings are never decoded;
///  * title terms beat a full scan unless a term is unknown (then the
///    result is empty);
///  * otherwise full scan.
Plan ChoosePlan(const Query& query, const PlannerStats& stats);

}  // namespace authidx::query

#endif  // AUTHIDX_QUERY_PLANNER_H_
