#include "authidx/query/ast.h"

#include "authidx/common/strings.h"

namespace authidx::query {

std::string Query::ToString() const {
  std::string out = "Query{";
  if (author_exact) {
    out += "author=" + *author_exact + " ";
  }
  if (author_prefix) {
    out += "author_prefix=" + *author_prefix + " ";
  }
  if (author_fuzzy) {
    out += StringPrintf("author_fuzzy=%s(<=%zu) ", author_fuzzy->c_str(),
                        fuzzy_max_edits);
  }
  if (!title_terms.empty()) {
    out += "title=[" + JoinStrings(title_terms, ",") + "] ";
  }
  if (!not_terms.empty()) {
    out += "not=[" + JoinStrings(not_terms, ",") + "] ";
  }
  if (coauthor) {
    out += "coauthor=" + *coauthor + " ";
  }
  if (year) {
    out += StringPrintf("year=%u..%u ", year->lo, year->hi);
  }
  if (volume) {
    out += StringPrintf("vol=%u..%u ", volume->lo, volume->hi);
  }
  if (student) {
    out += std::string("student=") + (*student ? "yes" : "no") + " ";
  }
  out += (rank == RankMode::kRelevance) ? "order=relevance " : "";
  out += StringPrintf("offset=%zu limit=%zu}", offset, limit);
  return out;
}

}  // namespace authidx::query
