#ifndef AUTHIDX_QUERY_PARSER_H_
#define AUTHIDX_QUERY_PARSER_H_

#include <string_view>

#include "authidx/common/result.h"
#include "authidx/query/ast.h"

namespace authidx::query {

/// Parses the query-string syntax into a Query.
///
/// Grammar (whitespace-separated clauses; quoted strings keep spaces):
///
///   clause   := field ':' value | 'author~' value | '-' value | value
///   field    := 'author' | 'title' | 'year' | 'vol' | 'student'
///             | 'order' | 'limit' | 'offset'
///   value    := word | '"' phrase '"' | number | range
///   range    := number '..' number
///
/// `author:x*` requests a prefix match; `author~x` a fuzzy match. Bare
/// words and `title:` values are analyzed (folded, stemmed) into
/// conjunctive title terms. Unknown fields are an InvalidArgument.
Result<Query> ParseQuery(std::string_view text);

}  // namespace authidx::query

#endif  // AUTHIDX_QUERY_PARSER_H_
