#include "authidx/format/typeset.h"

#include <algorithm>

#include "authidx/common/strings.h"

namespace authidx::format {
namespace {

// Pads or truncates `s` to exactly `width` display columns.
std::string PadTo(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.append(width - out.size(), ' ');
  return out;
}

std::string Centered(std::string_view s, size_t width) {
  if (s.size() >= width) {
    return std::string(s);
  }
  size_t left = (width - s.size()) / 2;
  std::string out(left, ' ');
  out += s;
  return out;
}

}  // namespace

std::vector<std::string> WrapText(std::string_view text, size_t width) {
  std::vector<std::string> lines;
  if (width == 0) {
    lines.emplace_back(text);
    return lines;
  }
  std::string current;
  for (std::string_view word : SplitString(text, ' ')) {
    if (word.empty()) {
      continue;
    }
    // Hard-break words that cannot fit on any line.
    while (word.size() > width) {
      if (!current.empty()) {
        lines.push_back(std::move(current));
        current.clear();
      }
      lines.emplace_back(word.substr(0, width));
      word.remove_prefix(width);
    }
    if (current.empty()) {
      current = word;
    } else if (current.size() + 1 + word.size() <= width) {
      current += ' ';
      current += word;
    } else {
      lines.push_back(std::move(current));
      current = word;
    }
  }
  if (!current.empty()) {
    lines.push_back(std::move(current));
  }
  if (lines.empty()) {
    lines.emplace_back("");
  }
  return lines;
}

std::vector<Page> TypesetAuthorIndex(const core::AuthorIndex& catalog,
                                     const TypesetOptions& options) {
  const size_t total_width = options.author_width + options.gutter +
                             options.title_width + options.gutter +
                             options.citation_width;

  // Render each entry into body lines first, then paginate. A row never
  // splits across pages (widow/orphan control), matching the source.
  struct Row {
    std::vector<std::string> lines;
  };
  std::vector<Row> rows;
  for (const core::AuthorIndex::Group& group : catalog.GroupsInOrder()) {
    for (EntryId id : group.entries) {
      const Entry* entry = catalog.GetEntry(id);
      Row row;
      std::vector<std::string> author_lines =
          WrapText(entry->author.ToIndexForm(), options.author_width);
      std::vector<std::string> title_lines =
          WrapText(entry->title, options.title_width);
      std::string citation = entry->citation.ToString();
      size_t height = std::max(author_lines.size(), title_lines.size());
      for (size_t i = 0; i < height; ++i) {
        std::string line =
            PadTo(i < author_lines.size() ? author_lines[i] : "",
                  options.author_width);
        line.append(options.gutter, ' ');
        line += PadTo(i < title_lines.size() ? title_lines[i] : "",
                      options.title_width);
        line.append(options.gutter, ' ');
        line += (i == 0) ? citation : "";
        // Trim trailing spaces for byte-stable output.
        while (!line.empty() && line.back() == ' ') {
          line.pop_back();
        }
        row.lines.push_back(std::move(line));
      }
      rows.push_back(std::move(row));
    }
  }

  std::vector<Page> pages;
  size_t page_number = options.first_page_number;
  size_t row_idx = 0;
  while (row_idx < rows.size() || pages.empty()) {
    Page page;
    page.number = page_number;
    std::string& text = page.text;
    text += Centered(options.heading, total_width);
    text += '\n';
    std::string header = PadTo(options.author_col, options.author_width);
    header.append(options.gutter, ' ');
    header += PadTo(options.article_col, options.title_width);
    header.append(options.gutter, ' ');
    header += options.citation_col;
    text += header;
    text += '\n';
    text.append(total_width, '-');
    text += '\n';
    size_t used = 0;
    while (row_idx < rows.size()) {
      const Row& row = rows[row_idx];
      if (used + row.lines.size() > options.lines_per_page &&
          used > 0) {
        break;  // Push whole row to the next page.
      }
      for (const std::string& line : row.lines) {
        text += line;
        text += '\n';
        ++used;
      }
      ++row_idx;
      if (used >= options.lines_per_page) {
        break;
      }
    }
    if (!options.footer_left.empty() || !options.footer_right.empty()) {
      // Alternating book-style footer.
      bool even = (page_number % 2) == 0;
      text += even ? options.footer_left : options.footer_right;
      text += '\n';
    }
    text += Centered(StringPrintf("%zu", page_number), total_width);
    text += '\n';
    pages.push_back(std::move(page));
    ++page_number;
    if (rows.empty()) {
      break;
    }
  }
  return pages;
}

std::string TypesetToString(const core::AuthorIndex& catalog,
                            const TypesetOptions& options) {
  std::string out;
  for (const Page& page : TypesetAuthorIndex(catalog, options)) {
    out += page.text;
    out += '\f';
  }
  return out;
}

}  // namespace authidx::format
