#include "authidx/format/kwic.h"

#include <algorithm>

#include "authidx/text/collate.h"
#include "authidx/text/normalize.h"
#include "authidx/text/tokenize.h"

namespace authidx::format {
namespace {

// Splits a title into display words (original casing/punctuation kept).
std::vector<std::string> DisplayWords(std::string_view title) {
  std::vector<std::string> words;
  std::string current;
  for (char c : title) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    words.push_back(std::move(current));
  }
  return words;
}

// The folded alphanumeric core of a display word ("Fields:" -> "fields").
std::string KeywordOf(const std::string& word) {
  std::string folded = text::FoldCase(word);
  std::string out;
  for (char c : folded) {
    if ((c >= 'a' && c <= 'z') || text::IsAsciiDigit(c)) {
      out.push_back(c);
    }
  }
  return out;
}

// Takes the last (or first) `width` display columns of joined words.
std::string TailContext(const std::vector<std::string>& words, size_t end,
                        size_t width) {
  std::string out;
  for (size_t i = end; i-- > 0;) {
    size_t extra = words[i].size() + (out.empty() ? 0 : 1);
    if (out.size() + extra > width) {
      break;
    }
    if (out.empty()) {
      out = words[i];
    } else {
      out = words[i] + " " + out;
    }
  }
  return out;
}

std::string HeadContext(const std::vector<std::string>& words, size_t begin,
                        size_t width) {
  std::string out;
  for (size_t i = begin; i < words.size(); ++i) {
    size_t extra = words[i].size() + (out.empty() ? 0 : 1);
    if (out.size() + extra > width) {
      break;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += words[i];
  }
  return out;
}

}  // namespace

std::vector<KwicLine> BuildKwicIndex(const core::AuthorIndex& catalog,
                                     const KwicOptions& options) {
  std::vector<KwicLine> lines;
  for (size_t id = 0; id < catalog.entry_count(); ++id) {
    const Entry* entry = catalog.GetEntry(static_cast<EntryId>(id));
    std::vector<std::string> words = DisplayWords(entry->title);
    for (size_t w = 0; w < words.size(); ++w) {
      std::string keyword = KeywordOf(words[w]);
      if (keyword.size() < options.min_keyword_length ||
          text::IsStopword(keyword)) {
        continue;
      }
      KwicLine line;
      line.keyword = keyword;
      line.entry = static_cast<EntryId>(id);
      // Left context, right-aligned into left_width columns.
      std::string left = TailContext(words, w, options.left_width);
      line.text.append(options.left_width - left.size(), ' ');
      line.text += left;
      line.text += ' ';
      // Keyword (optionally capitalized) plus right context.
      std::string display_keyword = words[w];
      if (options.capitalize_keyword) {
        for (char& c : display_keyword) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
      }
      std::string right = display_keyword;
      if (w + 1 < words.size()) {
        std::string rest =
            HeadContext(words, w + 1,
                        options.right_width > right.size() + 1
                            ? options.right_width - right.size() - 1
                            : 0);
        if (!rest.empty()) {
          right += ' ';
          right += rest;
        }
      }
      right.resize(std::min(right.size(), options.right_width));
      line.text += right;
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end(),
            [&](const KwicLine& a, const KwicLine& b) {
              if (a.keyword != b.keyword) {
                return text::Compare(a.keyword, b.keyword) < 0;
              }
              const Citation& ca = catalog.GetEntry(a.entry)->citation;
              const Citation& cb = catalog.GetEntry(b.entry)->citation;
              if (ca.volume != cb.volume) return ca.volume < cb.volume;
              if (ca.page != cb.page) return ca.page < cb.page;
              return a.entry < b.entry;
            });
  // A coauthored work contributes one entry per author; its title lines
  // are identical, so keep only the first per (text, citation).
  lines.erase(std::unique(lines.begin(), lines.end(),
                          [&](const KwicLine& a, const KwicLine& b) {
                            return a.text == b.text &&
                                   catalog.GetEntry(a.entry)->citation ==
                                       catalog.GetEntry(b.entry)->citation;
                          }),
              lines.end());
  return lines;
}

std::string KwicIndexToString(const core::AuthorIndex& catalog,
                              const KwicOptions& options) {
  std::string out;
  for (const KwicLine& line : BuildKwicIndex(catalog, options)) {
    out += line.text;
    size_t used = line.text.size();
    size_t target = options.left_width + 1 + options.right_width + 2;
    if (used < target) {
      out.append(target - used, ' ');
    }
    out += catalog.GetEntry(line.entry)->citation.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace authidx::format
