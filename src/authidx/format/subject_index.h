#ifndef AUTHIDX_FORMAT_SUBJECT_INDEX_H_
#define AUTHIDX_FORMAT_SUBJECT_INDEX_H_

#include <string>
#include <vector>

#include "authidx/core/author_index.h"

namespace authidx::format {

/// The Subject Index — the third companion artifact in law-review front
/// matter: works grouped under curated subject headings.
///
///   COAL AND MINING LAW
///     Prohibition of Strip Mining in West Virginia ......... 78:445 (1976)
///     A Miner's Bill of Rights ............................. 80:397 (1978)
///
/// Real subject indexes are human-curated; this module approximates one
/// with a controlled vocabulary: each heading lists the analyzed
/// (stemmed) terms that map to it, and an entry files under every
/// heading whose terms intersect its analyzed title. Entries matching
/// nothing go under `fallback_heading` (empty string disables that).

/// One heading and the terms (pre-analysis, human-readable) that select
/// it. Terms run through the standard analyzer at build time so they
/// match titles regardless of inflection.
struct SubjectHeading {
  std::string heading;
  std::vector<std::string> terms;
};

/// A vocabulary: ordered list of headings (output preserves this order
/// after sorting alphabetically by heading).
struct SubjectVocabulary {
  std::vector<SubjectHeading> headings;
  std::string fallback_heading = "MISCELLANEOUS";

  /// A curated vocabulary covering the legal domain of the embedded
  /// sample corpus (coal/mining, constitutional, labor, tax, torts,
  /// criminal, environmental, family, commercial, courts/procedure).
  static SubjectVocabulary LegalDefault();
};

/// One subject-index section.
struct SubjectSection {
  std::string heading;
  /// Entry ids in collation order of (title, citation).
  std::vector<EntryId> entries;
};

/// Groups the catalog under `vocabulary`, dropping empty headings.
/// Sections are ordered by heading collation; an entry can appear in
/// several sections (as in real subject indexes). Coauthored works are
/// deduplicated (one appearance per section).
std::vector<SubjectSection> BuildSubjectIndex(
    const core::AuthorIndex& catalog, const SubjectVocabulary& vocabulary);

/// Renders sections as dot-leadered text.
std::string SubjectIndexToString(const core::AuthorIndex& catalog,
                                 const SubjectVocabulary& vocabulary,
                                 size_t line_width = 78);

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_SUBJECT_INDEX_H_
