#include "authidx/format/metrics_text.h"

#include "authidx/common/strings.h"

namespace authidx::format {

namespace {

// Escapes a HELP line per the exposition format (backslash, newline).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* TypeName(obs::MetricType type) {
  switch (type) {
    case obs::MetricType::kCounter:
      return "counter";
    case obs::MetricType::kGauge:
      return "gauge";
    case obs::MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string MetricsToPrometheusText(const obs::MetricsSnapshot& snapshot) {
  std::string out;
  for (const obs::MetricValue& metric : snapshot.metrics) {
    out += "# HELP " + metric.name + " " + EscapeHelp(metric.help) + "\n";
    out += "# TYPE " + metric.name + " " + TypeName(metric.type) + "\n";
    switch (metric.type) {
      case obs::MetricType::kCounter:
        out += StringPrintf("%s %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(metric.counter));
        break;
      case obs::MetricType::kGauge:
        out += StringPrintf("%s %lld\n", metric.name.c_str(),
                            static_cast<long long>(metric.gauge));
        break;
      case obs::MetricType::kHistogram: {
        const obs::HistogramSnapshot& hist = metric.histogram;
        for (size_t i = 0; i < hist.bounds.size(); ++i) {
          out += StringPrintf(
              "%s_bucket{le=\"%llu\"} %llu\n", metric.name.c_str(),
              static_cast<unsigned long long>(hist.bounds[i]),
              static_cast<unsigned long long>(hist.cumulative[i]));
        }
        out += StringPrintf("%s_bucket{le=\"+Inf\"} %llu\n",
                            metric.name.c_str(),
                            static_cast<unsigned long long>(hist.count));
        out += StringPrintf("%s_sum %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(hist.sum));
        out += StringPrintf("%s_count %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(hist.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace authidx::format
