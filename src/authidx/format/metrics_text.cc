#include "authidx/format/metrics_text.h"

#include "authidx/common/strings.h"

namespace authidx::format {

namespace {

// Escapes a HELP line per the exposition format (backslash, newline).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* TypeName(obs::MetricType type) {
  switch (type) {
    case obs::MetricType::kCounter:
      return "counter";
    case obs::MetricType::kGauge:
      return "gauge";
    case obs::MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// A registered name may carry inline labels ("authidx_retries_total
// {op=\"flush\"}"); HELP/TYPE lines must name the metric family, i.e.
// the part before the label braces.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

std::string MetricsToPrometheusText(const obs::MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const obs::MetricValue& metric : snapshot.metrics) {
    std::string base = BaseName(metric.name);
    // Labeled series of one family register as separate metrics; emit
    // the family header once (registration order keeps them adjacent).
    if (base != last_base) {
      out += "# HELP " + base + " " + EscapeHelp(metric.help) + "\n";
      out += "# TYPE " + base + " " + TypeName(metric.type) + "\n";
      last_base = base;
    }
    switch (metric.type) {
      case obs::MetricType::kCounter:
        out += StringPrintf("%s %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(metric.counter));
        break;
      case obs::MetricType::kGauge:
        out += StringPrintf("%s %lld\n", metric.name.c_str(),
                            static_cast<long long>(metric.gauge));
        break;
      case obs::MetricType::kHistogram: {
        const obs::HistogramSnapshot& hist = metric.histogram;
        for (size_t i = 0; i < hist.bounds.size(); ++i) {
          out += StringPrintf(
              "%s_bucket{le=\"%llu\"} %llu\n", metric.name.c_str(),
              static_cast<unsigned long long>(hist.bounds[i]),
              static_cast<unsigned long long>(hist.cumulative[i]));
        }
        out += StringPrintf("%s_bucket{le=\"+Inf\"} %llu\n",
                            metric.name.c_str(),
                            static_cast<unsigned long long>(hist.count));
        out += StringPrintf("%s_sum %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(hist.sum));
        out += StringPrintf("%s_count %llu\n", metric.name.c_str(),
                            static_cast<unsigned long long>(hist.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace authidx::format
