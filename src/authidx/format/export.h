#ifndef AUTHIDX_FORMAT_EXPORT_H_
#define AUTHIDX_FORMAT_EXPORT_H_

#include <string>
#include <string_view>

#include "authidx/core/author_index.h"

namespace authidx::format {

/// RFC-4180-style CSV escaping: wraps in quotes when the field contains
/// a comma, quote or newline; embedded quotes are doubled.
std::string CsvEscape(std::string_view field);

/// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(std::string_view s);

/// Exports every entry as CSV with header
/// `surname,given,suffix,student,title,volume,page,year,coauthors`.
std::string CatalogToCsv(const core::AuthorIndex& catalog);

/// Exports the catalog as a JSON array of entry objects (stable field
/// order, UTF-8 passthrough).
std::string CatalogToJson(const core::AuthorIndex& catalog);

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_EXPORT_H_
