#include "authidx/format/title_index.h"

#include <algorithm>
#include <map>

#include "authidx/common/strings.h"
#include "authidx/text/collate.h"
#include "authidx/text/normalize.h"

namespace authidx::format {
namespace {

// Removes a leading article ("A ", "An ", "The ") for ordering purposes.
std::string_view SkipLeadingArticle(std::string_view title,
                                    const std::vector<std::string>& articles) {
  size_t space = title.find(' ');
  if (space == std::string_view::npos) {
    return title;
  }
  std::string first = text::FoldCase(title.substr(0, space));
  for (const std::string& article : articles) {
    if (first == article) {
      return StripAsciiWhitespace(title.substr(space + 1));
    }
  }
  return title;
}

std::string PadTo(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.append(width - out.size(), ' ');
  return out;
}

}  // namespace

std::vector<TitleIndexRow> BuildTitleIndex(const core::AuthorIndex& catalog,
                                           const TitleIndexOptions& options) {
  // Deduplicate works: a coauthored article exists once per author in
  // the catalog; key by (title, citation).
  std::map<std::pair<std::string, Citation>, std::vector<std::string>>
      bylines;
  for (size_t i = 0; i < catalog.entry_count(); ++i) {
    const Entry* entry = catalog.GetEntry(static_cast<EntryId>(i));
    auto key = std::make_pair(entry->title, entry->citation);
    auto& authors = bylines[key];
    AuthorName name = entry->author;
    name.student_material = false;  // The byline omits the asterisk.
    std::string display = name.ToIndexForm();
    if (std::find(authors.begin(), authors.end(), display) ==
        authors.end()) {
      authors.push_back(display);
    }
  }
  std::vector<TitleIndexRow> rows;
  rows.reserve(bylines.size());
  for (auto& [key, authors] : bylines) {
    TitleIndexRow row;
    row.title = key.first;
    row.citation = key.second;
    std::sort(authors.begin(), authors.end(),
              [](const std::string& a, const std::string& b) {
                return text::Compare(a, b) < 0;
              });
    row.byline = JoinStrings(authors, "; ");
    row.sort_key = text::MakeSortKey(
        SkipLeadingArticle(row.title, options.skip_articles));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TitleIndexRow& a, const TitleIndexRow& b) {
              if (a.sort_key != b.sort_key) {
                return a.sort_key < b.sort_key;
              }
              return std::make_pair(a.citation.volume, a.citation.page) <
                     std::make_pair(b.citation.volume, b.citation.page);
            });
  return rows;
}

std::vector<Page> TypesetTitleIndex(const core::AuthorIndex& catalog,
                                    const TitleIndexOptions& options) {
  const size_t citation_width = 14;
  const size_t total_width = options.title_width + options.gutter +
                             options.author_width + options.gutter +
                             citation_width;
  std::vector<TitleIndexRow> rows = BuildTitleIndex(catalog, options);

  std::vector<Page> pages;
  size_t page_number = options.first_page_number;
  size_t row_idx = 0;
  while (row_idx < rows.size() || pages.empty()) {
    Page page;
    page.number = page_number;
    std::string& text = page.text;
    // Centered heading plus column header.
    size_t pad = total_width > options.heading.size()
                     ? (total_width - options.heading.size()) / 2
                     : 0;
    text.append(pad, ' ');
    text += options.heading;
    text += '\n';
    text += PadTo("TITLE", options.title_width);
    text.append(options.gutter, ' ');
    text += PadTo("AUTHOR(S)", options.author_width);
    text.append(options.gutter, ' ');
    text += "CITATION\n";
    text.append(total_width, '-');
    text += '\n';
    size_t used = 0;
    while (row_idx < rows.size()) {
      const TitleIndexRow& row = rows[row_idx];
      std::vector<std::string> title_lines =
          WrapText(row.title, options.title_width);
      std::vector<std::string> author_lines =
          WrapText(row.byline, options.author_width);
      size_t height = std::max(title_lines.size(), author_lines.size());
      if (used > 0 && used + height > options.lines_per_page) {
        break;  // Whole row moves to the next page.
      }
      for (size_t i = 0; i < height; ++i) {
        std::string line =
            PadTo(i < title_lines.size() ? title_lines[i] : "",
                  options.title_width);
        line.append(options.gutter, ' ');
        line += PadTo(i < author_lines.size() ? author_lines[i] : "",
                      options.author_width);
        line.append(options.gutter, ' ');
        if (i == 0) {
          line += row.citation.ToString();
        }
        while (!line.empty() && line.back() == ' ') {
          line.pop_back();
        }
        text += line;
        text += '\n';
        ++used;
      }
      ++row_idx;
      if (used >= options.lines_per_page) {
        break;
      }
    }
    text += StringPrintf("%*zu\n", static_cast<int>(total_width / 2 + 3),
                         page_number);
    pages.push_back(std::move(page));
    ++page_number;
    if (rows.empty()) {
      break;
    }
  }
  return pages;
}

}  // namespace authidx::format
