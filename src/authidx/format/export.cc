#include "authidx/format/export.h"

#include "authidx/common/strings.h"

namespace authidx::format {

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string CatalogToCsv(const core::AuthorIndex& catalog) {
  std::string out =
      "surname,given,suffix,student,title,volume,page,year,coauthors\n";
  for (size_t i = 0; i < catalog.entry_count(); ++i) {
    const Entry* e = catalog.GetEntry(static_cast<EntryId>(i));
    out += CsvEscape(e->author.surname);
    out += ',';
    out += CsvEscape(e->author.given);
    out += ',';
    out += CsvEscape(e->author.suffix);
    out += ',';
    out += e->author.student_material ? "true" : "false";
    out += ',';
    out += CsvEscape(e->title);
    out += StringPrintf(",%u,%u,%u,", e->citation.volume, e->citation.page,
                        e->citation.year);
    std::string coauthors;
    for (size_t j = 0; j < e->coauthors.size(); ++j) {
      if (j > 0) coauthors += ';';
      coauthors += e->coauthors[j];
    }
    out += CsvEscape(coauthors);
    out += '\n';
  }
  return out;
}

std::string CatalogToJson(const core::AuthorIndex& catalog) {
  std::string out = "[\n";
  for (size_t i = 0; i < catalog.entry_count(); ++i) {
    const Entry* e = catalog.GetEntry(static_cast<EntryId>(i));
    out += "  {";
    out += "\"surname\":\"" + JsonEscape(e->author.surname) + "\",";
    out += "\"given\":\"" + JsonEscape(e->author.given) + "\",";
    out += "\"suffix\":\"" + JsonEscape(e->author.suffix) + "\",";
    out += std::string("\"student\":") +
           (e->author.student_material ? "true" : "false") + ",";
    out += "\"title\":\"" + JsonEscape(e->title) + "\",";
    out += StringPrintf("\"volume\":%u,\"page\":%u,\"year\":%u",
                        e->citation.volume, e->citation.page,
                        e->citation.year);
    if (!e->coauthors.empty()) {
      out += ",\"coauthors\":[";
      for (size_t j = 0; j < e->coauthors.size(); ++j) {
        if (j > 0) out += ',';
        out += '"' + JsonEscape(e->coauthors[j]) + '"';
      }
      out += ']';
    }
    out += '}';
    out += (i + 1 < catalog.entry_count()) ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace authidx::format
