#ifndef AUTHIDX_FORMAT_KWIC_H_
#define AUTHIDX_FORMAT_KWIC_H_

#include <string>
#include <vector>

#include "authidx/core/author_index.h"

namespace authidx::format {

/// KWIC (Key Word In Context) permuted title index — the classic
/// companion artifact to an author index in printed front matter: every
/// significant title word becomes an index line with its surrounding
/// context aligned around a keyword column.
///
///              Potential Criminal LIABILITY in the Coal Fields   95:691
///       the Clean Water Act: A DEFENSE Perspective               95:691
///
/// Keywords are the title's non-stopword tokens (unstemmed, so the
/// printed context reads naturally); lines are ordered by keyword
/// collation, then citation.

struct KwicOptions {
  /// Columns of context printed left of the keyword.
  size_t left_width = 28;
  /// Keyword + right context columns.
  size_t right_width = 34;
  /// Uppercase the keyword in the output line.
  bool capitalize_keyword = true;
  /// Keywords shorter than this are skipped.
  size_t min_keyword_length = 3;
};

/// One permuted-index line.
struct KwicLine {
  std::string keyword;  // Folded form (sort key source).
  std::string text;     // Fully laid-out line without the citation.
  EntryId entry = 0;

  friend bool operator==(const KwicLine&, const KwicLine&) = default;
};

/// Builds the permuted index over every catalog entry, sorted by
/// (keyword collation, citation).
std::vector<KwicLine> BuildKwicIndex(const core::AuthorIndex& catalog,
                                     const KwicOptions& options = {});

/// Renders the permuted index as text, one line per keyword occurrence,
/// with the citation appended.
std::string KwicIndexToString(const core::AuthorIndex& catalog,
                              const KwicOptions& options = {});

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_KWIC_H_
