#ifndef AUTHIDX_FORMAT_METRICS_TEXT_H_
#define AUTHIDX_FORMAT_METRICS_TEXT_H_

#include <string>

#include "authidx/obs/metrics.h"

namespace authidx::format {

/// Renders `snapshot` in the Prometheus text exposition format
/// (version 0.0.4): one `# HELP` / `# TYPE` pair per metric, counters
/// and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`. Durations are
/// integer nanoseconds (the repo-wide metric unit, see
/// docs/OBSERVABILITY.md), not Prometheus' conventional seconds.
/// Thread-safe (pure function of the snapshot).
std::string MetricsToPrometheusText(const obs::MetricsSnapshot& snapshot);

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_METRICS_TEXT_H_
