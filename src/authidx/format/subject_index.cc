#include "authidx/format/subject_index.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "authidx/text/collate.h"
#include "authidx/text/tokenize.h"

namespace authidx::format {

SubjectVocabulary SubjectVocabulary::LegalDefault() {
  SubjectVocabulary vocab;
  vocab.headings = {
      {"ADMINISTRATIVE LAW",
       {"administrative", "agency", "rulemaking", "regulation"}},
      {"BANKRUPTCY", {"bankruptcy", "debtor", "creditor", "insolvency"}},
      {"COAL AND MINING LAW",
       {"coal", "mine", "mining", "miner", "reclamation", "coalbed",
        "surface"}},
      {"COMMERCIAL LAW",
       {"commercial", "sales", "warranty", "credit", "consumer",
        "securities", "banking", "usury"}},
      {"CONSTITUTIONAL LAW",
       {"constitutional", "constitution", "amendment", "due", "equal",
        "speech", "religion", "privacy"}},
      {"CORPORATIONS", {"corporation", "corporate", "shareholder",
                        "director", "merger"}},
      {"CRIMINAL LAW AND PROCEDURE",
       {"criminal", "crime", "prosecution", "sentencing", "jeopardy",
        "habeas", "miranda", "felony"}},
      {"DOMESTIC RELATIONS",
       {"divorce", "custody", "marriage", "marital", "alimony", "child",
        "family", "spousal"}},
      {"ENVIRONMENTAL LAW",
       {"environmental", "pollution", "clean", "water", "air", "waste",
        "acid", "nuisance"}},
      {"EVIDENCE AND PROCEDURE",
       {"evidence", "procedure", "discovery", "jury", "witness",
        "jurisdiction", "appeal", "pleading"}},
      {"LABOR AND EMPLOYMENT LAW",
       {"labor", "employment", "union", "arbitration", "strike",
        "workers", "workmen", "pension", "compensation"}},
      {"PROPERTY", {"property", "land", "landlord", "tenant", "deed",
                    "easement", "estate", "mineral"}},
      {"TAXATION", {"tax", "taxation", "income", "valorem", "depletion",
                    "deduction"}},
      {"TORTS", {"tort", "negligence", "liability", "malpractice",
                 "damages", "defamation"}},
      {"WILLS, TRUSTS AND ESTATES",
       {"will", "wills", "trust", "probate", "intestate", "testator",
        "inheritance"}},
  };
  return vocab;
}

std::vector<SubjectSection> BuildSubjectIndex(
    const core::AuthorIndex& catalog, const SubjectVocabulary& vocabulary) {
  // Analyze the vocabulary terms so they meet titles in stemmed space.
  std::unordered_map<std::string, std::vector<size_t>> term_to_heading;
  for (size_t h = 0; h < vocabulary.headings.size(); ++h) {
    for (const std::string& term : vocabulary.headings[h].terms) {
      for (const std::string& analyzed : text::Tokenize(term)) {
        term_to_heading[analyzed].push_back(h);
      }
    }
  }

  std::vector<std::vector<EntryId>> buckets(vocabulary.headings.size());
  std::vector<EntryId> unmatched;
  // Dedup coauthored works per bucket: key by (title, citation).
  std::vector<std::set<std::pair<std::string, Citation>>> seen(
      vocabulary.headings.size());
  std::set<std::pair<std::string, Citation>> seen_unmatched;
  for (size_t i = 0; i < catalog.entry_count(); ++i) {
    const Entry* entry = catalog.GetEntry(static_cast<EntryId>(i));
    auto work_key = std::make_pair(entry->title, entry->citation);
    std::unordered_set<size_t> matched;
    for (const std::string& token : text::Tokenize(entry->title)) {
      auto it = term_to_heading.find(token);
      if (it != term_to_heading.end()) {
        matched.insert(it->second.begin(), it->second.end());
      }
    }
    if (matched.empty()) {
      if (!vocabulary.fallback_heading.empty() &&
          seen_unmatched.insert(work_key).second) {
        unmatched.push_back(static_cast<EntryId>(i));
      }
      continue;
    }
    for (size_t h : matched) {
      if (seen[h].insert(work_key).second) {
        buckets[h].push_back(static_cast<EntryId>(i));
      }
    }
  }

  auto title_order = [&](EntryId a, EntryId b) {
    const Entry* ea = catalog.GetEntry(a);
    const Entry* eb = catalog.GetEntry(b);
    int c = text::Compare(ea->title, eb->title);
    if (c != 0) {
      return c < 0;
    }
    return std::make_pair(ea->citation.volume, ea->citation.page) <
           std::make_pair(eb->citation.volume, eb->citation.page);
  };

  std::vector<SubjectSection> sections;
  for (size_t h = 0; h < vocabulary.headings.size(); ++h) {
    if (buckets[h].empty()) {
      continue;
    }
    SubjectSection section;
    section.heading = vocabulary.headings[h].heading;
    std::sort(buckets[h].begin(), buckets[h].end(), title_order);
    section.entries = std::move(buckets[h]);
    sections.push_back(std::move(section));
  }
  std::sort(sections.begin(), sections.end(),
            [](const SubjectSection& a, const SubjectSection& b) {
              return text::Compare(a.heading, b.heading) < 0;
            });
  if (!unmatched.empty() && !vocabulary.fallback_heading.empty()) {
    SubjectSection section;
    section.heading = vocabulary.fallback_heading;
    std::sort(unmatched.begin(), unmatched.end(), title_order);
    section.entries = std::move(unmatched);
    sections.push_back(std::move(section));  // Fallback always last.
  }
  return sections;
}

std::string SubjectIndexToString(const core::AuthorIndex& catalog,
                                 const SubjectVocabulary& vocabulary,
                                 size_t line_width) {
  std::string out;
  for (const SubjectSection& section : BuildSubjectIndex(catalog,
                                                         vocabulary)) {
    out += section.heading;
    out += '\n';
    for (EntryId id : section.entries) {
      const Entry* entry = catalog.GetEntry(id);
      std::string citation = entry->citation.ToString();
      // "  Title ....... 95:691 (1993)" with dot leaders.
      std::string line = "  ";
      size_t budget = line_width > citation.size() + 4
                          ? line_width - citation.size() - 4
                          : 8;
      if (entry->title.size() > budget) {
        line += entry->title.substr(0, budget - 3);
        line += "...";
      } else {
        line += entry->title;
      }
      line += ' ';
      while (line.size() + citation.size() + 1 < line_width) {
        line += '.';
      }
      line += ' ';
      line += citation;
      out += line;
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

}  // namespace authidx::format
