#ifndef AUTHIDX_FORMAT_TITLE_INDEX_H_
#define AUTHIDX_FORMAT_TITLE_INDEX_H_

#include <string>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/format/typeset.h"

namespace authidx::format {

/// The Title Index — the artifact printed right after the Author Index
/// in the source volume (95 W. Va. L. Rev., Art. 6): one row per
/// distinct work, ordered by title collation (leading articles "A",
/// "An", "The" ignored, as cataloguers do), listing the full byline.
///
///   TITLE                                 AUTHOR(S)          CITATION
///   All in the Family & In All Families   Minow, Martha      95:275 (1992)
///
/// Coauthored works appear once with every author in the byline (the
/// author index, by contrast, repeats the work under each author).

struct TitleIndexOptions {
  size_t title_width = 40;
  size_t author_width = 24;
  size_t gutter = 2;
  size_t lines_per_page = 48;
  size_t first_page_number = 1;
  std::string heading = "TITLE INDEX";
  /// Leading words ignored for ordering (folded forms).
  std::vector<std::string> skip_articles = {"a", "an", "the"};
};

/// One row of the title index.
struct TitleIndexRow {
  std::string title;
  std::string byline;  // "A; B; C" in index form.
  Citation citation;
  /// Collation key for the ordering (leading articles skipped).
  std::string sort_key;

  friend bool operator==(const TitleIndexRow&, const TitleIndexRow&) = default;
};

/// Builds the deduplicated, collation-ordered rows.
std::vector<TitleIndexRow> BuildTitleIndex(
    const core::AuthorIndex& catalog, const TitleIndexOptions& options = {});

/// Typesets the title index into pages (same Page type as the author
/// index typesetter).
std::vector<Page> TypesetTitleIndex(const core::AuthorIndex& catalog,
                                    const TitleIndexOptions& options = {});

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_TITLE_INDEX_H_
