#ifndef AUTHIDX_FORMAT_TYPESET_H_
#define AUTHIDX_FORMAT_TYPESET_H_

#include <string>
#include <string_view>
#include <vector>

#include "authidx/core/author_index.h"

namespace authidx::format {

/// Layout parameters for the printed author index. Defaults mirror the
/// source document: a three-column table (AUTHOR | ARTICLE | citation),
/// titles wrapped inside their column, student material marked with an
/// asterisk on the author, continuation headers on every page.
struct TypesetOptions {
  size_t author_width = 26;
  size_t title_width = 36;
  size_t citation_width = 14;
  size_t gutter = 2;           // Spaces between columns.
  size_t lines_per_page = 48;  // Body lines (excluding header/footer).
  size_t first_page_number = 1365;
  std::string heading = "AUTHOR INDEX";
  std::string author_col = "AUTHOR";
  std::string article_col = "ARTICLE";
  std::string citation_col = "W. VA. L. REV.";
  /// Footer like "[Vol. 95:1365" on even pages, "1993]" on odd ones;
  /// empty strings suppress the footer.
  std::string footer_left = "";
  std::string footer_right = "";
};

/// Greedy word-wraps `text` to `width` columns. Words longer than the
/// width are hard-broken. Never returns an empty vector.
std::vector<std::string> WrapText(std::string_view text, size_t width);

/// One typeset page.
struct Page {
  size_t number = 0;
  std::string text;
};

/// Typesets the whole catalog into pages in printed-index order.
std::vector<Page> TypesetAuthorIndex(const core::AuthorIndex& catalog,
                                     const TypesetOptions& options = {});

/// Convenience: all pages joined with form feeds.
std::string TypesetToString(const core::AuthorIndex& catalog,
                            const TypesetOptions& options = {});

}  // namespace authidx::format

#endif  // AUTHIDX_FORMAT_TYPESET_H_
