#include "authidx/workload/corpus.h"

#include "authidx/common/random.h"
#include "authidx/workload/namegen.h"

namespace authidx::workload {

std::vector<Entry> GenerateCorpus(const CorpusOptions& options) {
  NameGenerator names(options.seed);
  Random rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  size_t author_count = options.authors == 0 ? 1 : options.authors;
  Zipf productivity(author_count, options.author_skew,
                    options.seed ^ 0xdeadbeefULL);

  // Fixed author population; suffix discriminates generated collisions so
  // distinct population slots stay distinct people.
  std::vector<AuthorName> population;
  population.reserve(author_count);
  for (size_t i = 0; i < author_count; ++i) {
    population.push_back(names.NextAuthor());
  }

  uint32_t volumes =
      options.last_volume >= options.first_volume
          ? options.last_volume - options.first_volume + 1
          : 1;

  std::vector<Entry> entries;
  entries.reserve(options.entries);
  for (size_t i = 0; i < options.entries; ++i) {
    Entry entry;
    size_t author_idx = static_cast<size_t>(productivity.Next());
    entry.author = population[author_idx];
    // Student status attaches to the entry (a person can publish both
    // student notes and later articles), as in the source.
    entry.author.student_material = rng.OneIn(4);
    entry.title = names.NextTitle();
    uint32_t vol_off = static_cast<uint32_t>(rng.Uniform(volumes));
    entry.citation.volume = options.first_volume + vol_off;
    entry.citation.year = options.first_year + vol_off;
    entry.citation.page = 1 + static_cast<uint32_t>(rng.Uniform(1500));
    if (rng.OneIn(options.coauthor_one_in)) {
      size_t n = 1 + rng.Uniform(2);
      for (size_t c = 0; c < n; ++c) {
        AuthorName coauthor =
            population[rng.Uniform(population.size())];
        coauthor.student_material = false;
        entry.coauthors.push_back(coauthor.ToIndexForm());
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace authidx::workload
