#ifndef AUTHIDX_WORKLOAD_NAMEGEN_H_
#define AUTHIDX_WORKLOAD_NAMEGEN_H_

#include <string>

#include "authidx/common/random.h"
#include "authidx/model/record.h"

namespace authidx::workload {

/// Deterministic generator of plausible bibliographic author names and
/// article titles, used to synthesize proceedings-scale corpora (the
/// substitution for the unavailable VLDB 2000 metadata; see DESIGN.md §4).
class NameGenerator {
 public:
  explicit NameGenerator(uint64_t seed) : rng_(seed) {}

  /// A full author name; ~8% carry a generational suffix, ~25% are
  /// student authors (matching the source document's mix).
  AuthorName NextAuthor();

  /// A title assembled from a small grammar over legal/technical word
  /// pools; 4-14 words.
  std::string NextTitle();

  /// Surname only (for fuzzy-search workloads).
  std::string NextSurname();

 private:
  Random rng_;
};

}  // namespace authidx::workload

#endif  // AUTHIDX_WORKLOAD_NAMEGEN_H_
