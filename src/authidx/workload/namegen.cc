#include "authidx/workload/namegen.h"

#include <array>

namespace authidx::workload {
namespace {

constexpr std::array<const char*, 96> kSurnames = {
    "Abbott",    "Abrams",     "Adler",     "Anderson",  "Archer",
    "Bailey",    "Barnes",     "Barrett",   "Bastress",  "Bean",
    "Beeson",    "Bell",       "Berry",     "Biddle",    "Bowman",
    "Brown",     "Bryant",     "Burke",     "Byrd",      "Cady",
    "Campbell",  "Cardi",      "Carey",     "Carter",    "Chapman",
    "Clark",     "Cleckley",   "Cline",     "Collins",   "Cooper",
    "Cox",       "Crandall",   "Curry",     "Davis",     "Deem",
    "Denny",     "DiSalvo",    "Dobbs",     "Donley",    "Dunlap",
    "Eaton",     "Elkins",     "Ellis",     "Epstein",   "Farrell",
    "Fisher",    "FitzGerald", "Flannery",  "Fox",       "Friedberg",
    "Galloway",  "Gardner",    "Gelb",      "Goodwin",   "Graham",
    "Gray",      "Greer",      "Hall",      "Hardesty",  "Harris",
    "Henshaw",   "Hogg",       "Holland",   "Hunt",      "Jackson",
    "Johnson",   "Jones",      "Keeley",    "Kelly",     "Kennedy",
    "King",      "Lewin",      "Lewis",     "Lorensen",  "Martin",
    "McAteer",   "McGinley",   "McGraw",    "McLaughlin", "Means",
    "Miller",    "Moore",      "Moran",     "Morris",    "Neely",
    "Nichol",    "O'Brien",    "Olson",     "Price",     "Rice",
    "Roberts",   "Robinson",   "Scott",     "Smith",     "Taylor",
    "Thompson",
};

constexpr std::array<const char*, 48> kGivenNames = {
    "Aaron",    "Alice",    "Andrew",  "Anne",    "Arthur",  "Barbara",
    "Benjamin", "Bruce",    "Carl",    "Carol",   "Charles", "Christine",
    "Daniel",   "David",    "Deborah", "Diana",   "Donald",  "Dorothy",
    "Edward",   "Elizabeth", "Ellen",  "Eric",    "Frank",   "George",
    "Harold",   "Helen",    "Henry",   "James",   "Jane",    "John",
    "Joseph",   "Judith",   "Karen",   "Kenneth", "Laura",   "Linda",
    "Margaret", "Mark",     "Martha",  "Mary",    "Michael", "Nancy",
    "Patricia", "Paul",     "Richard", "Robert",  "Susan",   "Thomas",
};

constexpr std::array<const char*, 6> kSuffixes = {"Jr.", "Sr.", "II",
                                                  "III", "IV",  "V"};

constexpr std::array<const char*, 40> kTopics = {
    "Surface Mining",       "Workers' Compensation", "Black Lung Benefits",
    "Comparative Negligence", "the Clean Water Act", "Products Liability",
    "Double Jeopardy",      "Habeas Corpus",         "Equitable Distribution",
    "Mineral Rights",       "the Commerce Clause",   "Strict Liability",
    "the Fourth Amendment", "Labor Arbitration",     "Medical Malpractice",
    "Coal Leasing",         "Intestate Succession",  "Usury Law",
    "Jury Selection",       "the Establishment Clause", "Insider Trading",
    "Bankruptcy Reform",    "Acid Rain Control",     "Zoning Ordinances",
    "Grievance Mediation",  "Pension Fund Liability", "Securities Regulation",
    "Criminal Procedure",   "Water Resources",        "Due Process",
    "Mine Safety",          "Unemployment Compensation", "Attorney Discipline",
    "Environmental Liability", "the Uniform Commercial Code",
    "Corporate Governance", "Freedom of Expression",  "Tax Assessment",
    "Consumer Credit",      "Child Custody",
};

constexpr std::array<const char*, 20> kLeads = {
    "A Critique of",      "An Analysis of",        "Reforming",
    "The Future of",      "Rethinking",            "A Survey of",
    "Developments in",    "The Law of",            "A Proposal for",
    "Constitutional Limits on", "The Economics of", "Judicial Review of",
    "Regulating",         "A Practitioner's Guide to", "The Evolution of",
    "Problems in",        "Federal Preemption of", "Enforcement of",
    "Liability Under",    "A Comparative Study of",
};

constexpr std::array<const char*, 16> kTails = {
    "in West Virginia",
    "After the 1977 Amendments",
    "Under the Federal Act",
    "A Case for Reform",
    "An Empirical Study",
    "Theory and Practice",
    "The Unresolved Questions",
    "Toward a New Standard",
    "A Defense Perspective",
    "and the Public Interest",
    "in the Coal Fields",
    "A Legislative History",
    "The Courts Respond",
    "Lessons from the Cases",
    "and Its Discontents",
    "Beyond the Statute",
};

}  // namespace

AuthorName NameGenerator::NextAuthor() {
  AuthorName name;
  name.surname = kSurnames[rng_.Uniform(kSurnames.size())];
  std::string given = kGivenNames[rng_.Uniform(kGivenNames.size())];
  // Most entries carry a middle initial, as in the source index.
  if (!rng_.OneIn(4)) {
    given += ' ';
    given += static_cast<char>('A' + rng_.Uniform(26));
    given += '.';
  }
  name.given = given;
  if (rng_.OneIn(12)) {
    name.suffix = kSuffixes[rng_.Uniform(kSuffixes.size())];
  }
  name.student_material = rng_.OneIn(4);
  return name;
}

std::string NameGenerator::NextTitle() {
  std::string title = kLeads[rng_.Uniform(kLeads.size())];
  title += ' ';
  title += kTopics[rng_.Uniform(kTopics.size())];
  if (rng_.OneIn(2)) {
    title += ": ";
    title += kTails[rng_.Uniform(kTails.size())];
  }
  return title;
}

std::string NameGenerator::NextSurname() {
  return kSurnames[rng_.Uniform(kSurnames.size())];
}

}  // namespace authidx::workload
