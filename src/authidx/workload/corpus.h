#ifndef AUTHIDX_WORKLOAD_CORPUS_H_
#define AUTHIDX_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <vector>

#include "authidx/model/record.h"

namespace authidx::workload {

/// Parameters for synthetic corpus generation.
struct CorpusOptions {
  /// Number of entries (index lines) to generate.
  size_t entries = 10000;
  /// Size of the author population; author productivity is Zipfian, so a
  /// few authors contribute many entries (as in real cumulative indexes).
  size_t authors = 2000;
  double author_skew = 0.8;
  /// Volume range; years ascend one per volume starting at `first_year`.
  uint32_t first_volume = 69;
  uint32_t last_volume = 95;
  uint32_t first_year = 1966;
  /// Probability (in 1/n form) that an entry has coauthors.
  uint64_t coauthor_one_in = 6;
  uint64_t seed = 0x5eed;
};

/// Generates a deterministic corpus: same options -> identical entries.
std::vector<Entry> GenerateCorpus(const CorpusOptions& options);

}  // namespace authidx::workload

#endif  // AUTHIDX_WORKLOAD_CORPUS_H_
