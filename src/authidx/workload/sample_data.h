#ifndef AUTHIDX_WORKLOAD_SAMPLE_DATA_H_
#define AUTHIDX_WORKLOAD_SAMPLE_DATA_H_

#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx::workload {

/// The embedded sample corpus: a transcription of ~90 entries of the
/// West Virginia Law Review cumulative Author Index (95 W. Va. L. Rev.
/// 1365 (1993)) — the document supplied as the reproduction source.
/// Serves as golden data for parser/typesetter tests and the
/// `law_review_index` example.
std::string_view SampleIndexTsv();

/// Parsed form of SampleIndexTsv().
Result<std::vector<Entry>> LoadSampleEntries();

}  // namespace authidx::workload

#endif  // AUTHIDX_WORKLOAD_SAMPLE_DATA_H_
