#include "authidx/obs/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>

#include "authidx/common/env.h"

namespace authidx::obs {

namespace {

// Reason phrases for the statuses the observability routes use.
const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

// Writes all of `data`, retrying on short writes and EINTR.
// MSG_NOSIGNAL: a peer that closed early must yield EPIPE, not a
// process-killing SIGPIPE (the CLI does not install a handler).
void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // Peer went away (EPIPE et al.); nothing useful to do.
    }
    off += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(fd, out);
}

}  // namespace

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

Status HttpServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("http server already running");
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError("pipe: " + ErrnoMessage(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Status s =
        Status::IOError("socket: " + ErrnoMessage(errno));
    Stop();
    return s;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::IOError("bind port " + std::to_string(port) + ": " +
                               ErrnoMessage(errno));
    Stop();
    return s;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status s =
        Status::IOError("listen: " + ErrnoMessage(errno));
    Stop();
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s =
        Status::IOError("getsockname: " + ErrnoMessage(errno));
    Stop();
    return s;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  {
    MutexLock lock(queue_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  handlers_.reserve(kHandlerThreads);
  for (int i = 0; i < kHandlerThreads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    // Wake the poll() so the worker observes running_ == false.
    char byte = 'q';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) {
      handler.join();
    }
  }
  handlers_.clear();
  {
    // Handlers drain the queue before exiting, so anything left here
    // means Stop() without Start(); close defensively anyway.
    MutexLock lock(queue_mu_);
    for (int fd : pending_) {
      ::close(fd);
    }
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void HttpServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        !running_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    bool enqueued = false;
    {
      MutexLock lock(queue_mu_);
      if (pending_.size() < kAcceptBacklog) {
        pending_.push_back(conn);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.NotifyOne();
    } else {
      // Backlog full: shed at accept rather than queue unboundedly —
      // a probe that cannot be served soon is better off retrying.
      ::close(conn);
    }
  }
}

void HttpServer::HandlerLoop() {
  while (true) {
    int conn = -1;
    queue_mu_.Lock();
    while (pending_.empty() && !stopping_) {
      queue_cv_.Wait(queue_mu_);
    }
    if (pending_.empty()) {
      queue_mu_.Unlock();
      return;  // stopping_ and drained: exit.
    }
    conn = pending_.front();
    pending_.pop_front();
    queue_mu_.Unlock();
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpServer::HandleConnection(int fd) {
  // A stalled client must not wedge the serial accept loop forever —
  // neither one that never finishes its request (recv timeout) nor one
  // that never reads a response larger than the socket buffer (send
  // timeout).
  timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the request headers; the body (if any) is
  // ignored since only GET is served.
  char buf[8192];
  size_t len = 0;
  while (len < sizeof(buf)) {
    ssize_t n = ::read(fd, buf + len, sizeof(buf) - len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // Timeout or close before a full request: drop.
    }
    len += static_cast<size_t>(n);
    if (std::string_view(buf, len).find("\r\n\r\n") !=
        std::string_view::npos) {
      break;
    }
  }
  std::string_view request(buf, len);
  if (request.find("\r\n\r\n") == std::string_view::npos) {
    WriteResponse(fd, {431, "text/plain; charset=utf-8",
                       "request headers too large\n"});
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = request.find("\r\n");
  std::string_view line = request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  HttpResponse response;
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    response = {400, "text/plain; charset=utf-8", "malformed request\n"};
  } else {
    std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query_pos = target.find('?');
    if (query_pos != std::string_view::npos) {
      target = target.substr(0, query_pos);
    }
    if (method != "GET") {
      response = {405, "text/plain; charset=utf-8",
                  "only GET is supported\n"};
    } else {
      response = {404, "text/plain; charset=utf-8", "not found\n"};
      for (const auto& [path, handler] : routes_) {
        if (target == path) {
          response = handler();
          break;
        }
      }
    }
  }
  WriteResponse(fd, response);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace authidx::obs
