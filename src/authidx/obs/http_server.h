#ifndef AUTHIDX_OBS_HTTP_SERVER_H_
#define AUTHIDX_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/status.h"
#include "authidx/common/thread_annotations.h"

namespace authidx::obs {

/// What a route handler returns; serialized as an HTTP/1.1 response
/// with Content-Length and Connection: close.
struct HttpResponse {
  /// HTTP status code (200, 404, 503, ...).
  int status = 200;
  /// Content-Type header value.
  std::string content_type = "text/plain; charset=utf-8";
  /// Response body.
  std::string body;
};

/// Minimal dependency-free blocking HTTP/1.1 server for observability
/// endpoints (POSIX sockets only). One thread accepts connections into
/// a small bounded backlog drained by a few handler threads, so a slow
/// /metrics scrape cannot starve a /healthz probe (the health check
/// must stay responsive exactly when the process is struggling). When
/// the backlog is full, further connections are closed immediately —
/// sized for operators and probes, not for traffic. Only GET is
/// supported; the query string is stripped before route lookup;
/// unknown paths get 404 and non-GET methods 405. Register every route
/// before Start().
class HttpServer {
 public:
  /// Computes the response for one GET request. Called on a handler
  /// thread — concurrently with other handlers — so it must be
  /// thread-safe against them and the rest of the process.
  using Handler = std::function<HttpResponse()>;

  /// Server with no routes, not yet listening.
  HttpServer();

  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Mounts `handler` at exact path `path` (e.g. "/metrics"). Not
  /// thread-safe; call before Start().
  void Route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()),
  /// starts the worker thread, and returns. Fails if already started
  /// or the bind/listen fails.
  Status Start(int port);

  /// Port actually bound, valid after a successful Start().
  int port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Wakes the worker, joins it, and closes the listening socket.
  /// Idempotent.
  void Stop();

  /// Requests served since Start() (any status).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  // Accepted connections waiting for a handler thread; more than this
  // and new connections are shed at accept.
  static constexpr size_t kAcceptBacklog = 32;
  static constexpr int kHandlerThreads = 4;

  void Serve();
  void HandlerLoop();
  void HandleConnection(int fd);

  std::vector<std::pair<std::string, Handler>> routes_;
  std::thread thread_;
  std::vector<std::thread> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // Self-pipe: Stop() unblocks poll().
  int port_ = 0;

  Mutex queue_mu_;
  CondVar queue_cv_;
  // Accepted fds awaiting a handler (bounded by kAcceptBacklog).
  std::deque<int> pending_ AUTHIDX_GUARDED_BY(queue_mu_);
  // Set by Stop() after the accept thread exits; handlers drain
  // pending_ and return.
  bool stopping_ AUTHIDX_GUARDED_BY(queue_mu_) = false;
};

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_HTTP_SERVER_H_
