#include "authidx/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "authidx/common/status.h"

namespace authidx::obs {

namespace {

// Per-thread shard slot, assigned round-robin on first use so threads
// spread across a counter's shards without hashing thread ids.
uint32_t ThreadShardSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Counter::Inc(uint64_t delta) {
  shards_[ThreadShardSlot() % kShards].value.fetch_add(
      delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) {
  value_.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const { return value_.load(std::memory_order_relaxed); }

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < 4) {
    return static_cast<size_t>(value);
  }
  // 2^octave <= value < 2^(octave+1), octave in [2, 63].
  int octave = 63 - std::countl_zero(value);
  uint64_t sub = (value >> (octave - 2)) & 3;
  return static_cast<size_t>(octave - 1) * 4 + static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < 4) {
    return index;
  }
  size_t octave = index / 4 + 1;
  uint64_t sub = index % 4;
  return (4 + sub) << (octave - 2);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < 4) {
    return index + 1;
  }
  size_t octave = index / 4 + 1;
  uint64_t width = uint64_t{1} << (octave - 2);
  uint64_t lower = BucketLowerBound(index);
  // The topmost bucket's upper bound is 2^64; saturate.
  if (lower > std::numeric_limits<uint64_t>::max() - width) {
    return std::numeric_limits<uint64_t>::max();
  }
  return lower + width;
}

void LatencyHistogram::Record(uint64_t value_ns) {
  buckets_[BucketIndex(value_ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

uint64_t LatencyHistogram::SumNs() const {
  return sum_.load(std::memory_order_relaxed);
}

uint64_t LatencyHistogram::QuantileNs(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      uint64_t lower = BucketLowerBound(i);
      uint64_t upper = BucketUpperBound(i);
      return lower + (upper - lower - 1) / 2;
    }
  }
  return BucketLowerBound(kBuckets - 1);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.p50 = QuantileNs(0.50);
  snap.p90 = QuantileNs(0.90);
  snap.p99 = QuantileNs(0.99);
  // Coarse cumulative buckets at powers of 4 ns, 1 ns .. ~275 s. Powers
  // of 4 are always fine-bucket boundaries, so no fine bucket straddles
  // a coarse bound.
  uint64_t bound = 1;
  size_t fine = 0;
  uint64_t cumulative = 0;
  for (int k = 0; k < 20; ++k) {
    while (fine < kBuckets && BucketUpperBound(fine) <= bound + 1) {
      cumulative += counts[fine];
      ++fine;
    }
    snap.bounds.push_back(bound);
    snap.cumulative.push_back(cumulative);
    bound *= 4;
  }
  return snap;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name) {
      return &metric;
    }
  }
  return nullptr;
}

MetricsRegistry::Registered* MetricsRegistry::FindLocked(std::string_view name,
                                                         MetricType type) {
  for (const auto& metric : metrics_) {
    if (metric->name == name) {
      AUTHIDX_INTERNAL_CHECK(metric->type == type);
      return metric.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(std::string_view name,
                                          std::string_view help) {
  MutexLock lock(mu_);
  if (Registered* existing = FindLocked(name, MetricType::kCounter)) {
    return existing->counter.get();
  }
  auto metric = std::make_unique<Registered>();
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->type = MetricType::kCounter;
  metric->counter = std::make_unique<Counter>();
  Counter* out = metric->counter.get();
  metrics_.push_back(std::move(metric));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(std::string_view name,
                                      std::string_view help) {
  MutexLock lock(mu_);
  if (Registered* existing = FindLocked(name, MetricType::kGauge)) {
    return existing->gauge.get();
  }
  auto metric = std::make_unique<Registered>();
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->type = MetricType::kGauge;
  metric->gauge = std::make_unique<Gauge>();
  Gauge* out = metric->gauge.get();
  metrics_.push_back(std::move(metric));
  return out;
}

LatencyHistogram* MetricsRegistry::RegisterLatencyHistogram(
    std::string_view name, std::string_view help) {
  MutexLock lock(mu_);
  if (Registered* existing = FindLocked(name, MetricType::kHistogram)) {
    return existing->histogram.get();
  }
  auto metric = std::make_unique<Registered>();
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->type = MetricType::kHistogram;
  metric->histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* out = metric->histogram.get();
  metrics_.push_back(std::move(metric));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(metrics_.size());
  for (const auto& metric : metrics_) {
    MetricValue value;
    value.name = metric->name;
    value.help = metric->help;
    value.type = metric->type;
    switch (metric->type) {
      case MetricType::kCounter:
        value.counter = metric->counter->Value();
        break;
      case MetricType::kGauge:
        value.gauge = metric->gauge->Value();
        break;
      case MetricType::kHistogram:
        value.histogram = metric->histogram->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(value));
  }
  return snap;
}

}  // namespace authidx::obs
