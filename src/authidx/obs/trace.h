#ifndef AUTHIDX_OBS_TRACE_H_
#define AUTHIDX_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/obs/metrics.h"

namespace authidx::obs {

/// 128-bit request correlation id. Generated at the edge that first
/// samples a request (net::Client when tracing is enabled, the server
/// head-sampler otherwise), propagated across the wire in the frame
/// trace-context extension (docs/PROTOCOL.md), and stamped into
/// structured log events, slowlog entries, and /tracez — so one
/// `grep trace_id=<hex>` reconstructs a request end to end. The
/// all-zero value is the "no trace" sentinel and is never generated.
struct TraceId {
  /// Most significant 8 bytes.
  uint64_t hi = 0;
  /// Least significant 8 bytes.
  uint64_t lo = 0;

  /// True for the all-zero "no trace" sentinel.
  bool IsZero() const { return hi == 0 && lo == 0; }

  /// 32 lowercase hex characters, hi half first — the rendering every
  /// log line, CLI output, and HTTP surface uses, so grep matches.
  std::string ToHex() const;

  /// Value equality.
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }

  /// Value inequality.
  friend bool operator!=(const TraceId& a, const TraceId& b) {
    return !(a == b);
  }
};

/// Per-request buffer of completed spans forming a tree (parents open
/// before and close after their children). NOT thread-safe: one Trace
/// belongs to one request on one thread; unlike the metric instruments
/// it allocates freely, which is fine off the always-on hot path.
class Trace {
 public:
  /// One timed region. Spans appear in start order; `depth` encodes the
  /// tree (a span's parent is the nearest preceding span with a smaller
  /// depth).
  struct Span {
    /// Call-site label (e.g. "parse", "candidates").
    std::string name;
    /// Nesting depth; the root span is 0.
    int depth = 0;
    /// MonotonicNowNs() at span start.
    uint64_t start_ns = 0;
    /// Elapsed ns; 0 until the span ends.
    uint64_t duration_ns = 0;
  };

  Trace() = default;

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span at the current depth; returns its index for EndSpan.
  /// Used by TraceSpan; call directly only for hand-built traces.
  size_t StartSpan(std::string_view name);

  /// Closes the span returned by StartSpan with its elapsed time.
  void EndSpan(size_t index, uint64_t duration_ns);

  /// Appends one fully-specified span (explicit depth and timing)
  /// without touching the StartSpan/EndSpan depth counter. For
  /// assembling a tree from spans timed elsewhere — the RPC server
  /// grafts the engine's spans under its lifecycle spans this way, and
  /// the client rebuilds the server's tree from the wire. Spans must be
  /// appended in start order for ToString() to render the tree
  /// correctly. Returns the span's index (usable with EndSpan to set a
  /// duration known only later).
  size_t AppendSpan(std::string_view name, int depth, uint64_t start_ns,
                    uint64_t duration_ns);

  /// Completed and still-open spans, in start order.
  const std::vector<Span>& spans() const { return spans_; }

  /// Stamps the correlation id carried by this trace (see TraceId).
  void set_trace_id(TraceId id) { trace_id_ = id; }

  /// The correlation id, or the zero sentinel when never stamped.
  TraceId trace_id() const { return trace_id_; }

  /// Renders the span tree with per-span durations and percent of the
  /// root span's duration, one span per line.
  std::string ToString() const;

 private:
  std::vector<Span> spans_;
  int depth_ = 0;
  TraceId trace_id_;
};

/// RAII timer for one span. Records the elapsed time into `histogram`
/// (when non-null, thread-safe, allocation-free) and appends a span to
/// `trace` (when non-null, single-threaded). With both null the
/// stopwatch is inactive and never reads the clock, so always-on call
/// sites pay nothing when no one is listening.
class TraceSpan {
 public:
  /// Starts timing. Either pointer may be null.
  TraceSpan(Trace* trace, LatencyHistogram* histogram,
            std::string_view name);

  /// Stops (if still running) and records.
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Stops early and records; returns the elapsed ns (0 if inactive or
  /// already stopped).
  uint64_t Stop();

 private:
  Trace* trace_;
  LatencyHistogram* histogram_;
  size_t span_index_ = 0;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_TRACE_H_
