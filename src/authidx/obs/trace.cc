#include "authidx/obs/trace.h"

#include "authidx/common/strings.h"

namespace authidx::obs {

namespace {

// "184.2 us" style human duration.
std::string FormatNs(uint64_t ns) {
  if (ns < 1000) {
    return StringPrintf("%llu ns", static_cast<unsigned long long>(ns));
  }
  double value = static_cast<double>(ns);
  if (ns < 1000 * 1000) {
    return StringPrintf("%.1f us", value / 1e3);
  }
  if (ns < 1000ULL * 1000 * 1000) {
    return StringPrintf("%.2f ms", value / 1e6);
  }
  return StringPrintf("%.3f s", value / 1e9);
}

}  // namespace

std::string TraceId::ToHex() const {
  return StringPrintf("%016llx%016llx",
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(lo));
}

size_t Trace::StartSpan(std::string_view name) {
  Span span;
  span.name = std::string(name);
  span.depth = depth_++;
  span.start_ns = MonotonicNowNs();
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

size_t Trace::AppendSpan(std::string_view name, int depth,
                         uint64_t start_ns, uint64_t duration_ns) {
  Span span;
  span.name = std::string(name);
  span.depth = depth;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Trace::EndSpan(size_t index, uint64_t duration_ns) {
  if (index >= spans_.size()) {
    return;
  }
  spans_[index].duration_ns = duration_ns;
  if (depth_ > 0) {
    --depth_;
  }
}

std::string Trace::ToString() const {
  if (spans_.empty()) {
    return "(empty trace)\n";
  }
  // A span is the last child of its parent when no later span reaches
  // its depth again before the tree pops above it.
  std::vector<bool> is_last(spans_.size(), true);
  for (size_t i = 0; i < spans_.size(); ++i) {
    for (size_t j = i + 1; j < spans_.size(); ++j) {
      if (spans_[j].depth < spans_[i].depth) {
        break;
      }
      if (spans_[j].depth == spans_[i].depth) {
        is_last[i] = false;
        break;
      }
    }
  }
  uint64_t root_ns = spans_.front().duration_ns;
  std::string out;
  std::vector<bool> ancestor_last;  // Per depth level above the current.
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    size_t depth = static_cast<size_t>(span.depth);
    ancestor_last.resize(depth);
    // Box-drawing characters are multi-byte, so pad by display columns
    // (3 per tree level), not by byte count.
    std::string prefix;
    size_t prefix_cols = 0;
    for (size_t level = 1; level < depth; ++level) {
      prefix += ancestor_last[level] ? "   " : "│  ";
      prefix_cols += 3;
    }
    if (depth > 0) {
      prefix += is_last[i] ? "└─ " : "├─ ";
      prefix_cols += 3;
      ancestor_last.resize(depth + 1);
      ancestor_last[depth] = is_last[i];
    }
    double percent =
        root_ns > 0 ? 100.0 * static_cast<double>(span.duration_ns) /
                          static_cast<double>(root_ns)
                    : 0.0;
    size_t label_cols = prefix_cols + span.name.size();
    std::string pad(label_cols < 40 ? 40 - label_cols : 1, ' ');
    out += prefix + span.name + pad +
           StringPrintf("%12s %6.1f%%\n",
                        FormatNs(span.duration_ns).c_str(), percent);
  }
  return out;
}

TraceSpan::TraceSpan(Trace* trace, LatencyHistogram* histogram,
                     std::string_view name)
    : trace_(trace), histogram_(histogram) {
  if (trace_ == nullptr && histogram_ == nullptr) {
    return;
  }
  active_ = true;
  if (trace_ != nullptr) {
    span_index_ = trace_->StartSpan(name);
    start_ns_ = trace_->spans()[span_index_].start_ns;
  } else {
    start_ns_ = MonotonicNowNs();
  }
}

TraceSpan::~TraceSpan() { Stop(); }

uint64_t TraceSpan::Stop() {
  if (!active_) {
    return 0;
  }
  active_ = false;
  uint64_t elapsed = MonotonicNowNs() - start_ns_;
  if (histogram_ != nullptr) {
    histogram_->Record(elapsed);
  }
  if (trace_ != nullptr) {
    trace_->EndSpan(span_index_, elapsed);
  }
  return elapsed;
}

}  // namespace authidx::obs
