#ifndef AUTHIDX_OBS_SLOWLOG_H_
#define AUTHIDX_OBS_SLOWLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/obs/trace.h"

namespace authidx::obs {

/// One captured slow query: what ran, how long it took, which plan the
/// planner chose, and the full span tree recorded while it executed.
struct SlowQueryEntry {
  /// Wall-clock capture time, milliseconds since the Unix epoch.
  uint64_t unix_ms = 0;
  /// End-to-end query duration in nanoseconds.
  uint64_t duration_ns = 0;
  /// Hex trace id of the RPC this query served (TraceId::ToHex), so
  /// one grep correlates /slowlog with server logs and /tracez; empty
  /// when the query carried no trace context.
  std::string trace_id;
  /// The query text as submitted.
  std::string query;
  /// Planner's chosen plan kind (query::PlanKindToString).
  std::string plan;
  /// Copy of the trace span tree (see Trace::Span for the encoding).
  std::vector<Trace::Span> spans;
};

/// Fixed-capacity ring buffer of the most recent slow queries.
/// Record() overwrites the oldest entry once full; Snapshot() returns
/// the retained entries oldest-first. Thread-safe (mutex; this is the
/// slow path by definition, so a lock is fine).
class SlowQueryLog {
 public:
  /// Ring with room for `capacity` entries (minimum 1).
  explicit SlowQueryLog(size_t capacity = 32);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Appends one captured query, evicting the oldest when full.
  void Record(SlowQueryEntry entry);

  /// Copies the retained entries, oldest first.
  std::vector<SlowQueryEntry> Snapshot() const;

  /// Slow queries ever recorded (including evicted ones).
  uint64_t total_recorded() const;

  /// Maximum entries retained.
  size_t capacity() const { return capacity_; }

  /// Renders entries as a JSON array of objects with keys `unix_ms`,
  /// `duration_ns`, `trace_id`, `query`, `plan`, and `spans` (array of
  /// {name, depth, start_ns, duration_ns}). Stable field order.
  static std::string ToJson(const std::vector<SlowQueryEntry>& entries);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  // ring_[ (start_ + i) % capacity_ ]
  std::vector<SlowQueryEntry> ring_ AUTHIDX_GUARDED_BY(mu_);
  size_t start_ AUTHIDX_GUARDED_BY(mu_) = 0;
  size_t size_ AUTHIDX_GUARDED_BY(mu_) = 0;
  uint64_t total_ AUTHIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_SLOWLOG_H_
