#ifndef AUTHIDX_OBS_LOG_H_
#define AUTHIDX_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/mutex.h"
#include "authidx/common/result.h"
#include "authidx/common/status.h"
#include "authidx/common/thread_annotations.h"

namespace authidx::obs {

/// Severity of a structured log event, ordered ascending. A Logger
/// drops events below its minimum level after one atomic load, before
/// any formatting work happens.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Stable upper-case name for `level` ("DEBUG", "INFO", "WARN",
/// "ERROR").
std::string_view LogLevelToString(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (ASCII case-insensitive) into
/// `*level`; returns false (leaving `*level` untouched) on unknown
/// names.
bool ParseLogLevel(std::string_view text, LogLevel* level);

/// One key=value pair of a structured event. Holds views and scalars
/// only — no ownership, no allocation; any referenced string storage
/// must outlive the Log() call that formats it.
struct LogField {
  /// Value representations a field can carry.
  enum class Kind { kString, kInt, kUint, kDouble, kBool };

  /// String value (quoted and escaped on output).
  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}

  /// C-string value (kept distinct so it does not convert to bool).
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}

  /// Boolean value, rendered as true/false.
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}

  /// Floating-point value, rendered with %.6g.
  LogField(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}

  /// Integral value (any width; signedness is preserved).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string_view k, T v)
      : key(k), kind(std::is_signed_v<T> ? Kind::kInt : Kind::kUint) {
    if constexpr (std::is_signed_v<T>) {
      i = static_cast<int64_t>(v);
    } else {
      u = static_cast<uint64_t>(v);
    }
  }

  /// Field name, emitted verbatim (use lower_snake_case).
  std::string_view key;
  /// Which union member below is active.
  Kind kind;
  /// Active when kind == kString.
  std::string_view str;
  /// Active union of the scalar kinds.
  union {
    int64_t i;
    uint64_t u;
    double d;
    bool b;
  };
};

/// Destination for formatted log lines. Write() receives one complete
/// line without a trailing newline and is always invoked under the
/// owning Logger's sink mutex, so implementations need no locking of
/// their own against sibling writes.
class LogSink {
 public:
  virtual ~LogSink() = default;

  /// Emits one formatted line (no trailing newline; the sink frames).
  virtual void Write(LogLevel level, std::string_view line) = 0;

  /// Pushes buffered lines toward the medium. Default: no-op OK.
  virtual Status Flush();
};

/// Sink writing each line to stderr via fwrite — no iostreams, no
/// allocation (lint rule 5 keeps std::cerr out of library code).
class StderrSink final : public LogSink {
 public:
  StderrSink() = default;

  /// Writes `line` plus '\n' to stderr in a single fwrite.
  void Write(LogLevel level, std::string_view line) override;
};

/// Sink accumulating lines in memory; for tests asserting on emitted
/// events. Allocates (it is a test double, not a production sink).
class VectorSink final : public LogSink {
 public:
  VectorSink() = default;

  /// Stores a copy of `line`.
  void Write(LogLevel level, std::string_view line) override;

  /// All lines written so far, in order.
  const std::vector<std::string>& lines() const { return lines_; }

  /// True if any stored line contains `needle`.
  bool Contains(std::string_view needle) const;

 private:
  std::vector<std::string> lines_;
};

/// Sink appending lines to a file through common/env.h, rotating when
/// the active file exceeds a size budget: `path` is the live log,
/// `path.1` the most recently rotated, up to `path.<max_files>`.
/// Lines are Flush()ed to the OS after every write so a crash loses at
/// most the line being written. Write errors cannot propagate from the
/// void interface; the first one is latched in status() and later
/// lines are dropped.
class RotatingFileSink final : public LogSink {
 public:
  /// Rotation policy.
  struct Options {
    /// Rotate once the active file exceeds this many bytes.
    uint64_t max_file_bytes = 8 * 1024 * 1024;
    /// Rotated files kept (path.1 .. path.N); older ones are removed.
    int max_files = 3;
  };

  /// Opens the sink over `path` (an existing live file is rotated away
  /// first, so every process start begins a fresh file). `env` must
  /// outlive the sink; nullptr means Env::Default().
  static Result<std::unique_ptr<RotatingFileSink>> Open(
      Env* env, std::string path, Options options);

  /// Open() with default Options.
  static Result<std::unique_ptr<RotatingFileSink>> Open(Env* env,
                                                        std::string path);

  ~RotatingFileSink() override;

  /// Appends `line` plus '\n', rotating first when over budget.
  void Write(LogLevel level, std::string_view line) override;

  /// Flushes the active file.
  Status Flush() override;

  /// First write/rotation error, or OK. Latched; never resets.
  Status status() const;

 private:
  RotatingFileSink(Env* env, std::string path, Options options);

  Status RotateLocked() AUTHIDX_REQUIRES(mu_);
  Status OpenActiveLocked() AUTHIDX_REQUIRES(mu_);

  Env* const env_;
  const std::string path_;
  const Options options_;
  mutable Mutex mu_;
  std::unique_ptr<WritableFile> file_ AUTHIDX_GUARDED_BY(mu_);
  uint64_t bytes_written_ AUTHIDX_GUARDED_BY(mu_) = 0;
  Status first_error_ AUTHIDX_GUARDED_BY(mu_);
};

/// Leveled structured logger. Log() formats `event` plus key=value
/// fields into a fixed stack buffer — no allocation on any level — and
/// hands the line to every attached sink under a mutex (lines from
/// concurrent threads never interleave). Disabled levels cost one
/// relaxed atomic load. Sinks are attached before concurrent use;
/// everything else is thread-safe.
class Logger {
 public:
  /// Formatted-line capacity: longer lines truncate with a visible
  /// "..." marker. Also sizes the last-error buffer, so last_error()
  /// always returns a full line.
  static constexpr size_t kMaxLineBytes = 1024;

  /// Logger with the given minimum level and no sinks (events are
  /// formatted only when at least one sink is attached).
  explicit Logger(LogLevel min_level = LogLevel::kInfo);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Attaches an owned sink. Not thread-safe: attach during setup.
  void AddSink(std::unique_ptr<LogSink> sink);

  /// Attaches a caller-owned sink (must outlive the logger). Not
  /// thread-safe: attach during setup.
  void AddBorrowedSink(LogSink* sink);

  /// True when events at `level` would be emitted.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
               min_level_.load(std::memory_order_relaxed) &&
           !sinks_.empty();
  }

  /// Adjusts the minimum level (thread-safe).
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Current minimum level.
  LogLevel min_level() const {
    return static_cast<LogLevel>(
        min_level_.load(std::memory_order_relaxed));
  }

  /// Emits one structured event:
  ///   ts=<UTC ISO-8601 ms> level=<LEVEL> event=<event> k1=v1 k2="v 2"
  /// String values are quoted and minimally escaped; an over-long line
  /// is truncated with a trailing "..." marker. Allocation-free.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  /// Flushes every sink; first failure wins.
  Status FlushSinks();

  /// kError events emitted since construction (for health surfaces).
  uint64_t error_count() const {
    return error_count_.load(std::memory_order_relaxed);
  }

  /// Copy of the most recent kError line ("" when none). Allocates;
  /// diagnostic surface, not hot path.
  std::string last_error() const;

  /// Process-wide logger with no sinks that drops every event; use as
  /// the default so call sites never null-check.
  static Logger* Disabled();

 private:
  std::atomic<int> min_level_;
  std::atomic<uint64_t> error_count_{0};
  mutable Mutex mu_;  // Serializes sink writes + last_error_.
  // Deliberately unguarded: sinks are attached during single-threaded
  // setup (documented on AddSink/AddBorrowedSink) and only read
  // afterwards, so guarding them would force Enabled() — a hot-path
  // pre-check — to take the lock.
  std::vector<std::unique_ptr<LogSink>> owned_sinks_;
  std::vector<LogSink*> sinks_;
  char last_error_[kMaxLineBytes] AUTHIDX_GUARDED_BY(mu_) = {};
  size_t last_error_len_ AUTHIDX_GUARDED_BY(mu_) = 0;
};

/// Wall-clock time in milliseconds since the Unix epoch (CLOCK_REALTIME;
/// the timestamp base for log lines and slow-query capture times).
uint64_t WallUnixMillis();

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_LOG_H_
