#include "authidx/obs/log.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "authidx/common/strings.h"

namespace authidx::obs {

namespace {

// Fixed-capacity line builder: appends clamp at the buffer end and set
// a truncation flag, so formatting never allocates and never overruns.
class LineBuffer {
 public:
  void Append(std::string_view s) {
    size_t room = kCapacity - len_;
    if (s.size() > room) {
      s = s.substr(0, room);
      truncated_ = true;
    }
    std::memcpy(data_ + len_, s.data(), s.size());
    len_ += s.size();
  }

  void AppendChar(char c) {
    if (len_ < kCapacity) {
      data_[len_++] = c;
    } else {
      truncated_ = true;
    }
  }

  void AppendPrintf(const char* format, ...)
      __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, format);
    size_t room = kCapacity - len_;
    int n = std::vsnprintf(data_ + len_, room + 1, format, args);
    va_end(args);
    if (n < 0) {
      return;
    }
    if (static_cast<size_t>(n) > room) {
      len_ = kCapacity;
      truncated_ = true;
    } else {
      len_ += static_cast<size_t>(n);
    }
  }

  std::string_view Finish() {
    if (truncated_) {
      // Overwrite the tail with a marker so truncation is visible.
      static constexpr char kMarker[] = "...";
      size_t marker_len = sizeof(kMarker) - 1;
      size_t at = kCapacity - marker_len;
      std::memcpy(data_ + at, kMarker, marker_len);
      len_ = kCapacity;
    }
    return std::string_view(data_, len_);
  }

 private:
  // One line: timestamp + level + event + a handful of fields. 1 KiB
  // covers every engine event; longer lines truncate visibly. Shared
  // with Logger::last_error_ so a latched error is never re-truncated.
  static constexpr size_t kCapacity = Logger::kMaxLineBytes;

  char data_[kCapacity + 1];
  size_t len_ = 0;
  bool truncated_ = false;
};

// True when a string value can be emitted bare (no quotes): non-empty
// printable ASCII without spaces, quotes, '=' or backslashes.
bool IsBareValue(std::string_view s) {
  if (s.empty() || s.size() > 64) {
    return false;
  }
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 0x7F || c == '"' || c == '\\' || c == '=') {
      return false;
    }
  }
  return true;
}

void AppendQuoted(LineBuffer* line, std::string_view s) {
  line->AppendChar('"');
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      line->AppendChar('\\');
      line->AppendChar(c);
    } else if (u < 0x20) {
      line->AppendPrintf("\\x%02x", u);
    } else {
      line->AppendChar(c);
    }
  }
  line->AppendChar('"');
}

void AppendField(LineBuffer* line, const LogField& field) {
  line->AppendChar(' ');
  line->Append(field.key);
  line->AppendChar('=');
  switch (field.kind) {
    case LogField::Kind::kString:
      if (IsBareValue(field.str)) {
        line->Append(field.str);
      } else {
        AppendQuoted(line, field.str);
      }
      break;
    case LogField::Kind::kInt:
      line->AppendPrintf("%" PRId64, field.i);
      break;
    case LogField::Kind::kUint:
      line->AppendPrintf("%" PRIu64, field.u);
      break;
    case LogField::Kind::kDouble:
      line->AppendPrintf("%.6g", field.d);
      break;
    case LogField::Kind::kBool:
      line->Append(field.b ? "true" : "false");
      break;
  }
}

void AppendTimestamp(LineBuffer* line, uint64_t unix_ms) {
  std::time_t seconds = static_cast<std::time_t>(unix_ms / 1000);
  std::tm parts;
  gmtime_r(&seconds, &parts);
  line->AppendPrintf("ts=%04d-%02d-%02dT%02d:%02d:%02d.%03uZ",
                     parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                     parts.tm_hour, parts.tm_min, parts.tm_sec,
                     static_cast<unsigned>(unix_ms % 1000));
}

}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower = AsciiToLower(text);
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarn;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

uint64_t WallUnixMillis() {
  std::timespec ts;
  std::timespec_get(&ts, TIME_UTC);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

Status LogSink::Flush() { return Status::OK(); }

void StderrSink::Write(LogLevel level, std::string_view line) {
  (void)level;
  // One fwrite per line keeps concurrent processes' lines intact too
  // (stderr is unbuffered, and POSIX write atomicity covers this size).
  char buf[1200];
  size_t n = std::min(line.size(), sizeof(buf) - 1);
  std::memcpy(buf, line.data(), n);
  buf[n] = '\n';
  std::fwrite(buf, 1, n + 1, stderr);
}

void VectorSink::Write(LogLevel level, std::string_view line) {
  (void)level;
  lines_.emplace_back(line);
}

bool VectorSink::Contains(std::string_view needle) const {
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

RotatingFileSink::RotatingFileSink(Env* env, std::string path,
                                   Options options)
    : env_(env), path_(std::move(path)), options_(options) {}

RotatingFileSink::~RotatingFileSink() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    // Last-ditch flush; errors are already latched or unreportable.
    file_->Close().IgnoreError();
  }
}

Result<std::unique_ptr<RotatingFileSink>> RotatingFileSink::Open(
    Env* env, std::string path) {
  return Open(env, std::move(path), Options());
}

Result<std::unique_ptr<RotatingFileSink>> RotatingFileSink::Open(
    Env* env, std::string path, Options options) {
  if (env == nullptr) {
    env = Env::Default();
  }
  if (options.max_files < 1) {
    options.max_files = 1;
  }
  auto sink = std::unique_ptr<RotatingFileSink>(
      new RotatingFileSink(env, std::move(path), options));
  MutexLock lock(sink->mu_);
  if (env->FileExists(sink->path_)) {
    AUTHIDX_RETURN_NOT_OK(sink->RotateLocked());
  } else {
    AUTHIDX_RETURN_NOT_OK(sink->OpenActiveLocked());
  }
  return sink;
}

Status RotatingFileSink::OpenActiveLocked() {
  AUTHIDX_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path_));
  bytes_written_ = 0;
  return Status::OK();
}

Status RotatingFileSink::RotateLocked() {
  if (file_ != nullptr) {
    AUTHIDX_RETURN_NOT_OK(file_->Close());
    file_ = nullptr;
  }
  // Shift path.(N-1) -> path.N .. path -> path.1; the oldest falls off.
  std::string oldest =
      path_ + "." + std::to_string(options_.max_files);
  if (env_->FileExists(oldest)) {
    AUTHIDX_RETURN_NOT_OK(env_->RemoveFile(oldest));
  }
  for (int i = options_.max_files - 1; i >= 1; --i) {
    std::string from = path_ + "." + std::to_string(i);
    if (env_->FileExists(from)) {
      AUTHIDX_RETURN_NOT_OK(
          env_->RenameFile(from, path_ + "." + std::to_string(i + 1)));
    }
  }
  if (env_->FileExists(path_)) {
    AUTHIDX_RETURN_NOT_OK(env_->RenameFile(path_, path_ + ".1"));
  }
  return OpenActiveLocked();
}

void RotatingFileSink::Write(LogLevel level, std::string_view line) {
  (void)level;
  MutexLock lock(mu_);
  if (!first_error_.ok() || file_ == nullptr) {
    return;  // Latched failure: drop (cannot report from void Write).
  }
  if (bytes_written_ >= options_.max_file_bytes) {
    Status s = RotateLocked();
    if (!s.ok()) {
      first_error_ = s;
      return;
    }
  }
  Status s = file_->Append(line);
  if (s.ok()) {
    s = file_->Append("\n");
  }
  if (s.ok()) {
    // Per-line OS flush: a crash loses at most the in-flight line.
    s = file_->Flush();
  }
  if (!s.ok()) {
    first_error_ = s;
    return;
  }
  bytes_written_ += line.size() + 1;
}

Status RotatingFileSink::Flush() {
  MutexLock lock(mu_);
  AUTHIDX_RETURN_NOT_OK(first_error_);
  if (file_ == nullptr) {
    return Status::OK();
  }
  return file_->Flush();
}

Status RotatingFileSink::status() const {
  MutexLock lock(mu_);
  return first_error_;
}

Logger::Logger(LogLevel min_level)
    : min_level_(static_cast<int>(min_level)) {}

void Logger::AddSink(std::unique_ptr<LogSink> sink) {
  sinks_.push_back(sink.get());
  owned_sinks_.push_back(std::move(sink));
}

void Logger::AddBorrowedSink(LogSink* sink) { sinks_.push_back(sink); }

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!Enabled(level)) {
    return;
  }
  LineBuffer line;
  AppendTimestamp(&line, WallUnixMillis());
  line.Append(" level=");
  line.Append(LogLevelToString(level));
  line.Append(" event=");
  line.Append(event);
  for (const LogField& field : fields) {
    AppendField(&line, field);
  }
  std::string_view text = line.Finish();
  if (level == LogLevel::kError) {
    error_count_.fetch_add(1, std::memory_order_relaxed);
  }
  MutexLock lock(mu_);
  if (level == LogLevel::kError) {
    last_error_len_ = std::min(text.size(), sizeof(last_error_));
    std::memcpy(last_error_, text.data(), last_error_len_);
  }
  for (LogSink* sink : sinks_) {
    sink->Write(level, text);
  }
}

Status Logger::FlushSinks() {
  MutexLock lock(mu_);
  Status first;
  for (LogSink* sink : sinks_) {
    Status s = sink->Flush();
    if (first.ok() && !s.ok()) {
      first = s;
    }
  }
  return first;
}

std::string Logger::last_error() const {
  MutexLock lock(mu_);
  return std::string(last_error_, last_error_len_);
}

Logger* Logger::Disabled() {
  // No sinks: Enabled() is always false, Log() returns immediately.
  static Logger* disabled = new Logger(LogLevel::kError);
  return disabled;
}

}  // namespace authidx::obs
