#ifndef AUTHIDX_OBS_TRACE_STORE_H_
#define AUTHIDX_OBS_TRACE_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/obs/trace.h"

namespace authidx::obs {

/// Head-sampling decision maker: Sample() returns true for exactly one
/// request in every `every` (a round-robin over an atomic counter, so
/// the rate is exact even under concurrent callers — no RNG, no
/// clock). `every` == 0 disables sampling (Sample() is always false),
/// `every` == 1 samples everything. The negative path is one relaxed
/// fetch_add: wait-free and allocation-free, safe on the request hot
/// path.
class TraceSampler {
 public:
  /// Sampler taking every `every`-th request (0 = never).
  explicit TraceSampler(uint64_t every) : every_(every) {}

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  /// True when this request should be traced. Wait-free,
  /// allocation-free, thread-safe.
  bool Sample() {
    if (every_ == 0) {
      return false;
    }
    return counter_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }

  /// The configured rate (0 = disabled).
  uint64_t every() const { return every_; }

 private:
  const uint64_t every_;
  std::atomic<uint64_t> counter_{0};
};

/// One completed, sampled RPC retained for /tracez.
struct StoredTrace {
  /// Correlation id (never zero for a stored trace).
  TraceId id;
  /// Wall-clock completion time, milliseconds since the Unix epoch.
  uint64_t unix_ms = 0;
  /// Opcode spec name ("QUERY", "PING", ...).
  std::string opcode;
  /// End-to-end server-side duration (socket read to response sent).
  uint64_t duration_ns = 0;
  /// Full span tree, start order (see Trace::Span for the encoding).
  std::vector<Trace::Span> spans;
};

/// Thread-safe bounded store of recent sampled traces, bucketed by
/// latency decade so one flood of fast requests cannot evict the slow
/// outliers an operator is hunting (the same reasoning as rpcz/tracez
/// in production RPC stacks: tails are the signal). Each bucket is a
/// small ring overwriting its own oldest entry; the whole store never
/// holds more than kBuckets * per_bucket_capacity traces, no matter
/// how many writers race. Record() takes a mutex and copies — it runs
/// only for sampled requests, which are off the hot path by
/// construction.
class TraceStore {
 public:
  /// Latency-decade buckets: [0, 100us), [100us, 1ms), [1ms, 10ms),
  /// [10ms, 100ms), [100ms, 1s), [1s, inf).
  static constexpr size_t kBuckets = 6;

  /// Store retaining up to `per_bucket_capacity` traces per latency
  /// decade (minimum 1).
  explicit TraceStore(size_t per_bucket_capacity = 8);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Retains `trace`, evicting the oldest entry of its latency bucket
  /// when that bucket is full. Thread-safe.
  void Record(StoredTrace trace);

  /// Copies every retained trace, slowest bucket first, oldest first
  /// within a bucket. Thread-safe.
  std::vector<StoredTrace> Snapshot() const;

  /// Traces ever recorded, including evicted ones. Thread-safe.
  uint64_t total_recorded() const;

  /// Retained traces right now (never exceeds capacity()). Thread-safe.
  size_t size() const;

  /// Hard bound on retained traces: kBuckets * per_bucket_capacity.
  size_t capacity() const { return kBuckets * per_bucket_; }

  /// The latency bucket `duration_ns` lands in (exposed for tests and
  /// the /tracez renderer).
  static size_t BucketIndex(uint64_t duration_ns);

  /// Human label of bucket `index` ("[1ms, 10ms)").
  static std::string_view BucketLabel(size_t index);

  /// Renders the retained traces as the /tracez text page: one section
  /// per non-empty latency bucket (slowest first), each trace with its
  /// id, opcode, capture time, duration, and span tree. Thread-safe.
  std::string RenderText() const;

 private:
  struct Bucket {
    // ring[(start + i) % per_bucket_]
    std::vector<StoredTrace> ring;
    size_t start = 0;
  };

  const size_t per_bucket_;
  mutable Mutex mu_;
  Bucket buckets_[kBuckets] AUTHIDX_GUARDED_BY(mu_);
  uint64_t total_ AUTHIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_TRACE_STORE_H_
