#include "authidx/obs/slowlog.h"

#include <utility>

#include "authidx/common/strings.h"

namespace authidx::obs {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  MutexLock lock(mu_);
  ++total_;
  if (size_ < capacity_) {
    ring_.push_back(std::move(entry));
    ++size_;
    return;
  }
  ring_[start_] = std::move(entry);
  start_ = (start_ + 1) % capacity_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

std::string SlowQueryLog::ToJson(
    const std::vector<SlowQueryEntry>& entries) {
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"unix_ms\":";
    out += std::to_string(e.unix_ms);
    out += ",\"duration_ns\":";
    out += std::to_string(e.duration_ns);
    out += ",\"trace_id\":";
    out += JsonQuote(e.trace_id);
    out += ",\"query\":";
    out += JsonQuote(e.query);
    out += ",\"plan\":";
    out += JsonQuote(e.plan);
    out += ",\"spans\":[";
    for (size_t j = 0; j < e.spans.size(); ++j) {
      const Trace::Span& span = e.spans[j];
      if (j > 0) {
        out += ',';
      }
      out += "{\"name\":";
      out += JsonQuote(span.name);
      out += ",\"depth\":";
      out += std::to_string(span.depth);
      out += ",\"start_ns\":";
      out += std::to_string(span.start_ns);
      out += ",\"duration_ns\":";
      out += std::to_string(span.duration_ns);
      out += '}';
    }
    out += "]}";
  }
  out += ']';
  return out;
}

}  // namespace authidx::obs
