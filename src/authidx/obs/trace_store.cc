#include "authidx/obs/trace_store.h"

#include <utility>

#include "authidx/common/strings.h"

namespace authidx::obs {

namespace {

// Bucket upper bounds in ns; the last bucket is unbounded.
constexpr uint64_t kBucketUpperNs[TraceStore::kBuckets - 1] = {
    100ULL * 1000,                // 100 us
    1000ULL * 1000,               // 1 ms
    10ULL * 1000 * 1000,          // 10 ms
    100ULL * 1000 * 1000,         // 100 ms
    1000ULL * 1000 * 1000,        // 1 s
};

constexpr std::string_view kBucketLabels[TraceStore::kBuckets] = {
    "[0, 100us)",  "[100us, 1ms)", "[1ms, 10ms)",
    "[10ms, 100ms)", "[100ms, 1s)", "[1s, inf)",
};

}  // namespace

TraceStore::TraceStore(size_t per_bucket_capacity)
    : per_bucket_(per_bucket_capacity == 0 ? 1 : per_bucket_capacity) {}

size_t TraceStore::BucketIndex(uint64_t duration_ns) {
  for (size_t i = 0; i < kBuckets - 1; ++i) {
    if (duration_ns < kBucketUpperNs[i]) {
      return i;
    }
  }
  return kBuckets - 1;
}

std::string_view TraceStore::BucketLabel(size_t index) {
  return kBucketLabels[index < kBuckets ? index : kBuckets - 1];
}

void TraceStore::Record(StoredTrace trace) {
  size_t index = BucketIndex(trace.duration_ns);
  MutexLock lock(mu_);
  Bucket& bucket = buckets_[index];
  ++total_;
  if (bucket.ring.size() < per_bucket_) {
    bucket.ring.push_back(std::move(trace));
    return;
  }
  bucket.ring[bucket.start] = std::move(trace);
  bucket.start = (bucket.start + 1) % per_bucket_;
}

std::vector<StoredTrace> TraceStore::Snapshot() const {
  std::vector<StoredTrace> out;
  MutexLock lock(mu_);
  for (size_t b = kBuckets; b-- > 0;) {
    const Bucket& bucket = buckets_[b];
    for (size_t i = 0; i < bucket.ring.size(); ++i) {
      out.push_back(bucket.ring[(bucket.start + i) % bucket.ring.size()]);
    }
  }
  return out;
}

uint64_t TraceStore::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

size_t TraceStore::size() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const Bucket& bucket : buckets_) {
    n += bucket.ring.size();
  }
  return n;
}

std::string TraceStore::RenderText() const {
  std::string out = "tracez: recent sampled traces, slowest bucket first\n";
  uint64_t total;
  size_t retained = 0;
  std::vector<StoredTrace> traces;
  {
    MutexLock lock(mu_);
    total = total_;
    for (size_t b = kBuckets; b-- > 0;) {
      const Bucket& bucket = buckets_[b];
      retained += bucket.ring.size();
      for (size_t i = 0; i < bucket.ring.size(); ++i) {
        traces.push_back(bucket.ring[(bucket.start + i) % bucket.ring.size()]);
      }
    }
  }
  out += StringPrintf("recorded=%llu retained=%zu capacity=%zu\n",
                      static_cast<unsigned long long>(total), retained,
                      capacity());
  size_t current_bucket = kBuckets;  // Sentinel: no heading printed yet.
  for (const StoredTrace& trace : traces) {
    size_t bucket = BucketIndex(trace.duration_ns);
    if (bucket != current_bucket) {
      current_bucket = bucket;
      out += StringPrintf("\n== latency %.*s ==\n",
                          static_cast<int>(BucketLabel(bucket).size()),
                          BucketLabel(bucket).data());
    }
    out += StringPrintf(
        "\ntrace_id=%s op=%s unix_ms=%llu duration_ns=%llu\n",
        trace.id.ToHex().c_str(), trace.opcode.c_str(),
        static_cast<unsigned long long>(trace.unix_ms),
        static_cast<unsigned long long>(trace.duration_ns));
    Trace tree;
    for (const Trace::Span& span : trace.spans) {
      tree.AppendSpan(span.name, span.depth, span.start_ns, span.duration_ns);
    }
    out += tree.ToString();
  }
  return out;
}

}  // namespace authidx::obs
