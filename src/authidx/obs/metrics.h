#ifndef AUTHIDX_OBS_METRICS_H_
#define AUTHIDX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"

namespace authidx::obs {

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
/// Thread-safe; the unit for every duration metric in this registry.
uint64_t MonotonicNowNs();

/// Monotonically increasing event count (e.g. cache hits). Increments
/// land on one of a small fixed set of cache-line-padded shards chosen
/// per thread, so concurrent writers do not contend on one line.
/// Thread-safe; Inc() never allocates.
class Counter {
 public:
  Counter() = default;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `delta` (relaxed order). Wait-free, allocation-free.
  void Inc(uint64_t delta = 1);

  /// Sum over all shards. Racy-but-consistent under concurrent Inc: the
  /// result is some value between the true count before and after the
  /// call.
  uint64_t Value() const;

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  Shard shards_[kShards];
};

/// Last-written instantaneous value (e.g. cache bytes in use).
/// Thread-safe; Set/Add never allocate.
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// Overwrites the value (relaxed order).
  void Set(int64_t value);

  /// Adds `delta` (may be negative; relaxed order).
  void Add(int64_t delta);

  /// Current value.
  int64_t Value() const;

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one LatencyHistogram (see Snapshot()).
struct HistogramSnapshot {
  /// Total recorded samples.
  uint64_t count = 0;
  /// Sum of all recorded values, in the histogram's unit (ns).
  uint64_t sum = 0;
  /// Median estimate in ns; 0 when count == 0. Relative error is
  /// bounded by the bucket width (<= 12.5%, see LatencyHistogram).
  uint64_t p50 = 0;
  /// 90th percentile estimate in ns; same error bound as p50.
  uint64_t p90 = 0;
  /// 99th percentile estimate in ns; same error bound as p50.
  uint64_t p99 = 0;
  /// Coarse upper bounds (powers of 4 ns) for Prometheus-style
  /// exposition; the final implicit bucket is +Inf.
  std::vector<uint64_t> bounds;
  /// Cumulative counts: cumulative[i] = samples <= bounds[i].
  std::vector<uint64_t> cumulative;
};

/// Fixed-bucket log-linear latency histogram over uint64 nanoseconds.
/// Buckets are exact below 4 ns, then 4 linear sub-buckets per power of
/// two, so any recorded value lands in a bucket whose width is at most
/// 1/4 of its lower bound: quantile estimates (bucket midpoint) carry a
/// relative error <= 12.5%. All buckets are preallocated at
/// construction; Record() is wait-free, allocation-free, thread-safe.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample in ns. Wait-free, allocation-free.
  void Record(uint64_t value_ns);

  /// Total recorded samples.
  uint64_t Count() const;

  /// Sum of recorded samples in ns.
  uint64_t SumNs() const;

  /// Quantile estimate in ns for q in [0, 1]; 0 when empty. Returns the
  /// midpoint of the bucket holding the rank-ceil(q * count) sample.
  uint64_t QuantileNs(double q) const;

  /// Consistent-enough point-in-time view (buckets are read without a
  /// global lock; concurrent Record()s may or may not be included).
  HistogramSnapshot Snapshot() const;

  /// Index of the bucket holding `value` (exposed for tests).
  static size_t BucketIndex(uint64_t value);

  /// Inclusive lower bound of bucket `index` (exposed for tests).
  static uint64_t BucketLowerBound(size_t index);

  /// Exclusive upper bound of bucket `index` (exposed for tests).
  static uint64_t BucketUpperBound(size_t index);

 private:
  // 4 exact buckets (0..3) + 4 sub-buckets per octave for octaves
  // 2..63: indices 4 .. (62*4+3) = 251.
  static constexpr size_t kBuckets = 252;

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Kind of an exported metric.
enum class MetricType {
  kCounter,
  kGauge,
  kHistogram,
};

/// Point-in-time value of one registered metric.
struct MetricValue {
  /// Registered metric name (e.g. "authidx_block_cache_hits_total").
  std::string name;
  /// Human-readable description, emitted as the Prometheus HELP line.
  std::string help;
  /// Which of the value fields below is meaningful.
  MetricType type = MetricType::kCounter;
  /// Set when type == kCounter.
  uint64_t counter = 0;
  /// Set when type == kGauge.
  int64_t gauge = 0;
  /// Set when type == kHistogram.
  HistogramSnapshot histogram;
};

/// Point-in-time view of a whole registry, in registration order.
struct MetricsSnapshot {
  /// One value per registered metric, in registration order.
  std::vector<MetricValue> metrics;

  /// The metric named `name`, or nullptr. Linear scan (snapshots are
  /// diagnostic, not hot-path).
  const MetricValue* Find(std::string_view name) const;
};

/// Named registry of Counters, Gauges and LatencyHistograms.
/// Registration takes a mutex and allocates; the returned instrument
/// pointers are stable for the registry's lifetime and their hot-path
/// operations (Inc/Set/Add/Record) never allocate. Registering a name
/// twice returns the existing instrument (the kinds must match, checked
/// with AUTHIDX_INTERNAL_CHECK). Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter. Never returns nullptr.
  Counter* RegisterCounter(std::string_view name, std::string_view help);

  /// Registers (or finds) a gauge. Never returns nullptr.
  Gauge* RegisterGauge(std::string_view name, std::string_view help);

  /// Registers (or finds) a latency histogram. Never returns nullptr.
  LatencyHistogram* RegisterLatencyHistogram(std::string_view name,
                                             std::string_view help);

  /// Snapshot of every registered metric, in registration order.
  MetricsSnapshot Snapshot() const;

 private:
  struct Registered {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Registered* FindLocked(std::string_view name, MetricType type)
      AUTHIDX_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Registered>> metrics_ AUTHIDX_GUARDED_BY(mu_);
};

}  // namespace authidx::obs

#endif  // AUTHIDX_OBS_METRICS_H_
