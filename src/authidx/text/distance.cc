#include "authidx/text/distance.h"

#include <algorithm>
#include <vector>

namespace authidx::text {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) {
    std::swap(a, b);  // b is the shorter: row length = |b|+1.
  }
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][0]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = above;
    }
  }
  return row[b.size()];
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() < b.size()) {
    std::swap(a, b);
  }
  // Length difference is a lower bound on the distance.
  if (a.size() - b.size() > max_dist) {
    return max_dist + 1;
  }
  const size_t kBig = max_dist + 1;
  std::vector<size_t> row(b.size() + 1, kBig);
  for (size_t j = 0; j <= std::min(b.size(), max_dist); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    // Only columns within the band |i - j| <= max_dist can stay <= max.
    size_t lo = (i > max_dist) ? i - max_dist : 0;
    size_t hi = std::min(b.size(), i + max_dist);
    size_t diag = (lo == 0) ? row[0] : row[lo - 1];
    size_t row_min = kBig;
    if (lo == 0) {
      row[0] = i <= max_dist ? i : kBig;
      row_min = row[0];
    } else {
      // Left neighbor of the first in-band column is out of band.
      row[lo - 1] = kBig;
    }
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t above = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = diag + cost;
      if (above + 1 < best) best = above + 1;
      if (row[j - 1] + 1 < best) best = row[j - 1] + 1;
      row[j] = best > kBig ? kBig : best;
      row_min = std::min(row_min, row[j]);
      diag = above;
    }
    if (hi < b.size()) {
      row[hi + 1] = kBig;  // Invalidate stale value right of the band.
    }
    if (row_min > max_dist) {
      return max_dist + 1;  // Whole band exceeded: early exit.
    }
  }
  return std::min(row[b.size()], kBig);
}

bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_dist) {
  return BoundedLevenshtein(a, b, max_dist) <= max_dist;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a == b) {
    return 1.0;
  }
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  size_t window = std::max(a.size(), b.size()) / 2;
  if (window > 0) {
    --window;
  }
  std::vector<bool> a_match(a.size(), false), b_match(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = (i > window) ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) {
    return 0.0;
  }
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / static_cast<double>(a.size()) +
                 m / static_cast<double>(b.size()) +
                 (m - static_cast<double>(transpositions) / 2.0) / m) /
                3.0;
  // Winkler prefix boost: up to 4 shared leading characters.
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

}  // namespace authidx::text
