#include "authidx/text/stem.h"

namespace authidx::text {
namespace {

// Implementation of Porter, "An algorithm for suffix stripping" (1980),
// following the original paper's step structure and reference C code.
// Indices are signed because the paper's j can legitimately reach -1
// (suffix spans the whole word).
class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)) {}

  std::string Run() {
    if (b_.size() <= 2) {
      return b_;
    }
    k_ = static_cast<int>(b_.size()) - 1;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_ + 1));
    return b_;
  }

 private:
  char At(int i) const { return b_[static_cast<size_t>(i)]; }

  // True if b_[i] is a consonant (paper's cons(i)).
  bool Cons(int i) const {
    switch (At(i)) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Number of consonant-vowel sequences in b_[0..j_].
  int M() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  bool DoubleC(int j) const {
    return j >= 1 && At(j) == At(j - 1) && Cons(j);
  }

  // cvc(i): consonant-vowel-consonant ending where the final consonant is
  // not w, x or y. Detects e.g. "hop" in "hopping".
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char c = At(i);
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool Ends(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(std::string_view s) {
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void R(std::string_view s) {
    if (M() > 0) SetTo(s);
  }

  void Step1ab() {
    // Step 1a: plurals.
    if (At(k_) == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (At(k_ - 1) != 's') {
        --k_;
      }
    }
    // Step 1b: -ed / -ing.
    if (Ends("eed")) {
      if (M() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleC(k_)) {
        char c = At(k_);
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (M() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    if (k_ < 2) return;
    switch (At(k_ - 1)) {
      case 'a':
        if (Ends("ational")) { R("ate"); break; }
        if (Ends("tional")) { R("tion"); }
        break;
      case 'c':
        if (Ends("enci")) { R("ence"); break; }
        if (Ends("anci")) { R("ance"); }
        break;
      case 'e':
        if (Ends("izer")) { R("ize"); }
        break;
      case 'l':
        if (Ends("bli")) { R("ble"); break; }
        if (Ends("alli")) { R("al"); break; }
        if (Ends("entli")) { R("ent"); break; }
        if (Ends("eli")) { R("e"); break; }
        if (Ends("ousli")) { R("ous"); }
        break;
      case 'o':
        if (Ends("ization")) { R("ize"); break; }
        if (Ends("ation")) { R("ate"); break; }
        if (Ends("ator")) { R("ate"); }
        break;
      case 's':
        if (Ends("alism")) { R("al"); break; }
        if (Ends("iveness")) { R("ive"); break; }
        if (Ends("fulness")) { R("ful"); break; }
        if (Ends("ousness")) { R("ous"); }
        break;
      case 't':
        if (Ends("aliti")) { R("al"); break; }
        if (Ends("iviti")) { R("ive"); break; }
        if (Ends("biliti")) { R("ble"); }
        break;
      case 'g':
        if (Ends("logi")) { R("log"); }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (At(k_)) {
      case 'e':
        if (Ends("icate")) { R("ic"); break; }
        if (Ends("ative")) { R(""); break; }
        if (Ends("alize")) { R("al"); }
        break;
      case 'i':
        if (Ends("iciti")) { R("ic"); }
        break;
      case 'l':
        if (Ends("ical")) { R("ic"); break; }
        if (Ends("ful")) { R(""); }
        break;
      case 's':
        if (Ends("ness")) { R(""); }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 2) return;
    switch (At(k_ - 1)) {
      case 'a': if (Ends("al")) break; return;
      case 'c': if (Ends("ance") || Ends("ence")) break; return;
      case 'e': if (Ends("er")) break; return;
      case 'i': if (Ends("ic")) break; return;
      case 'l': if (Ends("able") || Ends("ible")) break; return;
      case 'n':
        if (Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent"))
          break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (At(j_) == 's' || At(j_) == 't')) break;
        if (Ends("ou")) break;
        return;
      case 's': if (Ends("ism")) break; return;
      case 't': if (Ends("ate") || Ends("iti")) break; return;
      case 'u': if (Ends("ous")) break; return;
      case 'v': if (Ends("ive")) break; return;
      case 'z': if (Ends("ize")) break; return;
      default: return;
    }
    if (M() > 1) {
      k_ = j_;
    }
  }

  void Step5() {
    // Step 5a.
    j_ = k_;
    if (At(k_) == 'e') {
      int m = M();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) {
        --k_;
      }
    }
    // Step 5b.
    if (At(k_) == 'l' && DoubleC(k_) && M() > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = 0;  // Index of last letter.
  int j_ = 0;  // Stem end set by Ends().
};

bool AllLowerAlpha(std::string_view w) {
  for (char c : w) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

}  // namespace

std::string PorterStem(std::string_view word) {
  if (!AllLowerAlpha(word)) {
    return std::string(word);
  }
  return Stemmer(std::string(word)).Run();
}

}  // namespace authidx::text
