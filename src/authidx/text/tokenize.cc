#include "authidx/text/tokenize.h"

#include <algorithm>
#include <array>

#include "authidx/text/normalize.h"
#include "authidx/text/stem.h"

namespace authidx::text {
namespace {

// Sorted so membership is a binary search over string_views; chosen from
// the classic Snowball list, restricted to words common in titles.
constexpr std::array<std::string_view, 42> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",
    "by",   "for",  "from", "has",  "have", "in",   "into", "is",
    "it",   "its",  "no",   "not",  "of",   "on",   "or",   "our",
    "over", "s",    "such", "that", "the",  "their", "then", "there",
    "these", "they", "this", "to",   "under", "was",  "were", "will",
    "with", "would",
};

static_assert(std::is_sorted(kStopwords.begin(), kStopwords.end()));

}  // namespace

bool IsStopword(std::string_view folded_word) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(),
                            folded_word);
}

std::vector<std::string> Tokenize(std::string_view utf8,
                                  const TokenizeOptions& options) {
  std::string folded = FoldCase(utf8);
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < folded.size()) {
    char c = folded[i];
    if ((c >= 'a' && c <= 'z') || IsAsciiDigit(c)) {
      size_t start = i;
      bool numeric = IsAsciiDigit(c);
      while (i < folded.size() &&
             (numeric ? IsAsciiDigit(folded[i])
                      : (folded[i] >= 'a' && folded[i] <= 'z'))) {
        ++i;
      }
      std::string token = folded.substr(start, i - start);
      if (options.remove_stopwords && !numeric && IsStopword(token)) {
        continue;
      }
      if (options.stem && !numeric) {
        token = PorterStem(token);
      }
      if (token.size() >= options.min_length) {
        tokens.push_back(std::move(token));
      }
    } else {
      ++i;
    }
  }
  return tokens;
}

}  // namespace authidx::text
