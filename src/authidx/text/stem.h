#ifndef AUTHIDX_TEXT_STEM_H_
#define AUTHIDX_TEXT_STEM_H_

#include <string>
#include <string_view>

namespace authidx::text {

/// Classic Porter (1980) stemmer. Input must already be lowercase ASCII
/// letters only (the tokenizer guarantees this); other inputs are
/// returned unchanged. "mining" -> "mine", "regulations" -> "regul".
std::string PorterStem(std::string_view word);

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_STEM_H_
