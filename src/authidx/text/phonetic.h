#ifndef AUTHIDX_TEXT_PHONETIC_H_
#define AUTHIDX_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace authidx::text {

/// Phonetic codes for "sounds-like" author lookup. Both functions fold
/// case/accents first and operate on the letters only; non-letters are
/// ignored. Empty input yields an empty code.

/// American Soundex: one letter + three digits ("Robert" -> "R163",
/// "Rupert" -> "R163"). The fixed 4-character code makes it a cheap
/// bucketing key for candidate generation before edit-distance ranking.
std::string Soundex(std::string_view word);

/// Simplified Metaphone: variable-length consonant-skeleton code that is
/// more discriminating than Soundex ("Knight" -> "NT", "Nite" -> "NT";
/// "Schmidt" -> "XMT", "Smith" -> "SM0" where '0' is 'th').
std::string Metaphone(std::string_view word);

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_PHONETIC_H_
