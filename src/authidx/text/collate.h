#ifndef AUTHIDX_TEXT_COLLATE_H_
#define AUTHIDX_TEXT_COLLATE_H_

#include <string>
#include <string_view>

namespace authidx::text {

/// Collation for the printed author index.
///
/// An author index sorts names the way a human cataloguer does, not the
/// way memcmp does:
///
///  * case- and accent-insensitive ("Ábrams" between "Abramovsky" and
///    "Abrams" variants, not after "Z");
///  * punctuation (periods, hyphens, apostrophes) ignored at the primary
///    level ("O'Brien" ~ "OBrien");
///  * embedded numbers compared numerically ("Vol 9" < "Vol 12");
///  * ties broken by the original bytes so collation is still a total
///    order over distinct strings.
///
/// `MakeSortKey` produces a byte string such that memcmp order of the keys
/// equals this collation order; it is the precomputed-key fast path the
/// B+-tree and the typesetter use. `Compare` is the direct (allocation-
/// light) comparison used for one-off comparisons.

/// Builds a memcmp-comparable sort key for `s`.
std::string MakeSortKey(std::string_view s);

/// Three-way collation compare (-1, 0, +1) consistent with MakeSortKey.
int Compare(std::string_view a, std::string_view b);

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_COLLATE_H_
