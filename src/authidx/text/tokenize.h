#ifndef AUTHIDX_TEXT_TOKENIZE_H_
#define AUTHIDX_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace authidx::text {

/// Options controlling `Tokenize`.
struct TokenizeOptions {
  /// Drop English stopwords ("the", "of", "and", ...).
  bool remove_stopwords = true;
  /// Apply the Porter stemmer to each token.
  bool stem = true;
  /// Tokens shorter than this (after stemming) are dropped.
  size_t min_length = 1;
};

/// Splits `utf8` into normalized word tokens: case/accent folded,
/// punctuation-separated, digits kept as standalone tokens. This is the
/// analyzer used for title text feeding the inverted index; queries must
/// use the same options to match.
std::vector<std::string> Tokenize(std::string_view utf8,
                                  const TokenizeOptions& options = {});

/// True if the (already folded) word is an English stopword.
bool IsStopword(std::string_view folded_word);

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_TOKENIZE_H_
