#include "authidx/text/phonetic.h"

#include "authidx/text/normalize.h"

namespace authidx::text {
namespace {

// Extracts lowercase a-z letters after folding.
std::string LettersOnly(std::string_view word) {
  std::string folded = FoldCase(word);
  std::string out;
  out.reserve(folded.size());
  for (char c : folded) {
    if (c >= 'a' && c <= 'z') {
      out.push_back(c);
    }
  }
  return out;
}

char SoundexDigit(char c) {
  switch (c) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k': case 'q': case 's': case 'x':
    case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';  // Vowels, h, w, y: not coded.
  }
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::string Soundex(std::string_view word) {
  std::string letters = LettersOnly(word);
  if (letters.empty()) {
    return "";
  }
  std::string code;
  code.push_back(static_cast<char>(letters[0] - 'a' + 'A'));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char d = SoundexDigit(c);
    if (d != '0') {
      // Letters separated by h/w that code identically count once.
      if (d != prev_digit) {
        code.push_back(d);
      }
      prev_digit = d;
    } else if (c != 'h' && c != 'w') {
      prev_digit = '0';  // Vowels reset the adjacency rule.
    }
  }
  while (code.size() < 4) {
    code.push_back('0');
  }
  return code;
}

std::string Metaphone(std::string_view word) {
  std::string w = LettersOnly(word);
  if (w.empty()) {
    return "";
  }
  std::string out;
  size_t n = w.size();

  auto at = [&](size_t i) -> char { return i < n ? w[i] : '\0'; };

  // Initial-letter exceptions.
  size_t i = 0;
  if (n >= 2) {
    std::string_view head = std::string_view(w).substr(0, 2);
    if (head == "kn" || head == "gn" || head == "pn" || head == "wr" ||
        head == "ae") {
      i = 1;  // Drop the first letter.
    } else if (head == "wh") {
      out.push_back('W');
      i = 2;
    } else if (w[0] == 'x') {
      out.push_back('S');
      i = 1;
    }
  }

  for (; i < n && out.size() < 16; ++i) {
    char c = w[i];
    // Skip doubled letters except 'c' (e.g. "acceptance").
    if (i > 0 && c == w[i - 1] && c != 'c') {
      continue;
    }
    switch (c) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        if (i == 0) {
          out.push_back(static_cast<char>(c - 'a' + 'A'));
        }
        break;
      case 'b':
        // Silent terminal b after m ("lamb").
        if (!(i + 1 == n && at(i - 1) == 'm')) {
          out.push_back('B');
        }
        break;
      case 'c':
        if (at(i + 1) == 'i' && at(i + 2) == 'a') {
          out.push_back('X');  // -cia-
        } else if (at(i + 1) == 'h') {
          out.push_back('X');  // ch
          ++i;
        } else if (at(i + 1) == 'i' || at(i + 1) == 'e' ||
                   at(i + 1) == 'y') {
          out.push_back('S');
        } else {
          out.push_back('K');
        }
        break;
      case 'd':
        if (at(i + 1) == 'g' &&
            (at(i + 2) == 'e' || at(i + 2) == 'i' || at(i + 2) == 'y')) {
          out.push_back('J');  // dge
          i += 1;
        } else {
          out.push_back('T');
        }
        break;
      case 'f':
        out.push_back('F');
        break;
      case 'g':
        if (at(i + 1) == 'h' && !IsVowel(at(i + 2))) {
          break;  // Silent gh ("night").
        }
        if (at(i + 1) == 'n') {
          break;  // Silent gn ("sign").
        }
        if (at(i + 1) == 'e' || at(i + 1) == 'i' || at(i + 1) == 'y') {
          out.push_back('J');
        } else {
          out.push_back('K');
        }
        break;
      case 'h':
        // h is audible only between vowel and non-vowel.
        if (i > 0 && IsVowel(at(i - 1)) && IsVowel(at(i + 1))) {
          out.push_back('H');
        }
        break;
      case 'j':
        out.push_back('J');
        break;
      case 'k':
        if (at(i - 1) != 'c' || i == 0) {
          out.push_back('K');
        }
        break;
      case 'l':
        out.push_back('L');
        break;
      case 'm':
        out.push_back('M');
        break;
      case 'n':
        out.push_back('N');
        break;
      case 'p':
        if (at(i + 1) == 'h') {
          out.push_back('F');
          ++i;
        } else {
          out.push_back('P');
        }
        break;
      case 'q':
        out.push_back('K');
        break;
      case 'r':
        out.push_back('R');
        break;
      case 's':
        if (at(i + 1) == 'h') {
          out.push_back('X');
          ++i;
        } else if (at(i + 1) == 'i' &&
                   (at(i + 2) == 'o' || at(i + 2) == 'a')) {
          out.push_back('X');  // -sio-, -sia-
        } else if (at(i + 1) == 'c' && at(i + 2) == 'h') {
          out.push_back('X');  // sch -> X (German names: Schmidt).
          i += 2;
        } else {
          out.push_back('S');
        }
        break;
      case 't':
        if (at(i + 1) == 'h') {
          out.push_back('0');  // 'th' sound.
          ++i;
        } else if (at(i + 1) == 'i' &&
                   (at(i + 2) == 'o' || at(i + 2) == 'a')) {
          out.push_back('X');  // -tio-, -tia-
        } else {
          out.push_back('T');
        }
        break;
      case 'v':
        out.push_back('F');
        break;
      case 'w':
        if (IsVowel(at(i + 1))) {
          out.push_back('W');
        }
        break;
      case 'x':
        out.push_back('K');
        out.push_back('S');
        break;
      case 'y':
        if (IsVowel(at(i + 1))) {
          out.push_back('Y');
        }
        break;
      case 'z':
        out.push_back('S');
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace authidx::text
