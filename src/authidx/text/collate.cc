#include "authidx/text/collate.h"

#include "authidx/text/normalize.h"

namespace authidx::text {
namespace {

// Primary-level key: folded letters, digit runs encoded for numeric
// order, everything else dropped. All emitted bytes are >= 0x20, so
// 0x01 is free to use as the primary/tiebreak separator.
void AppendPrimary(std::string_view s, std::string* key) {
  std::string folded = FoldCase(s);
  size_t i = 0;
  bool last_was_space = true;  // Suppress leading separators.
  while (i < folded.size()) {
    char c = folded[i];
    if (IsAsciiDigit(c)) {
      // Strip leading zeros, then emit <0x30 + len><digits> so that
      // longer numbers (greater values) sort after shorter ones.
      size_t start = i;
      while (i < folded.size() && IsAsciiDigit(folded[i])) {
        ++i;
      }
      std::string_view run = std::string_view(folded).substr(start, i - start);
      while (run.size() > 1 && run.front() == '0') {
        run.remove_prefix(1);
      }
      size_t len = run.size() < 77 ? run.size() : 77;  // Clamp: 0x30+77<0x80.
      key->push_back(static_cast<char>(0x30 + len));
      key->append(run.substr(0, len));
      last_was_space = false;
      continue;
    }
    if (c >= 'a' && c <= 'z') {
      key->push_back(c);
      last_was_space = false;
    } else if ((c == ' ' || c == '\t') && !last_was_space) {
      key->push_back(' ');
      last_was_space = true;
    }
    // Punctuation and other bytes are ignored at the primary level.
    ++i;
  }
  // Drop a trailing separator.
  if (!key->empty() && key->back() == ' ') {
    key->pop_back();
  }
}

}  // namespace

std::string MakeSortKey(std::string_view s) {
  std::string key;
  key.reserve(s.size() + 8);
  AppendPrimary(s, &key);
  // Tiebreak on the original bytes so distinct inputs never compare
  // equal. 0x01 sorts below every primary byte, so a string that is a
  // strict primary prefix of another still sorts first.
  key.push_back('\x01');
  key.append(s);
  return key;
}

int Compare(std::string_view a, std::string_view b) {
  std::string ka = MakeSortKey(a);
  std::string kb = MakeSortKey(b);
  int c = ka.compare(kb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace authidx::text
