#ifndef AUTHIDX_TEXT_DISTANCE_H_
#define AUTHIDX_TEXT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace authidx::text {

/// Levenshtein edit distance (insert/delete/substitute, unit costs),
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Damerau-Levenshtein in the "optimal string alignment" variant, which
/// additionally counts adjacent transpositions ("teh" -> "the" = 1).
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance if it is <= max_dist,
/// otherwise returns max_dist + 1. Runs in O(max_dist * min(|a|,|b|)),
/// which is what makes fuzzy scans over large author dictionaries cheap.
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist);

/// True iff Levenshtein(a, b) <= max_dist (early-exit wrapper).
bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_dist);

/// Jaro-Winkler similarity in [0, 1]; 1 means equal. Used to rank fuzzy
/// author-name candidates (favors shared prefixes, matching how readers
/// scan an author index).
double JaroWinkler(std::string_view a, std::string_view b);

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_DISTANCE_H_
