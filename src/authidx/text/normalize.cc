#include "authidx/text/normalize.h"

#include <cstdint>

namespace authidx::text {
namespace {

// Decodes one UTF-8 code point at s[i..]; returns the code point and
// advances *i. Invalid sequences yield the single byte as-is (latin-1
// fallback keeps the function total).
uint32_t DecodeUtf8(std::string_view s, size_t* i) {
  unsigned char c0 = static_cast<unsigned char>(s[*i]);
  if (c0 < 0x80) {
    ++*i;
    return c0;
  }
  auto cont = [&](size_t k) {
    return *i + k < s.size() &&
           (static_cast<unsigned char>(s[*i + k]) & 0xC0) == 0x80;
  };
  if ((c0 & 0xE0) == 0xC0 && cont(1)) {
    uint32_t cp = (c0 & 0x1Fu) << 6 |
                  (static_cast<unsigned char>(s[*i + 1]) & 0x3Fu);
    *i += 2;
    return cp;
  }
  if ((c0 & 0xF0) == 0xE0 && cont(1) && cont(2)) {
    uint32_t cp = (c0 & 0x0Fu) << 12 |
                  (static_cast<unsigned char>(s[*i + 1]) & 0x3Fu) << 6 |
                  (static_cast<unsigned char>(s[*i + 2]) & 0x3Fu);
    *i += 3;
    return cp;
  }
  if ((c0 & 0xF8) == 0xF0 && cont(1) && cont(2) && cont(3)) {
    uint32_t cp = (c0 & 0x07u) << 18 |
                  (static_cast<unsigned char>(s[*i + 1]) & 0x3Fu) << 12 |
                  (static_cast<unsigned char>(s[*i + 2]) & 0x3Fu) << 6 |
                  (static_cast<unsigned char>(s[*i + 3]) & 0x3Fu);
    *i += 4;
    return cp;
  }
  ++*i;
  return c0;
}

void EncodeUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Folds one code point to lowercase unaccented form; returns 0 when the
// code point maps to nothing (currently never). Multi-char expansions
// (ß -> ss, Æ -> ae) are handled by the caller via this table returning
// a small string.
const char* FoldCodePoint(uint32_t cp, char* ascii_buf) {
  // ASCII.
  if (cp < 0x80) {
    char c = static_cast<char>(cp);
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    ascii_buf[0] = c;
    ascii_buf[1] = '\0';
    return ascii_buf;
  }
  // Latin-1 Supplement.
  switch (cp) {
    case 0xC0: case 0xC1: case 0xC2: case 0xC3: case 0xC4: case 0xC5:
    case 0xE0: case 0xE1: case 0xE2: case 0xE3: case 0xE4: case 0xE5:
      return "a";
    case 0xC6: case 0xE6:
      return "ae";
    case 0xC7: case 0xE7:
      return "c";
    case 0xC8: case 0xC9: case 0xCA: case 0xCB:
    case 0xE8: case 0xE9: case 0xEA: case 0xEB:
      return "e";
    case 0xCC: case 0xCD: case 0xCE: case 0xCF:
    case 0xEC: case 0xED: case 0xEE: case 0xEF:
      return "i";
    case 0xD0: case 0xF0:
      return "d";
    case 0xD1: case 0xF1:
      return "n";
    case 0xD2: case 0xD3: case 0xD4: case 0xD5: case 0xD6: case 0xD8:
    case 0xF2: case 0xF3: case 0xF4: case 0xF5: case 0xF6: case 0xF8:
      return "o";
    case 0xD9: case 0xDA: case 0xDB: case 0xDC:
    case 0xF9: case 0xFA: case 0xFB: case 0xFC:
      return "u";
    case 0xDD: case 0xFD: case 0xFF:
      return "y";
    case 0xDE: case 0xFE:
      return "th";
    case 0xDF:
      return "ss";
    default:
      break;
  }
  // Latin Extended-A: pairs (upper, lower) share a base letter; fold by
  // range.
  if (cp >= 0x100 && cp <= 0x17F) {
    struct Range {
      uint32_t lo, hi;
      const char* base;
    };
    static constexpr Range kRanges[] = {
        {0x100, 0x105, "a"}, {0x106, 0x10D, "c"}, {0x10E, 0x111, "d"},
        {0x112, 0x11B, "e"}, {0x11C, 0x123, "g"}, {0x124, 0x127, "h"},
        {0x128, 0x131, "i"}, {0x132, 0x133, "ij"}, {0x134, 0x135, "j"},
        {0x136, 0x138, "k"}, {0x139, 0x142, "l"}, {0x143, 0x14B, "n"},
        {0x14C, 0x151, "o"}, {0x152, 0x153, "oe"}, {0x154, 0x159, "r"},
        {0x15A, 0x161, "s"}, {0x162, 0x167, "t"}, {0x168, 0x173, "u"},
        {0x174, 0x175, "w"}, {0x176, 0x178, "y"}, {0x179, 0x17E, "z"},
    };
    for (const Range& r : kRanges) {
      if (cp >= r.lo && cp <= r.hi) {
        return r.base;
      }
    }
  }
  return nullptr;  // Pass through.
}

}  // namespace

std::string FoldCase(std::string_view utf8) {
  std::string out;
  out.reserve(utf8.size());
  size_t i = 0;
  char ascii_buf[2];
  while (i < utf8.size()) {
    size_t start = i;
    uint32_t cp = DecodeUtf8(utf8, &i);
    const char* folded = FoldCodePoint(cp, ascii_buf);
    if (folded != nullptr) {
      out.append(folded);
    } else {
      EncodeUtf8(cp, &out);
      (void)start;
    }
  }
  return out;
}

std::string NormalizeForIndex(std::string_view utf8) {
  std::string folded = FoldCase(utf8);
  std::string out;
  out.reserve(folded.size());
  bool pending_space = false;
  for (char c : folded) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

std::string StripToAlnum(std::string_view utf8) {
  std::string folded = FoldCase(utf8);
  std::string out;
  out.reserve(folded.size());
  for (char c : folded) {
    if ((c >= 'a' && c <= 'z') || IsAsciiDigit(c) || c == ' ') {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace authidx::text
