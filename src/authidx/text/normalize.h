#ifndef AUTHIDX_TEXT_NORMALIZE_H_
#define AUTHIDX_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace authidx::text {

/// Text normalization used before indexing and collation.
///
/// The engine operates on UTF-8 but only folds the ranges that occur in
/// bibliographic front matter: ASCII plus the Latin-1 Supplement and
/// Latin Extended-A blocks (accented European names). Anything else is
/// passed through unchanged.

/// Lowercases ASCII and folds Latin-1/Extended-A letters to their
/// unaccented lowercase ASCII base (e.g. "É" -> "e", "ø" -> "o",
/// "Š" -> "s"). Invalid UTF-8 bytes are copied verbatim.
std::string FoldCase(std::string_view utf8);

/// FoldCase plus: collapses runs of whitespace to single spaces and trims.
std::string NormalizeForIndex(std::string_view utf8);

/// Removes every character that is not an ASCII letter, digit or space
/// (after folding); used to build phonetic keys.
std::string StripToAlnum(std::string_view utf8);

/// True if `c` is an ASCII letter.
inline bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// True if `c` is an ASCII digit.
inline bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace authidx::text

#endif  // AUTHIDX_TEXT_NORMALIZE_H_
