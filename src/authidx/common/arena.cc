#include "authidx/common/arena.h"

#include <cstring>

namespace authidx {

char* Arena::Allocate(size_t bytes) {
  if (bytes <= alloc_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = 8;
  size_t mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  size_t slop = (mod == 0) ? 0 : kAlign - mod;
  size_t needed = bytes + slop;
  if (needed <= alloc_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_remaining_ -= needed;
    return result;
  }
  // Fresh blocks from operator new[] are suitably aligned already.
  return AllocateFallback(bytes);
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) {
    // A default-constructed view has data() == nullptr; memcpy from a
    // null source is UB even for zero bytes.
    return std::string_view();
  }
  char* dst = Allocate(s.size());
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so the current block's
    // remaining space is not wasted.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_ += block_bytes + sizeof(blocks_.back());
  return blocks_.back().get();
}

}  // namespace authidx
