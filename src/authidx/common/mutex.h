#ifndef AUTHIDX_COMMON_MUTEX_H_
#define AUTHIDX_COMMON_MUTEX_H_

// Annotated mutex wrappers: the only lock types permitted in library
// code (tools/lint.py rule 8 bans raw std::mutex / std::shared_mutex /
// std::condition_variable in src/ outside this header). The wrappers
// add zero state and zero overhead over the std types; what they add is
// the capability vocabulary from thread_annotations.h, so Clang's
// -Wthread-safety analysis (the `thread-safety` preset) can prove every
// GUARDED_BY / REQUIRES contract at compile time.
//
// Conventions the analysis imposes on call sites:
//   * Condition waits are explicit loops — `while (!pred) cv.Wait(mu);`
//     — because the analysis cannot see through a predicate lambda.
//   * Helpers that run under a caller's lock take no lock parameter;
//     they are annotated AUTHIDX_REQUIRES(mu_) and, when they must drop
//     the lock around I/O, call mu_.Unlock()/mu_.Lock() in balanced
//     pairs.
//   * Code the analysis cannot see into (std::function bodies executed
//     under a caller's lock) opens with mu_.AssertHeld() to re-inject
//     the capability.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "authidx/common/thread_annotations.h"

namespace authidx {

class CondVar;

// Exclusive mutex. Non-reentrant, non-copyable, same semantics as the
// std::mutex it wraps.
class AUTHIDX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AUTHIDX_ACQUIRE() { mu_.lock(); }
  void Unlock() AUTHIDX_RELEASE() { mu_.unlock(); }
  bool TryLock() AUTHIDX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // No-op at runtime; tells the analysis the lock is held on paths it
  // cannot trace (e.g. the body of a std::function invoked by a
  // function that holds the lock).
  void AssertHeld() AUTHIDX_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex wrapping std::shared_mutex. Exclusive side uses
// Lock/Unlock, shared side ReaderLock/ReaderUnlock.
class AUTHIDX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() AUTHIDX_ACQUIRE() { mu_.lock(); }
  void Unlock() AUTHIDX_RELEASE() { mu_.unlock(); }
  bool TryLock() AUTHIDX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() AUTHIDX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() AUTHIDX_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() AUTHIDX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() AUTHIDX_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() AUTHIDX_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock over Mutex (the std::lock_guard replacement).
class AUTHIDX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AUTHIDX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() AUTHIDX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped shared (reader) lock over SharedMutex.
class AUTHIDX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) AUTHIDX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() AUTHIDX_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped exclusive (writer) lock over SharedMutex.
class AUTHIDX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) AUTHIDX_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() AUTHIDX_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to Mutex. Wait() atomically releases the
// mutex, blocks, and reacquires before returning — so from the
// analysis's point of view the capability is held across the call
// (REQUIRES). Spurious wakeups are possible exactly as with
// std::condition_variable: always wait in a `while (!pred)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) AUTHIDX_REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the wait, then
    // release ownership back to the caller without unlocking.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Timed wait: returns false on timeout, true when notified (or on a
  // spurious wakeup — re-check the predicate either way). Same adopted
  // locking discipline as Wait(), so the capability is held across the
  // call. For periodic work (heartbeats) that must still wake promptly
  // on shutdown.
  bool WaitFor(Mutex& mu, uint64_t timeout_us) AUTHIDX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace authidx

#endif  // AUTHIDX_COMMON_MUTEX_H_
