#include "authidx/common/crc32c.h"

#include <array>

namespace authidx::crc32c {
namespace {

// Slice-by-4 table-driven CRC-32C (polynomial 0x1EDC6F41, reflected
// 0x82F63B78). Tables are generated at static-init time into trivially
// destructible arrays.
struct Tables {
  uint32_t t[4][256];
};

Tables MakeTables() {
  Tables tables{};
  constexpr uint32_t kPoly = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

const Tables kTables = MakeTables();

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  // Align to 4 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc ^= word;
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace authidx::crc32c
