#include "authidx/common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace authidx {

bool IsTransientError(const Status& status) {
  // IOError: the device/filesystem may recover (EIO blips, ENOSPC after
  // log rotation, NFS hiccups). ResourceExhausted: pressure that can
  // drain. Everything else is deterministic and must not be retried.
  return status.IsIOError() || status.IsResourceExhausted();
}

uint64_t RetryBackoffDelayUs(const RetryPolicy& policy, int attempt,
                             Random* rng) {
  int shift = std::max(attempt - 1, 0);
  // Saturate the exponential instead of shifting past 63 bits.
  uint64_t delay = policy.max_delay_us;
  if (shift < 63) {
    uint64_t scaled = policy.base_delay_us << shift;
    bool overflowed = policy.base_delay_us != 0 &&
                      (scaled >> shift) != policy.base_delay_us;
    if (!overflowed) {
      delay = std::min(scaled, policy.max_delay_us);
    }
  }
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter <= 0.0 || delay == 0 || rng == nullptr) {
    return delay;
  }
  // "Equal jitter": keep (1-jitter) of the delay, randomize the rest so
  // simultaneous retriers spread out instead of thundering together.
  uint64_t window = static_cast<uint64_t>(static_cast<double>(delay) * jitter);
  return delay - (window > 0 ? rng->Uniform(window + 1) : 0);
}

Status RetryWithBackoff(const RetryPolicy& policy, Random* rng,
                        const std::function<Status()>& op,
                        const RetryObserver& on_retry,
                        const RetrySleeper& sleeper) {
  int attempts = std::max(policy.max_attempts, 1);
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok() || !IsTransientError(last) || attempt == attempts) {
      return last;
    }
    uint64_t delay_us = RetryBackoffDelayUs(policy, attempt, rng);
    if (on_retry != nullptr) {
      on_retry(attempt, last, delay_us);
    }
    if (sleeper != nullptr) {
      sleeper(delay_us);
    } else if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  return last;
}

}  // namespace authidx
