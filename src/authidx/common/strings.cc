#include "authidx/common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace authidx {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(s.substr(start));
      return pieces;
    }
    pieces.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty integer");
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in integer: " + CEscape(s));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("integer overflow: " + std::string(s));
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view s) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = (s[0] == '-');
    s.remove_prefix(1);
  }
  AUTHIDX_ASSIGN_OR_RETURN(uint64_t magnitude, ParseUint64(s));
  if (negative) {
    if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) {
      return Status::OutOfRange("integer underflow");
    }
    return static_cast<int64_t>(0 - magnitude);
  }
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("integer overflow");
  }
  return static_cast<int64_t>(magnitude);
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string CEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (std::isprint(c) && c != '\\' && c != '"') {
      out += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

}  // namespace authidx
