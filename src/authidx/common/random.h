#ifndef AUTHIDX_COMMON_RANDOM_H_
#define AUTHIDX_COMMON_RANDOM_H_

#include <cstdint>

namespace authidx {

/// Deterministic xoshiro256** PRNG. Every test, example and benchmark in
/// this repository derives its randomness from a fixed seed through this
/// generator, so all generated corpora are reproducible bit-for-bit.
class Random {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Random(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next64();

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability 1/n (n >= 1).
  bool OneIn(uint64_t n);

  /// Geometric-ish skew: uniform in [0, 2^Uniform(max_log+1)). Small
  /// values are much more likely; used for mixed-magnitude varint tests.
  uint64_t Skewed(int max_log);

 private:
  uint64_t s_[4];
};

/// Draws ranks approximately following a Zipf(s) distribution over
/// {0, ..., n-1} (rank 0 most popular) using the Gray et al. generator;
/// used by the workload generator for volume/year popularity and by
/// postings benchmarks. The skew `s` is clamped into (0, 1).
class Zipf {
 public:
  /// Requires n >= 2. Construction is O(n) (computes the zeta sum once).
  Zipf(uint64_t n, double s, uint64_t seed);

  /// Next rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double s_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace authidx

#endif  // AUTHIDX_COMMON_RANDOM_H_
