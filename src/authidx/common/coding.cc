#include "authidx/common/coding.h"

namespace authidx {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);  // Host is assumed little-endian (x86/ARM).
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, 4);
  return value;
}

uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, 8);
  return value;
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

Status GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint64(input, &v));
  if (v > UINT32_MAX) {
    return Status::Corruption("varint32 overflow");
  }
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = 0;
  while (i < input->size() && shift <= 63) {
    unsigned char byte = static_cast<unsigned char>((*input)[i++]);
    uint64_t bits = byte & 0x7F;
    // The 10th byte holds only bit 63: any higher payload bits would be
    // shifted out silently, making two distinct encodings decode to the
    // same value. Reject instead of truncating.
    if (shift == 63 && bits > 1) {
      return Status::Corruption("varint64 overflow");
    }
    result |= bits << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      input->remove_prefix(i);
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("truncated or oversized varint");
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &len));
  if (input->size() < len) {
    return Status::Corruption("length-prefixed string truncated");
  }
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

int VarintLength32(uint32_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

int VarintLength64(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace authidx
