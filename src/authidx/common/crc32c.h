#ifndef AUTHIDX_COMMON_CRC32C_H_
#define AUTHIDX_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace authidx::crc32c {

/// Extends `init_crc` with `data`, returning the CRC-32C (Castagnoli)
/// of the concatenation. Pass 0 to start a fresh CRC.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC-32C of `data` from a fresh state.
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// Bit-mixes `crc` so that a CRC stored alongside the data it covers does
/// not accidentally validate a file containing embedded CRCs (the RocksDB
/// "masked CRC" trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace authidx::crc32c

#endif  // AUTHIDX_COMMON_CRC32C_H_
