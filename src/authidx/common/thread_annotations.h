#ifndef AUTHIDX_COMMON_THREAD_ANNOTATIONS_H_
#define AUTHIDX_COMMON_THREAD_ANNOTATIONS_H_

// Capability annotations for Clang Thread Safety Analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), the
// compile-time checker behind the `thread-safety` preset (see
// docs/TOOLING.md). Under Clang with -Wthread-safety these attach the
// locking protocol to the code itself so every build re-proves it; on
// every other compiler they expand to nothing and the tree builds
// exactly as before.
//
// The vocabulary, applied via common/mutex.h wrappers:
//
//   AUTHIDX_GUARDED_BY(mu)   field may only be touched while mu is held
//   AUTHIDX_REQUIRES(mu)     function must be called with mu held
//   AUTHIDX_REQUIRES_SHARED  same, shared (reader) mode suffices
//   AUTHIDX_ACQUIRE/RELEASE  function takes/drops mu itself
//   AUTHIDX_EXCLUDES(mu)     function must NOT be called with mu held
//   AUTHIDX_NO_THREAD_SAFETY_ANALYSIS
//                            opt one function out; every use carries a
//                            justifying comment and a tracking note in
//                            docs/ROBUSTNESS.md

#if defined(__clang__)
#define AUTHIDX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AUTHIDX_THREAD_ANNOTATION_(x)  // Expands to nothing off Clang.
#endif

// --- type annotations -----------------------------------------------------

// Marks a type as a capability (a lock). The string names the
// capability kind in diagnostics ("mutex", "shared_mutex").
#define AUTHIDX_CAPABILITY(x) AUTHIDX_THREAD_ANNOTATION_(capability(x))

// Marks an RAII type whose constructor acquires and destructor releases
// a capability (MutexLock and friends).
#define AUTHIDX_SCOPED_CAPABILITY AUTHIDX_THREAD_ANNOTATION_(scoped_lockable)

// --- data annotations -----------------------------------------------------

// The field may only be read or written while holding `x` (shared mode
// suffices for reads).
#define AUTHIDX_GUARDED_BY(x) AUTHIDX_THREAD_ANNOTATION_(guarded_by(x))

// The data *pointed to* by the field may only be touched while holding
// `x`; the pointer itself is unguarded.
#define AUTHIDX_PT_GUARDED_BY(x) AUTHIDX_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define AUTHIDX_ACQUIRED_BEFORE(...) \
  AUTHIDX_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AUTHIDX_ACQUIRED_AFTER(...) \
  AUTHIDX_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// --- function annotations -------------------------------------------------

// Caller must hold the capability exclusively / at least shared.
#define AUTHIDX_REQUIRES(...) \
  AUTHIDX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AUTHIDX_REQUIRES_SHARED(...) \
  AUTHIDX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function itself acquires / releases the capability.
#define AUTHIDX_ACQUIRE(...) \
  AUTHIDX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AUTHIDX_ACQUIRE_SHARED(...) \
  AUTHIDX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define AUTHIDX_RELEASE(...) \
  AUTHIDX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AUTHIDX_RELEASE_SHARED(...) \
  AUTHIDX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define AUTHIDX_RELEASE_GENERIC(...) \
  AUTHIDX_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// The function attempts the acquisition; the first argument is the
// return value that means success.
#define AUTHIDX_TRY_ACQUIRE(...) \
  AUTHIDX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define AUTHIDX_TRY_ACQUIRE_SHARED(...) \
  AUTHIDX_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (guards against self-deadlock on
// non-reentrant locks).
#define AUTHIDX_EXCLUDES(...) \
  AUTHIDX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Injects "capability is held" into the analysis at a call site the
// checker cannot see through (e.g. a std::function body running under a
// lock its caller took). Backed by Mutex::AssertHeld().
#define AUTHIDX_ASSERT_CAPABILITY(x) \
  AUTHIDX_THREAD_ANNOTATION_(assert_capability(x))
#define AUTHIDX_ASSERT_SHARED_CAPABILITY(x) \
  AUTHIDX_THREAD_ANNOTATION_(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define AUTHIDX_RETURN_CAPABILITY(x) \
  AUTHIDX_THREAD_ANNOTATION_(lock_returned(x))

// Turns the analysis off for one function. Every use must carry a
// one-line rationale comment and a row in docs/ROBUSTNESS.md's
// suppression table.
#define AUTHIDX_NO_THREAD_SAFETY_ANALYSIS \
  AUTHIDX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AUTHIDX_COMMON_THREAD_ANNOTATIONS_H_
