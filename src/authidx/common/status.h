#ifndef AUTHIDX_COMMON_STATUS_H_
#define AUTHIDX_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace authidx {

/// Machine-readable classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIOError = 6,
  kNotSupported = 7,
  kFailedPrecondition = 8,
  kResourceExhausted = 9,
  kInternal = 10,
};

/// Returns a stable, human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// `Status` is the error model used across every authidx public API in
/// place of exceptions (following the Arrow/RocksDB idiom from the project
/// style guides). The OK state is represented without allocation; error
/// states carry a code and a message.
///
/// Typical use:
///
///   Status s = wal->Append(record);
///   if (!s.ok()) return s;
///
/// or via the propagation macro:
///
///   AUTHIDX_RETURN_NOT_OK(wal->Append(record));
///
/// The class is `[[nodiscard]]`: a call site that ignores a returned
/// Status fails to compile under -Werror. Use `.IgnoreError()` (with a
/// comment saying why) in the rare case dropping the error is intended.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// Explicitly discards the status. The only sanctioned way to drop an
  /// error; call sites should justify the drop with a comment.
  void IgnoreError() const {}
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the
  /// message, to build error chains while propagating upward.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK Status out of the enclosing function.
#define AUTHIDX_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::authidx::Status _authidx_status_ = (expr);    \
    if (!_authidx_status_.ok()) {                   \
      return _authidx_status_;                      \
    }                                               \
  } while (false)

namespace internal {

/// Aborts the process with the failed status. Out-of-line so the macro
/// below stays cheap at every call site.
[[noreturn]] void CheckOkFailed(const char* expr, const char* file, int line,
                                const Status& status);

/// Aborts the process for a violated internal invariant.
[[noreturn]] void InternalCheckFailed(const char* expr, const char* file,
                                      int line);

// Extracts the Status from either a Status or a Result<T> (anything
// with a `status()` accessor), so AUTHIDX_CHECK_OK accepts both.
inline const Status& ToStatus(const Status& s) { return s; }
template <typename R>
auto ToStatus(const R& r) -> decltype(r.status()) {
  return r.status();
}

}  // namespace internal

/// Aborts (with the status message) when `expr` is a non-OK Status or
/// Result<T>. For benchmarks, examples, and test fixtures where an
/// error cannot be propagated and must not be silently dropped.
/// Library code paths should propagate with AUTHIDX_RETURN_NOT_OK.
#define AUTHIDX_CHECK_OK(expr)                                          \
  do {                                                                  \
    auto&& _authidx_check_res_ = (expr);                                \
    if (!_authidx_check_res_.ok()) {                                    \
      ::authidx::internal::CheckOkFailed(                               \
          #expr, __FILE__, __LINE__,                                    \
          ::authidx::internal::ToStatus(_authidx_check_res_));          \
    }                                                                   \
  } while (false)

/// Aborts when an internal invariant does not hold. Unlike `assert`,
/// the check stays active in release builds — library code must use
/// this (tools/lint.py forbids `assert` under src/authidx/) so invariant
/// violations surface as a diagnosed abort rather than silent UB.
#define AUTHIDX_INTERNAL_CHECK(cond)                                    \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::authidx::internal::InternalCheckFailed(#cond, __FILE__,         \
                                               __LINE__);               \
    }                                                                   \
  } while (false)

}  // namespace authidx

#endif  // AUTHIDX_COMMON_STATUS_H_
