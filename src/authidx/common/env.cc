#include "authidx/common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace authidx {
namespace {

// Overload dispatch for the two strerror_r flavors: glibc's GNU variant
// returns a char* (possibly pointing at its static table, ignoring the
// buffer), POSIX's returns int and always fills the buffer. Selecting on
// the return type at overload resolution works with either libc without
// feature-test-macro gymnastics.
[[maybe_unused]] std::string ErrnoTextFrom(const char* result,
                                           const char* /*buf*/) {
  return std::string(result);
}
[[maybe_unused]] std::string ErrnoTextFrom(int /*result*/,
                                           const char* buf) {
  return std::string(buf);
}

Status ErrnoStatus(const std::string& context, int err) {
  std::string msg = context + ": " + ErrnoMessage(err);
  if (err == ENOENT) {
    return Status::NotFound(std::move(msg));
  }
  return Status::IOError(std::move(msg));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {
    buffer_.reserve(kBufferSize);
  }

  // Destructors cannot propagate errors; callers wanting the close
  // status must call Close() explicitly before destruction.
  ~PosixWritableFile() override { Close().IgnoreError(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("file closed: " + path_);
    }
    if (buffer_.size() + data.size() <= kBufferSize) {
      buffer_.append(data);
      return Status::OK();
    }
    AUTHIDX_RETURN_NOT_OK(FlushBuffer());
    if (data.size() <= kBufferSize) {
      buffer_.append(data);
      return Status::OK();
    }
    return WriteRaw(data);
  }

  Status Flush() override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("file closed: " + path_);
    }
    return FlushBuffer();
  }

  Status Sync() override {
    AUTHIDX_RETURN_NOT_OK(Flush());
    if (::fdatasync(fd_) != 0) {
      return ErrnoStatus("fdatasync " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) {
      return Status::OK();
    }
    Status s = FlushBuffer();
    if (::close(fd_) != 0 && s.ok()) {
      s = ErrnoStatus("close " + path_, errno);
    }
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;

  Status FlushBuffer() {
    if (buffer_.empty()) {
      return Status::OK();
    }
    Status s = WriteRaw(buffer_);
    buffer_.clear();
    return s;
  }

  Status WriteRaw(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("write " + path_, errno);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  std::string buffer_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              std::string_view* out) const override {
    scratch->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("pread " + path_, errno);
      }
      if (r == 0) {
        break;  // EOF.
      }
      got += static_cast<size_t>(r);
    }
    *out = std::string_view(scratch->data(), got);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return ErrnoStatus("fstat " + path_, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return ErrnoStatus("open " + path, errno);
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("open " + path, errno);
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    AUTHIDX_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
    AUTHIDX_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    std::string scratch;
    std::string_view out;
    AUTHIDX_RETURN_NOT_OK(file->Read(0, size, &scratch, &out));
    scratch.resize(out.size());
    return scratch;
  }

  Status WriteStringToFileSync(const std::string& path,
                               std::string_view data) override {
    std::string tmp = path + ".tmp";
    {
      AUTHIDX_ASSIGN_OR_RETURN(auto file, NewWritableFile(tmp));
      AUTHIDX_RETURN_NOT_OK(file->Append(data));
      AUTHIDX_RETURN_NOT_OK(file->Sync());
      AUTHIDX_RETURN_NOT_OK(file->Close());
    }
    return RenameFile(tmp, path);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return ErrnoStatus("opendir " + dir, errno);
    }
    std::vector<std::string> names;
    struct dirent* entry;
    // readdir is only mt-unsafe when two threads share one DIR* stream;
    // this stream is function-local, and glibc's readdir on distinct
    // streams is thread-safe (readdir_r is deprecated for this reason).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        names.push_back(std::move(name));
      }
    }
    ::closedir(d);
    return names;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir " + dir, errno);
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256];
  buf[0] = '\0';
  return ErrnoTextFrom(::strerror_r(err, buf, sizeof(buf)), buf);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // Intentionally leaked.
  return env;
}

}  // namespace authidx
