#include "authidx/common/hash.h"

#include <cstring>

namespace authidx {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Hash64(std::string_view data, uint64_t seed) {
  // xxHash64-inspired: process 8-byte lanes with multiply-rotate, then
  // finalize with the splitmix64 avalanche.
  constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  uint64_t h = seed ^ (data.size() * kP1);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t lane;
    std::memcpy(&lane, p, 8);
    lane *= kP2;
    lane = (lane << 31) | (lane >> 33);
    lane *= kP1;
    h ^= lane;
    h = ((h << 27) | (h >> 37)) * kP1 + kP2;
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    h ^= static_cast<unsigned char>(*p++) * kP1;
    h = ((h << 11) | (h >> 53)) * kP2;
    --n;
  }
  return Mix64(h);
}

}  // namespace authidx
