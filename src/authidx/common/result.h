#ifndef AUTHIDX_COMMON_RESULT_H_
#define AUTHIDX_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "authidx/common/status.h"

namespace authidx {

/// Either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Mirrors `arrow::Result<T>`.
///
///   Result<Citation> c = ParseCitation("95:691 (1993)");
///   if (!c.ok()) return c.status();
///   Use(*c);
///
/// or with the propagation macro:
///
///   AUTHIDX_ASSIGN_OR_RETURN(Citation c, ParseCitation(text));
///
/// Like `Status`, the class is `[[nodiscard]]`: silently ignoring a
/// returned Result fails to compile under -Werror.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so functions can
  /// `return Status::NotFound(...)`). Passing an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// Returns the carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors; must only be called when `ok()`. Calling them in the
  /// error state aborts with the carried status (in every build type —
  /// never silent UB).
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in the error state.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      internal::CheckOkFailed("Result::value()", __FILE__, __LINE__, status_);
    }
  }

  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

#define AUTHIDX_CONCAT_IMPL(a, b) a##b
#define AUTHIDX_CONCAT(a, b) AUTHIDX_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating its error, else binding
/// the contained value to `lhs` (a declaration such as `auto v`).
#define AUTHIDX_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  AUTHIDX_ASSIGN_OR_RETURN_IMPL(                                   \
      AUTHIDX_CONCAT(_authidx_result_, __LINE__), lhs, rexpr)

#define AUTHIDX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

}  // namespace authidx

#endif  // AUTHIDX_COMMON_RESULT_H_
