#ifndef AUTHIDX_COMMON_ENV_H_
#define AUTHIDX_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/common/status.h"

namespace authidx {

/// Thread-safe strerror: renders `err` (an errno value) via strerror_r
/// into an owned string. Use this instead of std::strerror, whose
/// returned buffer may be shared between threads
/// (clang-tidy concurrency-mt-unsafe).
std::string ErrnoMessage(int err);

/// Sequential append-only file with an application-side write buffer.
/// Created via Env::NewWritableFile. Close() (or the destructor) flushes;
/// only Sync() provides durability.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers `data`, spilling to the OS when the buffer fills.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flush + fdatasync: bytes are durable on return.
  virtual Status Sync() = 0;

  /// Flushes and closes the descriptor. Idempotent.
  virtual Status Close() = 0;
};

/// Positional-read file handle (pread-based, stateless, thread-safe).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `*scratch`, setting `*out` to
  /// the bytes read (may be shorter than `n` at EOF).
  virtual Status Read(uint64_t offset, size_t n, std::string* scratch,
                      std::string_view* out) const = 0;

  /// File size in bytes.
  virtual Result<uint64_t> Size() const = 0;
};

/// Minimal filesystem abstraction (POSIX implementation). Indirection
/// exists so tests can inject fault-injecting environments.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide default POSIX environment (never deleted).
  static Env* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Atomically replaces `path` contents by writing a temp file, syncing,
  /// and renaming over the destination.
  virtual Status WriteStringToFileSync(const std::string& path,
                                       std::string_view data) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

}  // namespace authidx

#endif  // AUTHIDX_COMMON_ENV_H_
