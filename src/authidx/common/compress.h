#ifndef AUTHIDX_COMMON_COMPRESS_H_
#define AUTHIDX_COMMON_COMPRESS_H_

#include <string>
#include <string_view>

#include "authidx/common/result.h"

namespace authidx {

/// Byte-oriented LZ77 compressor in the LZ4 token format family, used to
/// compress storage blocks (ablation: bench_ablation).
///
/// Stream layout: varint64 uncompressed_size, then a sequence of
/// tokens:
///
///   token    := tag (1B) | literal_len_ext* | literals
///             | offset (2B LE) | match_len_ext*
///   tag      := (literal_len:4) << 4 | (match_len - kMinMatch):4
///
/// A nibble value of 15 is extended with 255-valued continuation bytes
/// plus a final byte (LZ4 length coding). The final token has no match
/// part (signalled by the stream ending after its literals). Matches are
/// found greedily with a 4-byte-hash table; window is 64 KiB.
///
/// Incompressible inputs expand by at most ~0.5%; callers (the table
/// writer) keep whichever form is smaller.

/// Compresses `input` into `*output` (replaced).
void LzCompress(std::string_view input, std::string* output);

/// Decompresses a LzCompress stream. Returns Corruption for malformed
/// input; never reads/writes out of bounds.
Result<std::string> LzDecompress(std::string_view input);

/// Upper bound on compressed size for `n` input bytes.
size_t LzMaxCompressedSize(size_t n);

}  // namespace authidx

#endif  // AUTHIDX_COMMON_COMPRESS_H_
