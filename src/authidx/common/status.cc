#include "authidx/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace authidx {

namespace internal {

void CheckOkFailed(const char* expr, const char* file, int line,
                   const Status& status) {
  std::fprintf(stderr, "%s:%d: AUTHIDX_CHECK_OK(%s) failed: %s\n", file, line,
               expr, status.ToString().c_str());
  std::abort();
}

void InternalCheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: AUTHIDX_INTERNAL_CHECK(%s) failed\n", file,
               line, expr);
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace authidx
