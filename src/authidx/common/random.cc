#include "authidx/common/random.h"

#include <cmath>

#include "authidx/common/hash.h"

namespace authidx {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  // splitmix64 seeding, as recommended by the xoshiro authors.
  uint64_t z = seed;
  for (auto& lane : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    lane = Mix64(z);
  }
  // Avoid the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Random::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Lemire's bounded rejection method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Random::OneIn(uint64_t n) { return Uniform(n) == 0; }

uint64_t Random::Skewed(int max_log) {
  int log = static_cast<int>(Uniform(static_cast<uint64_t>(max_log) + 1));
  return Uniform(uint64_t{1} << log);
}

Zipf::Zipf(uint64_t n, double s, uint64_t seed) : n_(n), s_(s), rng_(seed) {
  // Gray et al. ("Quickly Generating Billion-Record Synthetic Databases")
  // zipfian generator, as popularized by YCSB. Requires 0 < s < 1; the
  // constructor clamps s into (0, 1) since the workloads here only need
  // the classic 0.99 skew family.
  if (s_ >= 1.0) {
    s_ = 0.999;
  }
  if (s_ <= 0.0) {
    s_ = 0.001;
  }
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), s_);
  }
  theta_ = s_;
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t Zipf::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace authidx
