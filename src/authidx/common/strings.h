#ifndef AUTHIDX_COMMON_STRINGS_H_
#define AUTHIDX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"

namespace authidx {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `delim`; empty pieces are preserved.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only lowercase copy.
std::string AsciiToLower(std::string_view s);

/// ASCII-only uppercase copy.
std::string AsciiToUpper(std::string_view s);

/// Parses a base-10 unsigned integer occupying all of `s`.
Result<uint64_t> ParseUint64(std::string_view s);

/// Parses a base-10 signed integer occupying all of `s`.
Result<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes non-printable bytes as \xNN for error messages and dumps.
std::string CEscape(std::string_view s);

/// Appends `s` to `*out` escaped for use inside a JSON string literal
/// (quotes, backslashes, control bytes; the surrounding quotes are the
/// caller's job).
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Returns `s` as a quoted JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace authidx

#endif  // AUTHIDX_COMMON_STRINGS_H_
