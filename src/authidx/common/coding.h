#ifndef AUTHIDX_COMMON_CODING_H_
#define AUTHIDX_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "authidx/common/status.h"

namespace authidx {

// Little-endian fixed-width and LEB128 variable-width integer coding used
// by the storage block format, the WAL, and postings compression.

/// Appends `value` to `dst` as 4 little-endian bytes.
void PutFixed32(std::string* dst, uint32_t value);

/// Appends `value` to `dst` as 8 little-endian bytes.
void PutFixed64(std::string* dst, uint64_t value);

/// Decodes 4 little-endian bytes at `src` (must have >= 4 readable bytes).
uint32_t DecodeFixed32(const char* src);

/// Decodes 8 little-endian bytes at `src` (must have >= 8 readable bytes).
uint64_t DecodeFixed64(const char* src);

/// Appends `value` to `dst` in LEB128 varint form (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);

/// Appends `value` to `dst` in LEB128 varint form (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Decodes a varint32 from the front of `*input`, advancing it past the
/// consumed bytes. Returns Corruption on truncated or oversized input.
Status GetVarint32(std::string_view* input, uint32_t* value);

/// Decodes a varint64 from the front of `*input`, advancing it.
Status GetVarint64(std::string_view* input, uint64_t* value);

/// Decodes a length-prefixed string from the front of `*input`; `*value`
/// aliases the input buffer.
Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Returns the encoded size of `value` as a varint (1-5).
int VarintLength32(uint32_t value);

/// Returns the encoded size of `value` as a varint (1-10).
int VarintLength64(uint64_t value);

/// Maps signed to unsigned so small-magnitude values get short varints
/// (0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...).
inline uint64_t ZigZagEncode64(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

/// Inverse of ZigZagEncode64.
inline int64_t ZigZagDecode64(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

}  // namespace authidx

#endif  // AUTHIDX_COMMON_CODING_H_
