#ifndef AUTHIDX_COMMON_ARENA_H_
#define AUTHIDX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace authidx {

/// Bump allocator for node-heavy data structures (skiplist memtable, trie).
/// Allocations live until the arena is destroyed; there is no per-object
/// free. Not thread-safe.
class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with no particular alignment (>= 1).
  char* Allocate(size_t bytes);

  /// Allocates `bytes` aligned for any scalar type (alignof(max_align_t)
  /// capped at 8, which suffices for the node types stored here).
  char* AllocateAligned(size_t bytes);

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s);

  /// Total bytes handed to callers plus block bookkeeping; used by the
  /// memtable to decide when to flush.
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 64 * 1024;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace authidx

#endif  // AUTHIDX_COMMON_ARENA_H_
