#include "authidx/common/compress.h"

#include <cstring>
#include <vector>

#include "authidx/common/coding.h"

namespace authidx {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 15;

inline uint32_t HashWord(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// LZ4-style length nibble: 0-14 direct, 15 + 255* + final byte.
void PutLength(std::string* out, size_t len) {
  while (len >= 255) {
    out->push_back(static_cast<char>(0xFF));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

bool GetLength(std::string_view* in, size_t* len) {
  while (true) {
    if (in->empty()) {
      return false;
    }
    unsigned char b = static_cast<unsigned char>(in->front());
    in->remove_prefix(1);
    *len += b;
    if (b != 255) {
      return true;
    }
  }
}

void EmitToken(std::string* out, const char* literals, size_t literal_len,
               size_t match_len, size_t offset) {
  size_t lit_nibble = literal_len < 15 ? literal_len : 15;
  size_t match_code = match_len >= kMinMatch ? match_len - kMinMatch : 0;
  size_t match_nibble = match_len == 0 ? 0 : (match_code < 15 ? match_code : 15);
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) {
    PutLength(out, literal_len - 15);
  }
  out->append(literals, literal_len);
  if (match_len > 0) {
    out->push_back(static_cast<char>(offset & 0xFF));
    out->push_back(static_cast<char>((offset >> 8) & 0xFF));
    if (match_nibble == 15) {
      PutLength(out, match_code - 15);
    }
  }
}

}  // namespace

size_t LzMaxCompressedSize(size_t n) {
  // Worst case: all literals; one extra length byte per 255 literals,
  // plus token and header overhead.
  return n + n / 255 + 32;
}

void LzCompress(std::string_view input, std::string* output) {
  output->clear();
  output->reserve(input.size() / 2 + 32);
  PutVarint64(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);
  std::vector<bool> table_set(size_t{1} << kHashBits, false);
  size_t anchor = 0;  // Start of pending literals.
  size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    uint32_t h = HashWord(base + pos);
    size_t candidate = table[h];
    bool usable = table_set[h] && candidate < pos &&
                  pos - candidate <= kMaxOffset &&
                  std::memcmp(base + candidate, base + pos, kMinMatch) == 0;
    table[h] = static_cast<uint32_t>(pos);
    table_set[h] = true;
    if (!usable) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    size_t match_len = kMinMatch;
    while (pos + match_len < n &&
           base[candidate + match_len] == base[pos + match_len]) {
      ++match_len;
    }
    EmitToken(output, base + anchor, pos - anchor, match_len,
              pos - candidate);
    pos += match_len;
    anchor = pos;
  }
  // Trailing literals as a final match-less token. Omitted entirely when
  // a match consumed the input exactly, so every stream byte is load-
  // bearing (truncations are always detectable).
  if (n - anchor > 0) {
    EmitToken(output, base + anchor, n - anchor, 0, 0);
  }
}

Result<std::string> LzDecompress(std::string_view input) {
  uint64_t expected_size = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&input, &expected_size));
  // Guard absurd headers so corruption cannot trigger huge allocations:
  // LZ4-family tokens expand at most ~255x per byte.
  if (expected_size > (input.size() + 16) * 256) {
    return Status::Corruption("implausible decompressed size");
  }
  std::string out;
  out.reserve(expected_size);
  while (out.size() < expected_size) {
    if (input.empty()) {
      return Status::Corruption("truncated compressed stream");
    }
    unsigned char tag = static_cast<unsigned char>(input.front());
    input.remove_prefix(1);
    size_t literal_len = tag >> 4;
    if (literal_len == 15) {
      if (!GetLength(&input, &literal_len)) {
        return Status::Corruption("truncated literal length");
      }
    }
    if (input.size() < literal_len) {
      return Status::Corruption("truncated literals");
    }
    out.append(input.data(), literal_len);
    input.remove_prefix(literal_len);
    if (out.size() > expected_size) {
      return Status::Corruption("literals overflow declared size");
    }
    if (out.size() == expected_size && input.empty()) {
      break;  // Final literal-only token.
    }
    if (input.empty()) {
      // Final token may omit the match part even before expected_size
      // only if sizes already agree (checked above).
      return Status::Corruption("missing match part");
    }
    if (input.size() < 2) {
      return Status::Corruption("truncated match offset");
    }
    size_t offset = static_cast<unsigned char>(input[0]) |
                    (static_cast<size_t>(static_cast<unsigned char>(input[1]))
                     << 8);
    input.remove_prefix(2);
    size_t match_len = (tag & 0x0F);
    if (match_len == 15) {
      if (!GetLength(&input, &match_len)) {
        return Status::Corruption("truncated match length");
      }
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("match offset out of range");
    }
    if (out.size() + match_len > expected_size) {
      return Status::Corruption("match overflows declared size");
    }
    // Byte-by-byte copy: overlapping matches (offset < match_len) must
    // replicate, RLE-style.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("decompressed size mismatch");
  }
  return out;
}

}  // namespace authidx
