#ifndef AUTHIDX_COMMON_RETRY_H_
#define AUTHIDX_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "authidx/common/random.h"
#include "authidx/common/status.h"

namespace authidx {

/// True when `status` describes a failure worth retrying: the operation
/// might succeed if simply re-run (I/O hiccup, resource pressure).
/// Corruption, invalid input, and violated preconditions are permanent —
/// retrying them would loop on a deterministic failure or, worse, paper
/// over damaged data.
bool IsTransientError(const Status& status);

/// Policy for RetryWithBackoff. Defaults are tuned for tests (short
/// delays); production embedders raise the delays to real I/O scales.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  int max_attempts = 3;
  /// Backoff before the first retry, doubled per subsequent retry.
  uint64_t base_delay_us = 100;
  /// Upper bound the exponential backoff saturates at.
  uint64_t max_delay_us = 10000;
  /// Fraction of each delay that is randomized away ("equal jitter"):
  /// the actual sleep is uniform in [delay*(1-jitter), delay]. Clamped
  /// to [0, 1].
  double jitter = 0.5;
};

/// Called before each retry sleep with the 1-based attempt number that
/// just failed, its status, and the chosen backoff.
using RetryObserver =
    std::function<void(int attempt, const Status& failure, uint64_t delay_us)>;

/// Replaces the real sleep in tests; receives the jittered delay.
using RetrySleeper = std::function<void(uint64_t delay_us)>;

/// Backoff for the retry following failed attempt `attempt` (1-based):
/// min(base << (attempt-1), max), jittered per `policy.jitter` using
/// `rng` (deterministic for a fixed seed).
uint64_t RetryBackoffDelayUs(const RetryPolicy& policy, int attempt,
                             Random* rng);

/// Runs `op` up to `policy.max_attempts` times, sleeping an exponential
/// jittered backoff between attempts. Only transient failures (see
/// IsTransientError) are retried; a permanent failure is returned
/// immediately. `on_retry` (may be null) fires before each sleep;
/// `sleeper` (may be null) replaces the real sleep in tests. Returns the
/// first success or the final failure.
Status RetryWithBackoff(const RetryPolicy& policy, Random* rng,
                        const std::function<Status()>& op,
                        const RetryObserver& on_retry = nullptr,
                        const RetrySleeper& sleeper = nullptr);

}  // namespace authidx

#endif  // AUTHIDX_COMMON_RETRY_H_
