#ifndef AUTHIDX_COMMON_HASH_H_
#define AUTHIDX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace authidx {

/// 64-bit FNV-1a hash; fast, decent-quality, used where a simple stable
/// string hash suffices (e.g. term dictionaries).
uint64_t Fnv1a64(std::string_view data);

/// 64-bit MurmurHash3-style finalizer over a seeded 64-bit mix; used by
/// the Bloom filter to derive k independent probe positions from a single
/// 128-bit-ish hash (Kirsch-Mitzenmacher double hashing).
uint64_t Hash64(std::string_view data, uint64_t seed);

/// Avalanche mix for integer keys (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace authidx

#endif  // AUTHIDX_COMMON_HASH_H_
