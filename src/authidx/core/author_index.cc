#include "authidx/core/author_index.h"

#include <algorithm>
#include <optional>

#include "authidx/common/coding.h"
#include "authidx/model/serde.h"
#include "authidx/text/collate.h"
#include "authidx/text/distance.h"
#include "authidx/text/normalize.h"
#include "authidx/text/phonetic.h"
#include "authidx/text/tokenize.h"

namespace authidx::core {
namespace {

// Storage key for an entry: big-endian id so byte order == numeric order.
std::string EntryKey(EntryId id) {
  std::string key(5, '\0');
  key[0] = 'e';
  key[1] = static_cast<char>(id >> 24);
  key[2] = static_cast<char>((id >> 16) & 0xFF);
  key[3] = static_cast<char>((id >> 8) & 0xFF);
  key[4] = static_cast<char>(id & 0xFF);
  return key;
}

// B+-tree key: collation sort key + 0x00 + big-endian id. The 0x00
// separator never occurs in sort keys (their minimum byte is 0x01), so
// composed keys order first by collation then by ingest order.
std::string OrderKey(std::string_view sort_key, EntryId id) {
  std::string key(sort_key);
  key.push_back('\0');
  key.push_back(static_cast<char>(id >> 24));
  key.push_back(static_cast<char>((id >> 16) & 0xFF));
  key.push_back(static_cast<char>((id >> 8) & 0xFF));
  key.push_back(static_cast<char>(id & 0xFF));
  return key;
}

// Inverse of EntryKey: true when `key` is an entry key, extracting the
// dense id.
bool ParseEntryKey(std::string_view key, EntryId* id) {
  if (key.size() != 5 || key.front() != 'e') {
    return false;
  }
  *id = (static_cast<EntryId>(static_cast<unsigned char>(key[1])) << 24) |
        (static_cast<EntryId>(static_cast<unsigned char>(key[2])) << 16) |
        (static_cast<EntryId>(static_cast<unsigned char>(key[3])) << 8) |
        static_cast<EntryId>(static_cast<unsigned char>(key[4]));
  return true;
}

}  // namespace

AuthorIndex::~AuthorIndex() = default;

AuthorIndex::AuthorIndex()
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      slowlog_(std::make_unique<obs::SlowQueryLog>()),
      log_(obs::Logger::Disabled()) {
  queries_total_ =
      metrics_->RegisterCounter("authidx_queries_total", "Queries executed");
  slow_queries_total_ = metrics_->RegisterCounter(
      "authidx_slow_queries_total",
      "Queries exceeding the slow-query threshold");
  query_ns_ = metrics_->RegisterLatencyHistogram(
      "authidx_query_duration_ns", "End-to-end query execution latency, ns");
  exec_obs_.stage_plan_ns = metrics_->RegisterLatencyHistogram(
      "authidx_query_stage_plan_duration_ns",
      "Query planning stage latency, ns");
  exec_obs_.stage_candidates_ns = metrics_->RegisterLatencyHistogram(
      "authidx_query_stage_candidates_duration_ns",
      "Candidate-generation stage latency, ns");
  exec_obs_.stage_filter_ns = metrics_->RegisterLatencyHistogram(
      "authidx_query_stage_filter_duration_ns",
      "Residual-filter stage latency, ns");
  exec_obs_.stage_order_ns = metrics_->RegisterLatencyHistogram(
      "authidx_query_stage_order_duration_ns",
      "Ordering/pagination stage latency, ns");
  static constexpr const char* kPlanCounterNames[query::kPlanKindCount] = {
      "authidx_query_plan_author_exact_total",
      "authidx_query_plan_author_prefix_total",
      "authidx_query_plan_author_fuzzy_total",
      "authidx_query_plan_title_terms_total",
      "authidx_query_plan_full_scan_total",
      "authidx_query_plan_title_topk_total",
  };
  for (size_t kind = 0; kind < query::kPlanKindCount; ++kind) {
    exec_obs_.plan_chosen[kind] = metrics_->RegisterCounter(
        kPlanCounterNames[kind], "Queries the planner routed to this path");
  }
  exec_obs_.postings_skipped = metrics_->RegisterCounter(
      "authidx_postings_skipped_total",
      "Postings skipped undecoded by block-max top-k pruning");
  exec_obs_.topk_pruned_queries = metrics_->RegisterCounter(
      "authidx_topk_pruned_queries_total",
      "Queries where top-k pruning skipped at least one candidate range");
  // Index-layer instruments, recorded into by the structures themselves.
  author_trie_.BindMetrics(
      metrics_->RegisterGauge("authidx_trie_nodes",
                              "Author trie nodes currently allocated"),
      metrics_->RegisterLatencyHistogram(
          "authidx_trie_prefix_scan_duration_ns",
          "Latency of one trie prefix scan, ns"));
  inverted_.BindMetrics(metrics_->RegisterCounter(
      "authidx_inverted_postings_decoded_total",
      "Postings decoded by title-index lookups"));
  author_order_.BindMetrics(metrics_->RegisterCounter(
      "authidx_btree_page_reads_total",
      "B+-tree nodes visited during root-to-leaf descents"));
}

std::unique_ptr<AuthorIndex> AuthorIndex::Create() {
  return std::unique_ptr<AuthorIndex>(new AuthorIndex());
}

Result<std::unique_ptr<AuthorIndex>> AuthorIndex::OpenPersistent(
    const std::string& dir, storage::EngineOptions options) {
  auto catalog = std::unique_ptr<AuthorIndex>(new AuthorIndex());
  if (options.metrics == nullptr) {
    // Storage metrics land in the catalog's registry so one snapshot
    // covers every layer.
    options.metrics = catalog->metrics_.get();
  }
  if (options.logger != nullptr) {
    // Catalog-level events (slow queries) share the engine's logger.
    catalog->log_ = options.logger;
  }
  AUTHIDX_ASSIGN_OR_RETURN(catalog->engine_,
                           storage::StorageEngine::Open(dir, options));
  // Rebuild the in-memory indexes from storage, in id (ingest) order —
  // entry keys are big-endian ids, so engine iteration order is id order.
  auto it = catalog->engine_->NewIterator();
  {
    // Exclusive for the whole rebuild: nothing else can reference the
    // catalog yet, but IndexEntry's contract (REQUIRES(index_mu_)) is
    // uniform whether it runs under recovery or a live Add.
    WriterMutexLock lock(catalog->index_mu_);
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string_view key = it->key();
      if (key.empty() || key.front() != 'e') {
        continue;
      }
      AUTHIDX_ASSIGN_OR_RETURN(Entry entry, DecodeEntryExact(it->value()));
      catalog->IndexEntry(std::move(entry));
    }
  }
  AUTHIDX_RETURN_NOT_OK(it->status());
  return catalog;
}

Result<std::unique_ptr<AuthorIndex>> AuthorIndex::OpenReplica(
    const std::string& dir, storage::EngineOptions options) {
  options.apply_only = true;
  // A follower acks nothing to clients, but its durable position must
  // never run ahead of its WAL: synced applies keep the
  // "position committed after data" invariant cheap to reason about.
  options.sync_writes = true;
  AUTHIDX_ASSIGN_OR_RETURN(std::unique_ptr<AuthorIndex> catalog,
                           OpenPersistent(dir, options));
  catalog->is_replica_ = true;
  return catalog;
}

Status AuthorIndex::ApplyReplicatedRecord(std::string_view record) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition(
        "in-memory catalog cannot apply replicated records");
  }
  // Decode outside the lock: collect the entry puts the record carries.
  struct PendingEntry {
    EntryId id;
    Entry entry;
  };
  std::vector<PendingEntry> pending;
  bool has_foreign_ops = false;  // Deletes / non-entry keys.
  Status decode_error;
  Status parsed = storage::StorageEngine::ForEachRecordOp(
      record,
      [&](std::string_view key, std::string_view value) {
        if (!decode_error.ok()) {
          return;
        }
        EntryId id = 0;
        if (!ParseEntryKey(key, &id)) {
          has_foreign_ops = true;
          return;
        }
        Result<Entry> entry = DecodeEntryExact(value);
        if (!entry.ok()) {
          decode_error =
              entry.status().WithContext("decoding replicated entry");
          return;
        }
        pending.push_back({id, std::move(entry).value()});
      },
      [&](std::string_view) { has_foreign_ops = true; });
  AUTHIDX_RETURN_NOT_OK(parsed);
  AUTHIDX_RETURN_NOT_OK(decode_error);

  WriterMutexLock lock(index_mu_);
  const EntryId next_id = static_cast<EntryId>(entries_.size());
  bool any_new = has_foreign_ops;
  for (const PendingEntry& p : pending) {
    if (p.id >= next_id) {
      any_new = true;
    }
  }
  if (!any_new) {
    // Duplicate delivery: every entry in the record is already durable
    // and indexed (ids are dense and assigned in WAL order, and records
    // are atomic). Re-delivery after a follower crash lands here.
    return Status::OK();
  }
  AUTHIDX_RETURN_NOT_OK(engine_->ApplyReplicated(record));
  for (PendingEntry& p : pending) {
    if (p.id < next_id) {
      continue;  // Already indexed half of a replayed prefix.
    }
    if (p.id != static_cast<EntryId>(entries_.size())) {
      return Status::Corruption(
          "replicated record carries a non-dense entry id");
    }
    IndexEntry(std::move(p.entry));
  }
  // Follower reads must never serve pre-apply cached results.
  data_epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

EntryId AuthorIndex::IndexEntry(Entry entry) {
  EntryId id = static_cast<EntryId>(entries_.size());

  // Collation order index.
  std::string group_key = entry.author.GroupKey();
  std::string sort_key = text::MakeSortKey(group_key);
  author_order_.Insert(OrderKey(sort_key, id), id);

  // Author groups (exact, prefix, surname, phonetic surfaces).
  std::string folded = text::NormalizeForIndex(group_key);
  auto found = group_by_folded_.find(folded);
  size_t group_idx;
  if (found == group_by_folded_.end()) {
    group_idx = groups_.size();
    GroupRecord group;
    group.folded = folded;
    group.display = group_key;
    group.folded_surname = text::NormalizeForIndex(entry.author.surname);
    groups_.push_back(std::move(group));
    group_by_folded_.emplace(folded, group_idx);
    groups_by_surname_[groups_[group_idx].folded_surname].push_back(
        group_idx);
    groups_by_phonetic_[text::Metaphone(entry.author.surname)].push_back(
        group_idx);
    author_trie_.Insert(folded, group_idx);
  } else {
    group_idx = found->second;
  }
  groups_[group_idx].entries.push_back(id);

  // Title index.
  inverted_.AddDocument(id, text::Tokenize(entry.title));

  sort_keys_.push_back(std::move(sort_key));
  entries_.push_back(std::move(entry));
  return id;
}

Result<EntryId> AuthorIndex::Add(Entry entry) {
  AUTHIDX_RETURN_NOT_OK(ValidateEntry(entry));
  // Exclusive: id assignment, the durable write, and index maintenance
  // must be one atomic step or concurrent Adds could interleave ids.
  WriterMutexLock lock(index_mu_);
  EntryId id = static_cast<EntryId>(entries_.size());
  if (engine_ != nullptr) {
    AUTHIDX_RETURN_NOT_OK(
        engine_->Put(EntryKey(id), EncodeEntryToString(entry)));
  }
  id = IndexEntry(std::move(entry));
  data_epoch_.fetch_add(1, std::memory_order_release);
  return id;
}

Status AuthorIndex::AddAll(std::vector<Entry> entries) {
  // Validate everything first so a bad entry cannot leave a partially
  // ingested batch.
  for (const Entry& entry : entries) {
    AUTHIDX_RETURN_NOT_OK(ValidateEntry(entry));
  }
  WriterMutexLock lock(index_mu_);
  if (engine_ != nullptr) {
    // One atomic storage batch per AddAll: amortizes WAL framing/syncs
    // and recovers all-or-nothing (bench_ablation BM_AblateBatchIngest).
    storage::WriteBatch batch;
    EntryId id = static_cast<EntryId>(entries_.size());
    for (const Entry& entry : entries) {
      batch.Put(EntryKey(id++), EncodeEntryToString(entry));
    }
    AUTHIDX_RETURN_NOT_OK(engine_->Apply(batch));
  }
  for (Entry& entry : entries) {
    IndexEntry(std::move(entry));
  }
  if (!entries.empty()) {
    data_epoch_.fetch_add(1, std::memory_order_release);
  }
  return Status::OK();
}

Result<query::QueryResult> AuthorIndex::Search(
    std::string_view query_text) const {
  return SearchTraced(query_text, nullptr);
}

Result<query::QueryResult> AuthorIndex::SearchTraced(
    std::string_view query_text, obs::Trace* trace) const {
  uint64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == 0) {
    return SearchInternal(query_text, trace);
  }
  // Armed: trace opportunistically (into a local buffer when the caller
  // brought none) so a slow query's span tree is always available. This
  // branch may allocate — acceptable, the threshold was opted into.
  obs::Trace local_trace;
  obs::Trace* capture = trace != nullptr ? trace : &local_trace;
  uint64_t start_ns = obs::MonotonicNowNs();
  Result<query::QueryResult> result = SearchInternal(query_text, capture);
  uint64_t duration_ns = obs::MonotonicNowNs() - start_ns;
  if (duration_ns >= threshold) {
    RecordSlowQuery(query_text, duration_ns, *capture, result);
  }
  return result;
}

Result<query::QueryResult> AuthorIndex::SearchInternal(
    std::string_view query_text, obs::Trace* trace) const {
  obs::TraceSpan root(trace, nullptr, "query");
  query::Query q;
  {
    obs::TraceSpan span(trace, nullptr, "parse");
    AUTHIDX_ASSIGN_OR_RETURN(q, query::ParseQuery(query_text));
  }
  return RunTraced(q, trace);
}

void AuthorIndex::RecordSlowQuery(
    std::string_view query_text, uint64_t duration_ns,
    const obs::Trace& trace,
    const Result<query::QueryResult>& result) const {
  slow_queries_total_->Inc();
  obs::SlowQueryEntry entry;
  entry.unix_ms = obs::WallUnixMillis();
  entry.duration_ns = duration_ns;
  if (!trace.trace_id().IsZero()) {
    entry.trace_id = trace.trace_id().ToHex();
  }
  entry.query = std::string(query_text);
  entry.plan = result.ok()
                   ? std::string(query::PlanKindToString(result->plan))
                   : "error: " + result.status().message();
  entry.spans = trace.spans();
  log_->Log(obs::LogLevel::kWarn, "slow_query",
            {{"trace_id", entry.trace_id},
             {"query", entry.query},
             {"plan", entry.plan},
             {"duration_ns", duration_ns},
             {"spans", static_cast<uint64_t>(entry.spans.size())}});
  slowlog_->Record(std::move(entry));
}

void AuthorIndex::SetSlowQueryThreshold(uint64_t threshold_ns) {
  slow_threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
}

std::vector<obs::SlowQueryEntry> AuthorIndex::SlowQueries() const {
  return slowlog_->Snapshot();
}

void AuthorIndex::SetLogger(obs::Logger* logger) {
  log_ = logger != nullptr ? logger : obs::Logger::Disabled();
}

Result<query::QueryResult> AuthorIndex::Run(const query::Query& q) const {
  uint64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == 0) {
    return RunTraced(q, nullptr);
  }
  // Armed: same capture envelope as SearchTraced, so pre-parsed queries
  // show up in the slow-query log too (reconstructed via ToString()).
  obs::Trace local_trace;
  uint64_t start_ns = obs::MonotonicNowNs();
  Result<query::QueryResult> result = RunTraced(q, &local_trace);
  uint64_t duration_ns = obs::MonotonicNowNs() - start_ns;
  if (duration_ns >= threshold) {
    RecordSlowQuery(q.ToString(), duration_ns, local_trace, result);
  }
  return result;
}

// Pre-locked CatalogView the query entry points hand to the executor:
// RunTraced already holds index_mu_ shared for the whole plan+execute
// pass, so the callbacks must not re-acquire it (recursive shared
// locking is UB and can deadlock against a queued writer). The analysis
// cannot see that invariant across the executor's virtual calls, so
// every callback re-states it with AssertReaderHeld() — a no-op at
// runtime that re-establishes the shared capability for the checker.
class AuthorIndex::RawView final : public query::CatalogView {
 public:
  explicit RawView(const AuthorIndex& index)
      AUTHIDX_REQUIRES_SHARED(index.index_mu_)
      : index_(index) {}

  const Entry* GetEntry(EntryId id) const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.GetEntryUnlocked(id);
  }
  size_t entry_count() const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.entries_.size();
  }
  const InvertedIndex& title_index() const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.inverted_;
  }
  std::vector<EntryId> AuthorExact(
      std::string_view folded_group) const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.AuthorExactUnlocked(folded_group);
  }
  std::vector<EntryId> AuthorPrefix(std::string_view folded_prefix,
                                    size_t max_groups) const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.AuthorPrefixUnlocked(folded_prefix, max_groups);
  }
  std::vector<EntryId> AuthorFuzzy(std::string_view folded_name,
                                   size_t max_edits) const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.AuthorFuzzyUnlocked(folded_name, max_edits);
  }
  std::string_view SortKey(EntryId id) const override {
    index_.index_mu_.AssertReaderHeld();
    return index_.SortKeyUnlocked(id);
  }

 private:
  const AuthorIndex& index_;
};

Result<query::QueryResult> AuthorIndex::RunTraced(const query::Query& q,
                                                  obs::Trace* trace) const {
  queries_total_->Inc();
  obs::TraceSpan span(trace, query_ns_, "execute");
  if (result_cache_ == nullptr) {
    return RunUncached(q, trace);
  }
  const std::string key = q.ToString();
  // Epoch read BEFORE execution, epoch bumps happen inside exclusive
  // mutation sections: an ingest racing with this query can only make
  // the inserted entry immediately stale (a harmless extra miss), never
  // mark post-ingest data with a pre-ingest epoch.
  const uint64_t epoch = data_epoch_.load(std::memory_order_acquire);
  {
    obs::TraceSpan probe(trace, nullptr, "cache_probe");
    std::optional<query::QueryResult> hit = result_cache_->Probe(key, epoch);
    if (trace != nullptr) {
      // Zero-duration marker child recording the probe outcome, so
      // /tracez and remote --trace show where a hit short-circuited.
      size_t marker =
          trace->StartSpan(hit.has_value() ? "cache_hit" : "cache_miss");
      trace->EndSpan(marker, 0);
    }
    if (hit.has_value()) {
      return std::move(*hit);
    }
  }
  Result<query::QueryResult> result = RunUncached(q, trace);
  if (result.ok()) {
    result_cache_->Insert(key, epoch, *result);
  }
  return result;
}

Result<query::QueryResult> AuthorIndex::RunUncached(const query::Query& q,
                                                    obs::Trace* trace) const {
  query::ExecObs hooks = exec_obs_;
  hooks.trace = trace;
  // Shared for the whole plan+execute pass: the executor's CatalogView
  // callbacks (and the index structures they walk) see one consistent
  // catalog while ingests are excluded.
  ReaderMutexLock lock(index_mu_);
  RawView view(*this);
  return query::Execute(q, view, &hooks);
}

void AuthorIndex::EnableResultCache(size_t capacity_bytes) {
  if (capacity_bytes == 0) {
    result_cache_.reset();
    return;
  }
  result_cache_ = std::make_unique<ResultCache>(capacity_bytes);
  ResultCache::Instruments instruments;
  instruments.hits = metrics_->RegisterCounter(
      "authidx_result_cache_hits_total", "Result-cache probes that hit");
  instruments.misses = metrics_->RegisterCounter(
      "authidx_result_cache_misses_total", "Result-cache probes that missed");
  instruments.evictions = metrics_->RegisterCounter(
      "authidx_result_cache_evictions_total",
      "Result-cache entries evicted by capacity pressure");
  instruments.invalidations = metrics_->RegisterCounter(
      "authidx_result_cache_invalidations_total",
      "Result-cache entries dropped because the data epoch moved");
  instruments.bytes = metrics_->RegisterGauge(
      "authidx_result_cache_bytes", "Bytes currently charged to the cache");
  result_cache_->BindMetrics(instruments);
}

obs::MetricsSnapshot AuthorIndex::GetMetricsSnapshot() const {
  return metrics_->Snapshot();
}

const Entry* AuthorIndex::GetEntry(EntryId id) const {
  ReaderMutexLock lock(index_mu_);
  return GetEntryUnlocked(id);
}

size_t AuthorIndex::entry_count() const {
  ReaderMutexLock lock(index_mu_);
  return entries_.size();
}

std::vector<EntryId> AuthorIndex::AuthorExact(
    std::string_view folded_group) const {
  ReaderMutexLock lock(index_mu_);
  return AuthorExactUnlocked(folded_group);
}

std::vector<EntryId> AuthorIndex::AuthorPrefix(std::string_view folded_prefix,
                                               size_t max_groups) const {
  ReaderMutexLock lock(index_mu_);
  return AuthorPrefixUnlocked(folded_prefix, max_groups);
}

std::vector<EntryId> AuthorIndex::AuthorFuzzy(std::string_view folded_name,
                                              size_t max_edits) const {
  ReaderMutexLock lock(index_mu_);
  return AuthorFuzzyUnlocked(folded_name, max_edits);
}

std::string_view AuthorIndex::SortKey(EntryId id) const {
  ReaderMutexLock lock(index_mu_);
  return SortKeyUnlocked(id);
}

const Entry* AuthorIndex::GetEntryUnlocked(EntryId id) const {
  return id < entries_.size() ? &entries_[id] : nullptr;
}

std::vector<EntryId> AuthorIndex::AuthorExactUnlocked(
    std::string_view folded_group) const {
  std::vector<EntryId> out;
  auto it = group_by_folded_.find(std::string(folded_group));
  if (it != group_by_folded_.end()) {
    out = groups_[it->second].entries;
  } else {
    // Fall back to surname-only match: "author:minow" should find
    // "Minow, Martha".
    auto surname_it = groups_by_surname_.find(std::string(folded_group));
    if (surname_it != groups_by_surname_.end()) {
      for (size_t group_idx : surname_it->second) {
        const auto& entries = groups_[group_idx].entries;
        out.insert(out.end(), entries.begin(), entries.end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EntryId> AuthorIndex::AuthorPrefixUnlocked(
    std::string_view folded_prefix, size_t max_groups) const {
  std::vector<EntryId> out;
  for (const auto& [key, group_idx] :
       author_trie_.PrefixScan(folded_prefix, max_groups)) {
    const auto& entries = groups_[group_idx].entries;
    out.insert(out.end(), entries.begin(), entries.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EntryId> AuthorIndex::AuthorFuzzyUnlocked(
    std::string_view folded_name, size_t max_edits) const {
  // Phonetic bucket prefilter, then exact bounded edit distance on the
  // folded surname. Also probe the Soundex-distinct-but-close cases by
  // scanning the candidate's own bucket only — a deliberate recall
  // trade-off measured in bench_fuzzy.
  std::vector<EntryId> out;
  std::string code = text::Metaphone(folded_name);
  auto bucket = groups_by_phonetic_.find(code);
  if (bucket != groups_by_phonetic_.end()) {
    for (size_t group_idx : bucket->second) {
      const GroupRecord& group = groups_[group_idx];
      if (text::WithinEditDistance(group.folded_surname, folded_name,
                                   max_edits)) {
        out.insert(out.end(), group.entries.begin(), group.entries.end());
      }
    }
  }
  // Surnames at distance <= max_edits can still land in another bucket;
  // catch the common first-letter-preserved cases via a cheap trie probe
  // on the first character.
  if (!folded_name.empty()) {
    for (const auto& [key, group_idx] :
         author_trie_.PrefixScan(folded_name.substr(0, 1), 100000)) {
      const GroupRecord& group = groups_[group_idx];
      if (text::Metaphone(group.folded_surname) == code) {
        continue;  // Already considered above.
      }
      if (text::WithinEditDistance(group.folded_surname, folded_name,
                                   max_edits)) {
        const auto& entries = group.entries;
        out.insert(out.end(), entries.begin(), entries.end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string_view AuthorIndex::SortKeyUnlocked(EntryId id) const {
  static const std::string kEmpty;
  return id < sort_keys_.size() ? std::string_view(sort_keys_[id])
                                : std::string_view(kEmpty);
}

size_t AuthorIndex::group_count() const {
  ReaderMutexLock lock(index_mu_);
  return groups_.size();
}

std::vector<AuthorIndex::Group> AuthorIndex::GroupsInOrder() const {
  ReaderMutexLock lock(index_mu_);
  // Walk the order B+-tree (collation order) and coalesce consecutive
  // entries of the same group.
  std::vector<Group> out;
  std::string last_folded;
  for (auto it = author_order_.Begin(); it.Valid(); it.Next()) {
    EntryId id = static_cast<EntryId>(it.value());
    const Entry& entry = entries_[id];
    std::string folded = text::NormalizeForIndex(entry.author.GroupKey());
    if (out.empty() || folded != last_folded) {
      Group group;
      group.display = entry.author.GroupKey();
      out.push_back(std::move(group));
      last_folded = std::move(folded);
    }
    out.back().entries.push_back(id);
  }
  // Within a group, order by (volume, page) as the printed index does.
  for (Group& group : out) {
    std::sort(group.entries.begin(), group.entries.end(),
              [&](EntryId a, EntryId b) {
                // Lambda bodies are analyzed standalone; re-state the
                // shared lock held by the enclosing scope.
                index_mu_.AssertReaderHeld();
                const Citation& ca = entries_[a].citation;
                const Citation& cb = entries_[b].citation;
                if (ca.volume != cb.volume) return ca.volume < cb.volume;
                if (ca.page != cb.page) return ca.page < cb.page;
                return a < b;
              });
  }
  return out;
}

std::vector<std::string> AuthorIndex::CoauthorsOf(
    std::string_view folded_group) const {
  ReaderMutexLock lock(index_mu_);
  std::vector<std::string> out;
  auto it = group_by_folded_.find(std::string(folded_group));
  if (it == group_by_folded_.end()) {
    return out;
  }
  for (EntryId id : groups_[it->second].entries) {
    for (const std::string& coauthor : entries_[id].coauthors) {
      out.push_back(coauthor);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status AuthorIndex::Flush() {
  if (engine_ == nullptr) {
    return Status::OK();
  }
  Status status = engine_->Flush();
  // Conservative epoch bump: flush/compaction do not change query
  // results, but treating every storage transition as an invalidation
  // keeps the cache's staleness argument one sentence long.
  data_epoch_.fetch_add(1, std::memory_order_release);
  return status;
}

Status AuthorIndex::CompactStorage() {
  if (engine_ == nullptr) {
    return Status::OK();
  }
  Status status = engine_->Compact();
  data_epoch_.fetch_add(1, std::memory_order_release);
  return status;
}

storage::EngineStats AuthorIndex::StorageStats() const {
  return engine_ != nullptr ? engine_->stats() : storage::EngineStats{};
}

Status AuthorIndex::StorageBackgroundError() const {
  return engine_ != nullptr ? engine_->background_error() : Status::OK();
}

bool AuthorIndex::StorageDegraded() const {
  return engine_ != nullptr && engine_->degraded();
}

Result<storage::IntegrityReport> AuthorIndex::VerifyStorageIntegrity() {
  if (engine_ == nullptr) {
    return storage::IntegrityReport{};  // Nothing on disk: trivially clean.
  }
  return engine_->VerifyIntegrity();
}

}  // namespace authidx::core
