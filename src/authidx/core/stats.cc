#include "authidx/core/stats.h"

#include <algorithm>

#include "authidx/common/strings.h"

namespace authidx::core {

CatalogStats ComputeStats(const AuthorIndex& catalog, size_t top_k) {
  CatalogStats stats;
  stats.entries = catalog.entry_count();
  stats.distinct_authors = catalog.group_count();
  stats.distinct_terms = catalog.title_index().term_count();
  if (stats.entries > 0) {
    stats.avg_title_tokens =
        static_cast<double>(catalog.title_index().total_tokens()) /
        static_cast<double>(stats.entries);
  }
  bool first = true;
  for (size_t i = 0; i < catalog.entry_count(); ++i) {
    const Entry* entry = catalog.GetEntry(static_cast<EntryId>(i));
    const Citation& c = entry->citation;
    if (first) {
      stats.min_volume = stats.max_volume = c.volume;
      stats.min_year = stats.max_year = c.year;
      first = false;
    } else {
      stats.min_volume = std::min(stats.min_volume, c.volume);
      stats.max_volume = std::max(stats.max_volume, c.volume);
      stats.min_year = std::min(stats.min_year, c.year);
      stats.max_year = std::max(stats.max_year, c.year);
    }
    ++stats.volume_histogram[c.volume];
    ++stats.year_histogram[c.year];
    if (entry->author.student_material) {
      ++stats.student_entries;
    }
    if (!entry->coauthors.empty()) {
      ++stats.coauthored_entries;
    }
  }
  std::vector<std::pair<std::string, size_t>> authors;
  for (const AuthorIndex::Group& group : catalog.GroupsInOrder()) {
    authors.emplace_back(group.display, group.entries.size());
  }
  std::sort(authors.begin(), authors.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (authors.size() > top_k) {
    authors.resize(top_k);
  }
  stats.top_authors = std::move(authors);
  return stats;
}

std::string CatalogStats::ToString() const {
  std::string out;
  out += StringPrintf("entries:            %zu\n", entries);
  out += StringPrintf("distinct authors:   %zu\n", distinct_authors);
  out += StringPrintf("student entries:    %zu\n", student_entries);
  out += StringPrintf("coauthored entries: %zu\n", coauthored_entries);
  out += StringPrintf("volumes:            %u..%u\n", min_volume, max_volume);
  out += StringPrintf("years:              %u..%u\n", min_year, max_year);
  out += StringPrintf("distinct terms:     %zu\n", distinct_terms);
  out += StringPrintf("avg title tokens:   %.2f\n", avg_title_tokens);
  if (!top_authors.empty()) {
    out += "top authors:\n";
    for (const auto& [name, count] : top_authors) {
      out += StringPrintf("  %-40s %zu\n", name.c_str(), count);
    }
  }
  return out;
}

namespace {

void AppendHistogramJson(std::string* out,
                         const std::map<uint32_t, size_t>& histogram) {
  *out += '{';
  bool first = true;
  for (const auto& [key, count] : histogram) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += '"';
    *out += std::to_string(key);
    *out += "\":";
    *out += std::to_string(count);
  }
  *out += '}';
}

}  // namespace

std::string CatalogStats::ToJson() const {
  std::string out = "{";
  out += "\"entries\":" + std::to_string(entries);
  out += ",\"distinct_authors\":" + std::to_string(distinct_authors);
  out += ",\"student_entries\":" + std::to_string(student_entries);
  out += ",\"coauthored_entries\":" + std::to_string(coauthored_entries);
  out += ",\"min_volume\":" + std::to_string(min_volume);
  out += ",\"max_volume\":" + std::to_string(max_volume);
  out += ",\"min_year\":" + std::to_string(min_year);
  out += ",\"max_year\":" + std::to_string(max_year);
  out += ",\"distinct_terms\":" + std::to_string(distinct_terms);
  out += ",\"avg_title_tokens\":" + StringPrintf("%.6g", avg_title_tokens);
  out += ",\"volume_histogram\":";
  AppendHistogramJson(&out, volume_histogram);
  out += ",\"year_histogram\":";
  AppendHistogramJson(&out, year_histogram);
  out += ",\"top_authors\":[";
  for (size_t i = 0; i < top_authors.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "{\"name\":" + JsonQuote(top_authors[i].first) +
           ",\"entries\":" + std::to_string(top_authors[i].second) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace authidx::core
