#ifndef AUTHIDX_CORE_RESULT_CACHE_H_
#define AUTHIDX_CORE_RESULT_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/obs/metrics.h"
#include "authidx/query/executor.h"

namespace authidx::core {

/// Sharded, byte-capacity-bounded LRU cache of whole query results,
/// keyed by the canonical query rendering (query::Query::ToString(),
/// which includes offset/limit) and stamped with the catalog's data
/// epoch at insert time. A probe only hits when the stamped epoch still
/// equals the catalog's current epoch — any ingest, flush, compaction,
/// or replication apply bumps the epoch, so every cached result is
/// invalidated wholesale and a stale hit is impossible by construction
/// (stale entries are erased lazily on probe or via LRU pressure).
///
/// Thread-safe: 8 shards, each behind its own mutex, keep the probe
/// path short and uncontended next to query execution.
class ResultCache {
 public:
  /// Instruments (registry-owned, any may be null). See
  /// docs/OBSERVABILITY.md for the metric names bound to these.
  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* invalidations = nullptr;
    obs::Gauge* bytes = nullptr;
  };

  /// Cache bounded to ~`capacity_bytes` of charged entry weight.
  explicit ResultCache(size_t capacity_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Binds metric instruments; call before the cache is shared.
  void BindMetrics(const Instruments& instruments);

  /// Returns the cached result for `key` if present and stamped with
  /// `epoch`; erases (and counts an invalidation for) entries stamped
  /// with any older epoch.
  std::optional<query::QueryResult> Probe(std::string_view key,
                                          uint64_t epoch);

  /// Caches `result` under `key` stamped with `epoch`, evicting LRU
  /// entries to stay within capacity. An entry too large for its shard
  /// is not cached at all.
  void Insert(std::string_view key, uint64_t epoch,
              const query::QueryResult& result);

  /// Configured capacity in bytes.
  size_t capacity_bytes() const { return capacity_; }

  /// Sum of charged bytes across shards (approximate under concurrency).
  size_t bytes_used() const;

  /// Live entries across shards (approximate under concurrency).
  size_t entry_count() const;

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    size_t charge = 0;
    query::QueryResult result;
  };

  static constexpr size_t kShards = 8;

  struct Shard {
    mutable Mutex mu;
    // Front = most recently used. Keys in map view into the list
    // entries, whose addresses are stable.
    std::list<Entry> lru AUTHIDX_GUARDED_BY(mu);
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map
        AUTHIDX_GUARDED_BY(mu);
    size_t bytes AUTHIDX_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(std::string_view key);

  // Approximate charged weight of one entry: key + hits payload + fixed
  // bookkeeping overhead.
  static size_t ChargeOf(std::string_view key,
                         const query::QueryResult& result);

  // Unlinks `it` from `shard` and updates the bytes gauge.
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it)
      AUTHIDX_REQUIRES(shard.mu);

  const size_t capacity_;
  const size_t shard_capacity_;
  std::array<Shard, kShards> shards_;
  Instruments instruments_;
};

}  // namespace authidx::core

#endif  // AUTHIDX_CORE_RESULT_CACHE_H_
