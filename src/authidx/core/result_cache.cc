#include "authidx/core/result_cache.h"

#include <algorithm>
#include <utility>

#include "authidx/common/hash.h"

namespace authidx::core {

ResultCache::ResultCache(size_t capacity_bytes)
    : capacity_(capacity_bytes),
      shard_capacity_(std::max<size_t>(1, capacity_bytes / kShards)) {}

void ResultCache::BindMetrics(const Instruments& instruments) {
  instruments_ = instruments;
}

ResultCache::Shard& ResultCache::ShardFor(std::string_view key) {
  return shards_[Fnv1a64(key) % kShards];
}

size_t ResultCache::ChargeOf(std::string_view key,
                             const query::QueryResult& result) {
  // Entry + list node + map slot bookkeeping, flat-rated.
  constexpr size_t kOverhead = 128;
  return key.size() + result.hits.size() * sizeof(query::Hit) + kOverhead;
}

void ResultCache::EraseLocked(Shard& shard,
                              std::list<Entry>::iterator it) {
  shard.bytes -= it->charge;
  if (instruments_.bytes != nullptr) {
    instruments_.bytes->Add(-static_cast<int64_t>(it->charge));
  }
  shard.map.erase(std::string_view(it->key));
  shard.lru.erase(it);
}

std::optional<query::QueryResult> ResultCache::Probe(std::string_view key,
                                                     uint64_t epoch) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto found = shard.map.find(key);
  if (found == shard.map.end()) {
    if (instruments_.misses != nullptr) {
      instruments_.misses->Inc();
    }
    return std::nullopt;
  }
  auto it = found->second;
  if (it->epoch != epoch) {
    // Data changed since this result was computed: the entry can never
    // hit again (epochs only grow), so reclaim it now.
    EraseLocked(shard, it);
    if (instruments_.invalidations != nullptr) {
      instruments_.invalidations->Inc();
    }
    if (instruments_.misses != nullptr) {
      instruments_.misses->Inc();
    }
    return std::nullopt;
  }
  // Refresh LRU position.
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  if (instruments_.hits != nullptr) {
    instruments_.hits->Inc();
  }
  return it->result;
}

void ResultCache::Insert(std::string_view key, uint64_t epoch,
                         const query::QueryResult& result) {
  const size_t charge = ChargeOf(key, result);
  if (charge > shard_capacity_) {
    return;  // Would immediately evict itself (and everything else).
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto found = shard.map.find(key);
  if (found != shard.map.end()) {
    // Re-insert under a racing key: replace the stored result (the
    // newest epoch wins; with equal epochs the results are identical).
    EraseLocked(shard, found->second);
  }
  shard.lru.push_front(Entry{std::string(key), epoch, charge, result});
  shard.map.emplace(std::string_view(shard.lru.front().key),
                    shard.lru.begin());
  shard.bytes += charge;
  if (instruments_.bytes != nullptr) {
    instruments_.bytes->Add(static_cast<int64_t>(charge));
  }
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    if (instruments_.evictions != nullptr) {
      instruments_.evictions->Inc();
    }
  }
}

size_t ResultCache::bytes_used() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

size_t ResultCache::entry_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace authidx::core
