#ifndef AUTHIDX_CORE_STATS_H_
#define AUTHIDX_CORE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "authidx/core/author_index.h"

namespace authidx::core {

/// Descriptive statistics of a catalog, the numbers an editor checks
/// before printing a cumulative index.
struct CatalogStats {
  size_t entries = 0;
  size_t distinct_authors = 0;
  size_t student_entries = 0;
  size_t coauthored_entries = 0;
  uint32_t min_volume = 0;
  uint32_t max_volume = 0;
  uint32_t min_year = 0;
  uint32_t max_year = 0;
  /// Entries per volume.
  std::map<uint32_t, size_t> volume_histogram;
  /// Entries per publication year.
  std::map<uint32_t, size_t> year_histogram;
  /// Most prolific authors: (display name, entry count), descending.
  std::vector<std::pair<std::string, size_t>> top_authors;
  /// Distinct analyzed title terms.
  size_t distinct_terms = 0;
  double avg_title_tokens = 0.0;

  /// Human-readable multi-line report.
  std::string ToString() const;

  /// Single JSON object with the same numbers (scalar fields, the two
  /// histograms as {"<key>": count} objects, top_authors as an array of
  /// {"name", "entries"}). Stable field order; reused by /varz.
  std::string ToJson() const;
};

/// Computes statistics over `catalog` (top_k bounds top_authors).
CatalogStats ComputeStats(const AuthorIndex& catalog, size_t top_k = 10);

}  // namespace authidx::core

#endif  // AUTHIDX_CORE_STATS_H_
