#ifndef AUTHIDX_CORE_AUTHOR_INDEX_H_
#define AUTHIDX_CORE_AUTHOR_INDEX_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/result.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/index/btree.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"
#include "authidx/obs/slowlog.h"
#include "authidx/obs/trace.h"
#include "authidx/index/inverted.h"
#include "authidx/index/trie.h"
#include "authidx/core/result_cache.h"
#include "authidx/model/record.h"
#include "authidx/query/executor.h"
#include "authidx/query/parser.h"
#include "authidx/storage/engine.h"

namespace authidx::core {

/// The author-index engine: ingest bibliographic entries, keep every
/// index coherent, answer structured queries, and expose the groups in
/// printed (collation) order for the typesetter.
///
/// Two modes:
///  * in-memory (`Create`) — indexes only;
///  * persistent (`OpenPersistent`) — entries additionally go through
///    the LSM storage engine; reopening the same directory recovers the
///    full catalog (including from a WAL after a crash) and rebuilds the
///    in-memory indexes.
///
/// Thread safety: Add/AddAll take the catalog lock exclusively; every
/// query entry point (Search/SearchTraced/Run/RunTraced) holds it
/// shared across the whole plan+execute pass (the executor's catalog
/// callbacks go through an internal pre-locked view, so they are not
/// re-locked per call), and the group accessors
/// (GroupsInOrder/group_count/CoauthorsOf) plus the public CatalogView
/// overrides (GetEntry, AuthorExact, ...) each take it shared
/// themselves — so any number of queries and point accessors run in
/// parallel with each other and with the storage engine's background
/// work. Entry storage is append-only (deque), so `GetEntry` pointers
/// and `SortKey` views stay valid across later ingests and may be used
/// after the accessor returns. Exception: `title_index()` hands out a
/// reference into live index state — walking it concurrently with
/// ingest requires external synchronization (queries go through the
/// locked executor path and are safe).
///
/// The protocol is machine-checked: every index member is
/// AUTHIDX_GUARDED_BY(index_mu_) and the internal helpers carry
/// REQUIRES annotations, so Clang Thread Safety Analysis rejects any
/// unlocked access at compile time (see docs/TOOLING.md).
class AuthorIndex final : public query::CatalogView {
 public:
  /// In-memory catalog.
  static std::unique_ptr<AuthorIndex> Create();

  /// Storage-backed catalog in `dir`; recovers existing contents.
  static Result<std::unique_ptr<AuthorIndex>> OpenPersistent(
      const std::string& dir, storage::EngineOptions options = {});

  /// Storage-backed *replication follower* in `dir`: the engine opens
  /// apply-only (direct Add/AddAll fail with FailedPrecondition) with
  /// synced writes forced on, and the only ingest path is
  /// ApplyReplicatedRecord. Reopening recovers exactly like
  /// OpenPersistent — the follower's own WAL makes it crash-consistent
  /// independently of the primary.
  static Result<std::unique_ptr<AuthorIndex>> OpenReplica(
      const std::string& dir, storage::EngineOptions options = {});

  ~AuthorIndex() override;

  AuthorIndex(const AuthorIndex&) = delete;
  AuthorIndex& operator=(const AuthorIndex&) = delete;

  /// Validates and ingests one entry, updating every index. Returns the
  /// assigned dense id.
  Result<EntryId> Add(Entry entry);

  /// Bulk ingest; stops at the first invalid entry.
  Status AddAll(std::vector<Entry> entries);

  /// Parses and runs a query string (see query::ParseQuery grammar).
  Result<query::QueryResult> Search(std::string_view query_text) const;

  /// Search() plus per-request tracing: parse/execute/stage spans are
  /// appended to `trace` (caller-owned; may be null for plain Search
  /// behaviour). The trace buffer is single-threaded.
  Result<query::QueryResult> SearchTraced(std::string_view query_text,
                                          obs::Trace* trace) const;

  /// Runs an already-parsed query.
  Result<query::QueryResult> Run(const query::Query& query) const;

  /// Run() with per-request tracing into `trace` (may be null).
  Result<query::QueryResult> RunTraced(const query::Query& query,
                                       obs::Trace* trace) const;

  /// Point-in-time view of every metric this catalog records: query
  /// counters and stage latencies, plus — for persistent catalogs — the
  /// storage engine's WAL/flush/compaction/cache/Bloom instruments (see
  /// docs/OBSERVABILITY.md for the full name table). Thread-safe.
  obs::MetricsSnapshot GetMetricsSnapshot() const;

  /// The registry behind GetMetricsSnapshot(); outlives the engine.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Non-const registry access so embedders (the network server, the
  /// CLI's HTTP endpoint) can register their own instruments alongside
  /// the engine's, keeping one /metrics page per process. The registry
  /// synchronizes itself; returned instruments are valid for the
  /// catalog's lifetime.
  obs::MetricsRegistry* mutable_metrics() { return metrics_.get(); }

  /// Arms the slow-query log: any Search/SearchTraced/Run slower than
  /// `threshold_ns` is captured into the ring buffer with its query
  /// text, chosen plan, and full span tree (a trace is created
  /// opportunistically when the caller brought none). 0 — the default —
  /// disarms it and keeps the query path allocation-free. Thread-safe.
  void SetSlowQueryThreshold(uint64_t threshold_ns);

  /// Current slow-query threshold in ns (0 = disarmed).
  uint64_t slow_query_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the captured slow queries, oldest first.
  std::vector<obs::SlowQueryEntry> SlowQueries() const;

  /// The ring buffer behind SlowQueries() (thread-safe).
  const obs::SlowQueryLog& slow_query_log() const { return *slowlog_; }

  /// Routes catalog-level events (slow queries) to `logger`, which must
  /// outlive this index. Persistent catalogs inherit the engine logger
  /// from EngineOptions automatically; this override is for in-memory
  /// catalogs or tests. Not thread-safe: call during setup.
  void SetLogger(obs::Logger* logger);

  /// Arms the epoch-invalidated query-result cache (capacity in bytes;
  /// 0 disarms). Once armed, Search/SearchTraced/Run/RunTraced probe
  /// the cache before planning and insert successful results after.
  /// Entries are stamped with the data epoch (below), so any ingest,
  /// flush, compaction, or replication apply invalidates every cached
  /// result — a stale hit is impossible on primaries and followers
  /// alike. Registers the cache's instruments in the catalog registry.
  /// Not thread-safe: call during setup, before queries run.
  void EnableResultCache(size_t capacity_bytes);

  /// The armed result cache, or null. For tests and diagnostics.
  const ResultCache* result_cache() const { return result_cache_.get(); }

  /// Monotonic counter bumped by every mutation that can change query
  /// results (Add, AddAll, ApplyReplicatedRecord, Flush, Compact).
  /// Cached results stamped with an older epoch never hit.
  uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }

  // --- CatalogView ---
  const Entry* GetEntry(EntryId id) const override;
  size_t entry_count() const override;
  // Analysis waiver: hands out a reference into guarded index state
  // without holding index_mu_ past the return — the documented contract
  // (class comment above) makes the caller responsible for external
  // synchronization. Tracked in docs/ROBUSTNESS.md.
  AUTHIDX_NO_THREAD_SAFETY_ANALYSIS
  const InvertedIndex& title_index() const override { return inverted_; }
  std::vector<EntryId> AuthorExact(
      std::string_view folded_group) const override;
  std::vector<EntryId> AuthorPrefix(std::string_view folded_prefix,
                                    size_t max_groups) const override;
  std::vector<EntryId> AuthorFuzzy(std::string_view folded_name,
                                   size_t max_edits) const override;
  std::string_view SortKey(EntryId id) const override;

  /// One author group (a distinct person) and their entries.
  struct Group {
    std::string display;  // "Surname, Given[, Suffix]" as first seen.
    std::vector<EntryId> entries;
  };

  /// All groups in collation order with entries in (volume, page) order —
  /// exactly the order of the printed author index.
  std::vector<Group> GroupsInOrder() const;

  /// Number of distinct author groups. Thread-safe.
  size_t group_count() const;

  /// Authors who co-published with the given folded group key, as
  /// display names (cross-reference support).
  std::vector<std::string> CoauthorsOf(std::string_view folded_group) const;

  /// Applies one primary-originated WAL record (as shipped by a
  /// storage::ReplicationSource) to a follower catalog: the record goes
  /// through the engine's own WAL and every new entry it carries is
  /// indexed. Idempotent — entry ids are dense and assigned in WAL
  /// order, so a record whose entries the catalog already holds is
  /// recognized as a duplicate delivery and skipped whole (records are
  /// atomic: they are re-delivered entirely or not at all).
  Status ApplyReplicatedRecord(std::string_view record);

  /// True for catalogs opened with OpenReplica.
  bool is_replica() const { return is_replica_; }

  /// The backing engine (null for in-memory catalogs). For replication
  /// plumbing — feeding a ReplicationSource on the primary, reading
  /// committed positions on either side.
  storage::StorageEngine* storage_engine() { return engine_.get(); }

  /// Persists pending writes (no-op for in-memory catalogs).
  Status Flush();

  /// Forces a storage compaction (no-op for in-memory catalogs).
  Status CompactStorage();

  /// Underlying storage stats (empty struct for in-memory catalogs).
  storage::EngineStats StorageStats() const;

  /// The storage engine's sticky background error (OK for healthy or
  /// in-memory catalogs). See docs/ROBUSTNESS.md.
  Status StorageBackgroundError() const;

  /// True once the storage engine is degraded: writes fail fast, reads
  /// serve the durable state. Always false for in-memory catalogs.
  bool StorageDegraded() const;

  /// Full-store integrity scan: re-reads and CRC-verifies every table
  /// block plus the manifest (trivially clean for in-memory catalogs).
  Result<storage::IntegrityReport> VerifyStorageIntegrity();

 private:
  struct GroupRecord {
    std::string folded;         // Normalized group key (lookup key).
    std::string display;        // As first ingested.
    std::string folded_surname; // For fuzzy matching.
    std::vector<EntryId> entries;
  };

  AuthorIndex();

  /// Index-maintenance shared by Add and recovery (no storage write).
  EntryId IndexEntry(Entry entry) AUTHIDX_REQUIRES(index_mu_);

  /// SearchTraced body without the slow-query envelope.
  Result<query::QueryResult> SearchInternal(std::string_view query_text,
                                            obs::Trace* trace) const;

  /// RunTraced body below the result cache: takes the shared lock and
  /// executes for real.
  Result<query::QueryResult> RunUncached(const query::Query& query,
                                         obs::Trace* trace) const;

  /// Captures one over-threshold query into the ring + logger.
  void RecordSlowQuery(std::string_view query_text, uint64_t duration_ns,
                       const obs::Trace& trace,
                       const Result<query::QueryResult>& result) const;

  /// CatalogView adapter that forwards to the *Unlocked impls; the
  /// query entry points hand it to the executor while already holding
  /// index_mu_ shared, so callbacks don't re-lock (recursive
  /// shared_mutex acquisition is undefined behavior).
  class RawView;

  // Lock-free bodies of the CatalogView callbacks; caller must hold
  // index_mu_ (shared suffices — they only read).
  const Entry* GetEntryUnlocked(EntryId id) const
      AUTHIDX_REQUIRES_SHARED(index_mu_);
  std::vector<EntryId> AuthorExactUnlocked(std::string_view folded_group)
      const AUTHIDX_REQUIRES_SHARED(index_mu_);
  std::vector<EntryId> AuthorPrefixUnlocked(std::string_view folded_prefix,
                                            size_t max_groups) const
      AUTHIDX_REQUIRES_SHARED(index_mu_);
  std::vector<EntryId> AuthorFuzzyUnlocked(std::string_view folded_name,
                                           size_t max_edits) const
      AUTHIDX_REQUIRES_SHARED(index_mu_);
  std::string_view SortKeyUnlocked(EntryId id) const
      AUTHIDX_REQUIRES_SHARED(index_mu_);

  /// Guards the in-memory indexes (entries_, groups_, trie, B+-tree,
  /// inverted index). Exclusive for ingest, shared for query execution.
  /// The storage engine synchronizes itself; its Put/Apply happen inside
  /// the exclusive section so entry ids and durable keys stay aligned.
  mutable SharedMutex index_mu_;

  // Deques, not vectors: appends never move existing elements, so Entry
  // pointers and sort-key views handed out earlier survive later Adds.
  std::deque<Entry> entries_ AUTHIDX_GUARDED_BY(index_mu_);
  // Parallel to entries_.
  std::deque<std::string> sort_keys_ AUTHIDX_GUARDED_BY(index_mu_);

  std::vector<GroupRecord> groups_ AUTHIDX_GUARDED_BY(index_mu_);
  std::unordered_map<std::string, size_t> group_by_folded_
      AUTHIDX_GUARDED_BY(index_mu_);
  std::unordered_map<std::string, std::vector<size_t>> groups_by_surname_
      AUTHIDX_GUARDED_BY(index_mu_);
  std::unordered_map<std::string, std::vector<size_t>> groups_by_phonetic_
      AUTHIDX_GUARDED_BY(index_mu_);

  // sortkey + id -> id (printed order).
  BPlusTree author_order_ AUTHIDX_GUARDED_BY(index_mu_);
  // Folded group key -> group index.
  Trie author_trie_ AUTHIDX_GUARDED_BY(index_mu_);
  // Analyzed titles.
  InvertedIndex inverted_ AUTHIDX_GUARDED_BY(index_mu_);

  // Declared before engine_: the engine records into this registry, so
  // it must be destroyed after the engine.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  query::ExecObs exec_obs_;  // Pre-registered executor instruments.
  obs::Counter* queries_total_ = nullptr;
  obs::LatencyHistogram* query_ns_ = nullptr;
  obs::Counter* slow_queries_total_ = nullptr;

  std::unique_ptr<obs::SlowQueryLog> slowlog_;
  std::atomic<uint64_t> slow_threshold_ns_{0};
  obs::Logger* log_;  // Never null (Logger::Disabled() by default).

  // Bumped (release order) inside every exclusive mutation section;
  // read (acquire) by the query path before execution, so a cache entry
  // stamped with a stale epoch can never be fresh-marked.
  std::atomic<uint64_t> data_epoch_{0};
  // Null until EnableResultCache; set during setup only (the cache
  // itself is internally synchronized).
  std::unique_ptr<ResultCache> result_cache_;

  std::unique_ptr<storage::StorageEngine> engine_;  // Null if in-memory.
  bool is_replica_ = false;  // Set once by OpenReplica before sharing.
};

}  // namespace authidx::core

#endif  // AUTHIDX_CORE_AUTHOR_INDEX_H_
