#ifndef AUTHIDX_INDEX_BTREE_H_
#define AUTHIDX_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/obs/metrics.h"

namespace authidx {

/// In-memory B+-tree mapping byte-string keys to uint64 values, with
/// linked leaves for ordered range scans. This is the ordered author
/// index: keys are collation sort keys (see text::MakeSortKey), so leaf
/// order equals printed-index order.
///
/// Keys are unique; Insert overwrites. Multi-valued mappings are built by
/// key composition (e.g. sort_key + '\0' + entry_id), the usual embedded-
/// index pattern.
///
/// Not thread-safe; external synchronization required for writers.
class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool Insert(std::string_view key, uint64_t value);

  /// Point lookup.
  std::optional<uint64_t> Get(std::string_view key) const;

  /// Removes `key`; returns true if it was present. Uses lazy deletion
  /// (leaf shrink without rebalancing), which keeps the structure valid;
  /// occupancy is restored on the next bulk rebuild.
  bool Erase(std::string_view key);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = just a leaf root).
  int height() const { return height_; }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    /// True if positioned on a valid pair.
    bool Valid() const;
    std::string_view key() const;
    uint64_t value() const;
    /// Advances to the next pair in key order.
    void Next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  /// Iterator at the first key >= `key`.
  Iterator Seek(std::string_view key) const;

  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Collects up to `limit` (key, value) pairs with the given prefix.
  std::vector<std::pair<std::string, uint64_t>> PrefixScan(
      std::string_view prefix, size_t limit) const;

  /// Verifies structural invariants (sortedness, fanout bounds, child
  /// separation, leaf-chain consistency); used by tests. Returns false
  /// and fills `*why` on violation.
  bool CheckInvariants(std::string* why) const;

  /// Points the tree at a registry counter (may be null) counting node
  /// visits ("page reads") during root-to-leaf descents. See
  /// docs/OBSERVABILITY.md.
  void BindMetrics(obs::Counter* page_reads);

 private:
  struct Node;
  struct InternalNode;
  struct LeafNode;

  LeafNode* FindLeaf(std::string_view key) const;
  void SplitChild(InternalNode* parent, size_t child_idx);
  bool InsertNonFull(Node* node, std::string_view key, uint64_t value);

  Node* root_;
  LeafNode* first_leaf_;
  size_t size_ = 0;
  int height_ = 1;
  obs::Counter* page_reads_ = nullptr;
};

}  // namespace authidx

#endif  // AUTHIDX_INDEX_BTREE_H_
