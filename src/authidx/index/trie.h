#ifndef AUTHIDX_INDEX_TRIE_H_
#define AUTHIDX_INDEX_TRIE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/arena.h"
#include "authidx/obs/metrics.h"

namespace authidx {

/// Byte-wise trie mapping keys to uint64 payloads, specialized for the
/// autocomplete path ("authors starting with 'mc'"). Nodes live in an
/// arena; children are kept as sorted small arrays for cache-friendly
/// binary search. Keys are unique; Insert overwrites.
class Trie {
 public:
  Trie();

  Trie(const Trie&) = delete;
  Trie& operator=(const Trie&) = delete;

  /// Inserts or overwrites `key` -> `value`.
  void Insert(std::string_view key, uint64_t value);

  /// Point lookup; false if absent.
  bool Get(std::string_view key, uint64_t* value) const;

  /// Appends up to `limit` (key, value) pairs whose key starts with
  /// `prefix`, in lexicographic key order.
  std::vector<std::pair<std::string, uint64_t>> PrefixScan(
      std::string_view prefix, size_t limit) const;

  /// Number of keys with the given prefix (full subtree count; O(subtree)).
  size_t CountPrefix(std::string_view prefix) const;

  size_t size() const { return size_; }
  size_t node_count() const { return node_count_; }
  size_t MemoryUsage() const { return arena_.MemoryUsage(); }

  /// Points the trie at registry instruments (either may be null):
  /// `nodes` tracks node_count(), `prefix_scan_ns` records PrefixScan
  /// latency. See docs/OBSERVABILITY.md.
  void BindMetrics(obs::Gauge* nodes, obs::LatencyHistogram* prefix_scan_ns);

 private:
  struct Node;

  Node* NewNode();
  const Node* Descend(std::string_view prefix) const;
  void Collect(const Node* node, std::string* scratch,
               std::vector<std::pair<std::string, uint64_t>>* out,
               size_t limit) const;

  Arena arena_;
  Node* root_;
  size_t size_ = 0;
  size_t node_count_ = 0;
  obs::Gauge* nodes_gauge_ = nullptr;
  obs::LatencyHistogram* prefix_scan_ns_ = nullptr;
};

}  // namespace authidx

#endif  // AUTHIDX_INDEX_TRIE_H_
