#ifndef AUTHIDX_INDEX_POSTINGS_H_
#define AUTHIDX_INDEX_POSTINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// One posting: a document (entry) plus the term's frequency in it.
struct Posting {
  EntryId doc = 0;
  uint32_t freq = 1;

  friend bool operator==(const Posting&, const Posting&) = default;
};

/// Delta-varint encodes a doc-sorted postings list: (gap, freq) pairs
/// where gap is the difference from the previous doc id (first is
/// absolute). Requires strictly increasing doc ids.
std::string EncodePostings(const std::vector<Posting>& postings);

/// Inverse of EncodePostings.
Result<std::vector<Posting>> DecodePostings(std::string_view data);

/// Postings per skip block in the block-max format (and in
/// InvertedIndex's in-memory block metadata). 32 keeps a skip entry per
/// ~64+ payload bytes while letting top-k pruning skip whole blocks.
inline constexpr uint32_t kPostingsBlockSize = 32;

/// Skip-table entry for one block of the block-max postings format:
/// enough metadata to (a) skip the block during WAND-style top-k
/// pruning (last_doc + max_freq bound its best possible BM25 impact)
/// and (b) decode it independently of its predecessors.
struct PostingsBlock {
  /// Postings in the block (== kPostingsBlockSize except the last).
  uint32_t count = 0;
  /// Largest (last) doc id in the block.
  EntryId last_doc = 0;
  /// Largest term frequency in the block (BM25 impact upper bound).
  uint32_t max_freq = 0;
  /// Payload byte length of the block's (gap, freq) varint run.
  uint32_t bytes = 0;

  friend bool operator==(const PostingsBlock&, const PostingsBlock&) = default;
};

/// Block-max encoding: a skip table followed by the same delta-varint
/// (gap, freq) payload EncodePostings produces, split into blocks of
/// kPostingsBlockSize postings. Each block's first gap is relative to
/// the previous block's last_doc (block 0's first doc is absolute), so
/// any block can be decoded from the skip table alone. Layout:
///
///   varint32 total_count
///   varint32 block_count
///   block_count x (varint32 count, varint32 last_doc_gap,
///                  varint32 max_freq, varint32 bytes)
///   concatenated block payloads
///
/// last_doc_gap is the delta from the previous block's last_doc (first
/// is absolute), keeping the skip table itself compressed.
std::string EncodeBlockMaxPostings(const std::vector<Posting>& postings);

/// Decodes a full block-max postings list, validating the skip table
/// against the payload (counts, last docs, max freqs, byte lengths must
/// all agree; anything else is Corruption, never a crash or an
/// attacker-sized allocation).
Result<std::vector<Posting>> DecodeBlockMaxPostings(std::string_view data);

/// Random-access view over an encoded block-max postings list: the skip
/// table is decoded eagerly (and validated structurally), block
/// payloads only on demand — the access pattern top-k pruning needs.
/// Holds views into `data`, which must outlive the reader.
class BlockMaxReader {
 public:
  /// Parses and validates the header + skip table of `data`.
  static Result<BlockMaxReader> Open(std::string_view data);

  /// Total postings across all blocks.
  uint32_t total_count() const { return total_count_; }

  /// Number of blocks.
  size_t block_count() const { return blocks_.size(); }

  /// Skip-table entry for block `b` (b < block_count()).
  const PostingsBlock& block(size_t b) const { return blocks_[b]; }

  /// Decodes block `b` into `*out` (replacing its contents), verifying
  /// the payload against the skip entry.
  Status DecodeBlock(size_t b, std::vector<Posting>* out) const;

 private:
  BlockMaxReader() = default;

  uint32_t total_count_ = 0;
  std::vector<PostingsBlock> blocks_;
  // Byte offset of each block's payload within payload_.
  std::vector<size_t> offsets_;
  std::string_view payload_;
};

// Set algebra over doc-sorted id vectors. These operate on plain id
// vectors (frequencies are carried separately by the ranker).

/// Linear merge intersection; O(|a| + |b|).
std::vector<EntryId> IntersectLinear(const std::vector<EntryId>& a,
                                     const std::vector<EntryId>& b);

/// Galloping (exponential-probe) intersection; O(|small| log |large|),
/// the right choice when the lists differ greatly in length.
std::vector<EntryId> IntersectGalloping(const std::vector<EntryId>& a,
                                        const std::vector<EntryId>& b);

/// Adaptive: picks linear vs galloping by length ratio.
std::vector<EntryId> Intersect(const std::vector<EntryId>& a,
                               const std::vector<EntryId>& b);

/// Sorted union.
std::vector<EntryId> Union(const std::vector<EntryId>& a,
                           const std::vector<EntryId>& b);

/// Sorted difference a \ b.
std::vector<EntryId> Difference(const std::vector<EntryId>& a,
                                const std::vector<EntryId>& b);

}  // namespace authidx

#endif  // AUTHIDX_INDEX_POSTINGS_H_
