#ifndef AUTHIDX_INDEX_POSTINGS_H_
#define AUTHIDX_INDEX_POSTINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// One posting: a document (entry) plus the term's frequency in it.
struct Posting {
  EntryId doc = 0;
  uint32_t freq = 1;

  friend bool operator==(const Posting&, const Posting&) = default;
};

/// Delta-varint encodes a doc-sorted postings list: (gap, freq) pairs
/// where gap is the difference from the previous doc id (first is
/// absolute). Requires strictly increasing doc ids.
std::string EncodePostings(const std::vector<Posting>& postings);

/// Inverse of EncodePostings.
Result<std::vector<Posting>> DecodePostings(std::string_view data);

// Set algebra over doc-sorted id vectors. These operate on plain id
// vectors (frequencies are carried separately by the ranker).

/// Linear merge intersection; O(|a| + |b|).
std::vector<EntryId> IntersectLinear(const std::vector<EntryId>& a,
                                     const std::vector<EntryId>& b);

/// Galloping (exponential-probe) intersection; O(|small| log |large|),
/// the right choice when the lists differ greatly in length.
std::vector<EntryId> IntersectGalloping(const std::vector<EntryId>& a,
                                        const std::vector<EntryId>& b);

/// Adaptive: picks linear vs galloping by length ratio.
std::vector<EntryId> Intersect(const std::vector<EntryId>& a,
                               const std::vector<EntryId>& b);

/// Sorted union.
std::vector<EntryId> Union(const std::vector<EntryId>& a,
                           const std::vector<EntryId>& b);

/// Sorted difference a \ b.
std::vector<EntryId> Difference(const std::vector<EntryId>& a,
                                const std::vector<EntryId>& b);

}  // namespace authidx

#endif  // AUTHIDX_INDEX_POSTINGS_H_
