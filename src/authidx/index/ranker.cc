#include "authidx/index/ranker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

namespace authidx {

double Bm25Idf(double n, double df) {
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double Bm25Contribution(double idf, double tf, double doc_len, double avg_len,
                        const Bm25Params& params) {
  const double norm =
      params.k1 * (1.0 - params.b + params.b * doc_len / avg_len);
  return idf * (tf * (params.k1 + 1.0)) / (tf + norm);
}

double Bm25ImpactBound(double idf, double max_freq, double min_doc_len,
                       double avg_len, const Bm25Params& params) {
  const double norm =
      params.k1 * (1.0 - params.b + params.b * min_doc_len / avg_len);
  // Numerator at tf = max_freq, denominator at tf = 1 (the smallest
  // frequency a posting can carry): each factor bounds its side
  // monotonically, so the quotient bounds every real contribution even
  // after IEEE rounding. See the header comment.
  return idf * (max_freq * (params.k1 + 1.0)) / (1.0 + norm);
}

std::vector<ScoredDoc> RankBm25(const InvertedIndex& index,
                                const std::vector<std::string>& terms,
                                size_t k, const Bm25Params& params) {
  if (k == 0 || index.doc_count() == 0) {
    return {};
  }
  const double n = static_cast<double>(index.doc_count());
  const double avg_len =
      static_cast<double>(index.total_tokens()) / std::max(1.0, n);

  std::unordered_map<EntryId, double> scores;
  for (const std::string& term : terms) {
    std::vector<Posting> postings = index.GetPostings(term);
    if (postings.empty()) {
      continue;
    }
    const double df = static_cast<double>(postings.size());
    const double idf = Bm25Idf(n, df);
    for (const Posting& p : postings) {
      const double tf = static_cast<double>(p.freq);
      const double doc_len = static_cast<double>(index.DocLength(p.doc));
      scores[p.doc] += Bm25Contribution(idf, tf, doc_len, avg_len, params);
    }
  }

  std::vector<ScoredDoc> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    ranked.push_back(ScoredDoc{doc, score});
  }
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc < b.doc;
  };
  if (ranked.size() > k) {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), better);
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }
  return ranked;
}

std::vector<ScoredDoc> RankBm25TopKConjunctive(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    size_t k, const Bm25Params& params, TopKStats* stats) {
  TopKStats local;
  TopKStats& st = stats != nullptr ? *stats : local;
  st = TopKStats{};
  if (k == 0 || terms.empty() || index.doc_count() == 0) {
    return {};
  }
  const double n = static_cast<double>(index.doc_count());
  const double avg_len =
      static_cast<double>(index.total_tokens()) / std::max(1.0, n);
  const double min_len = static_cast<double>(index.min_doc_tokens());

  const size_t m = terms.size();
  std::vector<InvertedIndex::Cursor> cursors;
  cursors.reserve(m);
  std::vector<double> idf(m);
  for (size_t i = 0; i < m; ++i) {
    cursors.push_back(index.OpenCursor(terms[i]));
    if (cursors.back().empty()) {
      return {};  // Conjunctive: an unknown term empties the result.
    }
    idf[i] = Bm25Idf(n, static_cast<double>(cursors[i].doc_freq()));
  }
  // List-level bound, folded in term order — the same left-to-right
  // fold the scorer uses, so FP monotonicity carries through the sum.
  double full_bound = 0.0;
  for (size_t i = 0; i < m; ++i) {
    full_bound += Bm25ImpactBound(idf[i],
                                  static_cast<double>(cursors[i].max_freq()),
                                  min_len, avg_len, params);
  }
  // Alignment probes run rarest-list-first so mismatches are discovered
  // after decoding as little as possible.
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (cursors[a].doc_freq() != cursors[b].doc_freq()) {
      return cursors[a].doc_freq() < cursors[b].doc_freq();
    }
    return a < b;
  });

  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc < b.doc;
  };
  // Min-heap of the best k so far: `better` as the heap comparator
  // makes heap.front() the *worst* kept doc — the pruning threshold.
  std::vector<ScoredDoc> heap;
  heap.reserve(k);

  constexpr EntryId kMaxDoc = std::numeric_limits<EntryId>::max();
  EntryId target = 0;
  bool exhausted = false;
  while (!exhausted) {
    // Phase 1: shallow-align every cursor's block window to `target`
    // using only skip metadata.
    for (size_t i = 0; i < m; ++i) {
      if (!cursors[i].ShallowSeek(target)) {
        exhausted = true;
        break;
      }
    }
    if (exhausted) {
      break;
    }
    if (heap.size() == k) {
      const double theta = heap.front().score;
      // Docs processed from here on have larger ids than everything in
      // the heap, so they must score strictly above theta to enter:
      // a bound <= theta proves the whole range hopeless.
      if (full_bound <= theta) {
        st.pruned = true;
        break;
      }
      double block_bound = 0.0;
      for (size_t i = 0; i < m; ++i) {
        block_bound += Bm25ImpactBound(
            idf[i], static_cast<double>(cursors[i].current_block_max_freq()),
            min_len, avg_len, params);
      }
      if (block_bound <= theta) {
        // Skip to just past the nearest block boundary — no decoding.
        EntryId boundary = kMaxDoc;
        for (size_t i = 0; i < m; ++i) {
          boundary = std::min(boundary, cursors[i].current_block_last_doc());
        }
        st.pruned = true;
        if (boundary == kMaxDoc) {
          break;
        }
        target = boundary + 1;
        continue;
      }
    }
    // Phase 2: decode-align at `target`, rarest list first. The first
    // cursor that lands past `target` restarts the loop (and its
    // pruning checks) at the doc it landed on.
    bool aligned = true;
    for (size_t oi = 0; oi < m; ++oi) {
      InvertedIndex::Cursor& c = cursors[order[oi]];
      if (!c.ShallowSeek(target)) {
        exhausted = true;
        aligned = false;
        break;
      }
      c.Seek(target);
      if (c.doc() != target) {
        target = c.doc();
        aligned = false;
        break;
      }
    }
    if (!aligned) {
      continue;
    }
    // Phase 3: score the aligned doc, accumulating contributions in
    // original term order — the exact fold RankBm25 performs, so the
    // resulting double is bit-identical to the exhaustive ranker's.
    const EntryId d = target;
    const double doc_len = static_cast<double>(index.DocLength(d));
    double score = 0.0;
    for (size_t i = 0; i < m; ++i) {
      score += Bm25Contribution(idf[i],
                                static_cast<double>(cursors[i].freq()),
                                doc_len, avg_len, params);
    }
    ++st.matches_seen;
    const ScoredDoc scored{d, score};
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), better);
    }
    if (d == kMaxDoc) {
      break;
    }
    target = d + 1;
  }

  uint64_t total_df = 0;
  uint64_t decoded = 0;
  for (const InvertedIndex::Cursor& c : cursors) {
    total_df += c.doc_freq();
    decoded += c.decoded_postings();
  }
  st.postings_decoded = decoded;
  st.postings_skipped = total_df - decoded;
  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace authidx
