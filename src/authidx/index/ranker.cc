#include "authidx/index/ranker.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace authidx {

std::vector<ScoredDoc> RankBm25(const InvertedIndex& index,
                                const std::vector<std::string>& terms,
                                size_t k, const Bm25Params& params) {
  if (k == 0 || index.doc_count() == 0) {
    return {};
  }
  const double n = static_cast<double>(index.doc_count());
  const double avg_len =
      static_cast<double>(index.total_tokens()) / std::max(1.0, n);

  std::unordered_map<EntryId, double> scores;
  for (const std::string& term : terms) {
    std::vector<Posting> postings = index.GetPostings(term);
    if (postings.empty()) {
      continue;
    }
    const double df = static_cast<double>(postings.size());
    // BM25+-style floor keeps idf positive for very common terms.
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : postings) {
      const double tf = static_cast<double>(p.freq);
      const double doc_len = static_cast<double>(index.DocLength(p.doc));
      const double norm =
          params.k1 * (1.0 - params.b + params.b * doc_len / avg_len);
      scores[p.doc] += idf * (tf * (params.k1 + 1.0)) / (tf + norm);
    }
  }

  std::vector<ScoredDoc> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    ranked.push_back(ScoredDoc{doc, score});
  }
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc < b.doc;
  };
  if (ranked.size() > k) {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), better);
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }
  return ranked;
}

}  // namespace authidx
