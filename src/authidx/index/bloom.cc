#include "authidx/index/bloom.h"

#include <cmath>

#include "authidx/common/coding.h"
#include "authidx/common/hash.h"

namespace authidx {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  if (bits_per_key < 1) {
    bits_per_key = 1;
  }
  size_t bits = expected_keys * static_cast<size_t>(bits_per_key);
  if (bits < 64) {
    bits = 64;  // Avoid degenerate tiny filters.
  }
  bits_.assign((bits + 7) / 8, 0);
  probes_ = static_cast<int>(std::lround(bits_per_key * 0.6931));  // ln 2
  if (probes_ < 1) probes_ = 1;
  if (probes_ > 30) probes_ = 30;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h1 = Hash64(key, 0x9ae16a3b2f90404fULL);
  const uint64_t h2 = Hash64(key, 0xc3a5c85c97cb3127ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  uint64_t h = h1;
  for (int i = 0; i < probes_; ++i) {
    uint64_t bit = h % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    h += h2;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h1 = Hash64(key, 0x9ae16a3b2f90404fULL);
  const uint64_t h2 = Hash64(key, 0xc3a5c85c97cb3127ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  uint64_t h = h1;
  for (int i = 0; i < probes_; ++i) {
    uint64_t bit = h % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
    h += h2;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(probes_));
  PutVarint64(&out, bits_.size());
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(std::string_view data) {
  uint32_t probes = 0;
  uint64_t nbytes = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &probes));
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&data, &nbytes));
  if (probes < 1 || probes > 30) {
    return Status::Corruption("bloom probe count out of range");
  }
  if (data.size() != nbytes || nbytes == 0) {
    return Status::Corruption("bloom bit array size mismatch");
  }
  BloomFilter filter;
  filter.probes_ = static_cast<int>(probes);
  filter.bits_.assign(data.begin(), data.end());
  return filter;
}

double BloomFilter::FillRatio() const {
  size_t set = 0;
  for (uint8_t byte : bits_) {
    set += static_cast<size_t>(__builtin_popcount(byte));
  }
  return bits_.empty()
             ? 0.0
             : static_cast<double>(set) / static_cast<double>(bits_.size() * 8);
}

}  // namespace authidx
