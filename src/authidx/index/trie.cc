#include "authidx/index/trie.h"

#include <cstring>

#include "authidx/obs/trace.h"

namespace authidx {

// Children are parallel arrays (labels_, kids_) sorted by label and grown
// by doubling inside the arena (superseded arrays are simply abandoned;
// the arena reclaims them wholesale at destruction).
struct Trie::Node {
  uint64_t value = 0;
  bool has_value = false;
  uint16_t num_children = 0;
  uint16_t cap_children = 0;
  unsigned char* labels = nullptr;
  Node** kids = nullptr;

  // Index of `label` in labels, or insertion point | 0x8000 if absent.
  int Find(unsigned char label) const {
    int lo = 0, hi = num_children;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (labels[mid] < label) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < num_children && labels[lo] == label) {
      return lo;
    }
    return lo | 0x8000;
  }
};

Trie::Trie() {
  root_ = NewNode();
}

Trie::Node* Trie::NewNode() {
  char* mem = arena_.AllocateAligned(sizeof(Node));
  Node* node = new (mem) Node();
  ++node_count_;
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->Set(static_cast<int64_t>(node_count_));
  }
  return node;
}

void Trie::BindMetrics(obs::Gauge* nodes,
                       obs::LatencyHistogram* prefix_scan_ns) {
  nodes_gauge_ = nodes;
  prefix_scan_ns_ = prefix_scan_ns;
  if (nodes_gauge_ != nullptr) {
    nodes_gauge_->Set(static_cast<int64_t>(node_count_));
  }
}

void Trie::Insert(std::string_view key, uint64_t value) {
  Node* node = root_;
  for (unsigned char c : key) {
    int idx = node->Find(c);
    if (idx & 0x8000) {
      int pos = idx & 0x7FFF;
      if (node->num_children == node->cap_children) {
        uint16_t new_cap =
            node->cap_children == 0 ? 2 : static_cast<uint16_t>(
                                              node->cap_children * 2);
        auto* new_labels = reinterpret_cast<unsigned char*>(
            arena_.Allocate(new_cap));
        auto* new_kids = reinterpret_cast<Node**>(
            arena_.AllocateAligned(new_cap * sizeof(Node*)));
        // labels/kids are null until the first child: memcpy from a
        // null source is UB even for zero bytes.
        if (node->num_children > 0) {
          std::memcpy(new_labels, node->labels, node->num_children);
          std::memcpy(new_kids, node->kids,
                      node->num_children * sizeof(Node*));
        }
        node->labels = new_labels;
        node->kids = new_kids;
        node->cap_children = new_cap;
      }
      std::memmove(node->labels + pos + 1, node->labels + pos,
                   node->num_children - pos);
      std::memmove(node->kids + pos + 1, node->kids + pos,
                   (node->num_children - pos) * sizeof(Node*));
      node->labels[pos] = c;
      node->kids[pos] = NewNode();
      ++node->num_children;
      node = node->kids[pos];
    } else {
      node = node->kids[idx];
    }
  }
  if (!node->has_value) {
    node->has_value = true;
    ++size_;
  }
  node->value = value;
}

const Trie::Node* Trie::Descend(std::string_view prefix) const {
  const Node* node = root_;
  for (unsigned char c : prefix) {
    int idx = node->Find(c);
    if (idx & 0x8000) {
      return nullptr;
    }
    node = node->kids[idx];
  }
  return node;
}

bool Trie::Get(std::string_view key, uint64_t* value) const {
  const Node* node = Descend(key);
  if (node == nullptr || !node->has_value) {
    return false;
  }
  *value = node->value;
  return true;
}

void Trie::Collect(const Node* node, std::string* scratch,
                   std::vector<std::pair<std::string, uint64_t>>* out,
                   size_t limit) const {
  if (out->size() >= limit) {
    return;
  }
  if (node->has_value) {
    out->emplace_back(*scratch, node->value);
  }
  for (int i = 0; i < node->num_children && out->size() < limit; ++i) {
    scratch->push_back(static_cast<char>(node->labels[i]));
    Collect(node->kids[i], scratch, out, limit);
    scratch->pop_back();
  }
}

std::vector<std::pair<std::string, uint64_t>> Trie::PrefixScan(
    std::string_view prefix, size_t limit) const {
  obs::TraceSpan timer(nullptr, prefix_scan_ns_, "trie_prefix_scan");
  std::vector<std::pair<std::string, uint64_t>> out;
  const Node* node = Descend(prefix);
  if (node == nullptr) {
    return out;
  }
  std::string scratch(prefix);
  Collect(node, &scratch, &out, limit);
  return out;
}

size_t Trie::CountPrefix(std::string_view prefix) const {
  const Node* start = Descend(prefix);
  if (start == nullptr) {
    return 0;
  }
  // Iterative DFS counting values in the subtree.
  size_t count = 0;
  std::vector<const Node*> stack = {start};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->has_value) {
      ++count;
    }
    for (int i = 0; i < node->num_children; ++i) {
      stack.push_back(node->kids[i]);
    }
  }
  return count;
}

}  // namespace authidx
