#ifndef AUTHIDX_INDEX_BLOOM_H_
#define AUTHIDX_INDEX_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"

namespace authidx {

/// Standard Bloom filter over byte-string keys with Kirsch-Mitzenmacher
/// double hashing (two base hashes combined as h1 + i*h2 derive the k
/// probe positions). Used per sorted run in the storage engine to skip
/// runs that cannot contain a key.
class BloomFilter {
 public:
  /// `bits_per_key` trades space for false-positive rate; 10 gives ~1%.
  /// The probe count k is set to the optimum round(bits_per_key * ln 2).
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  /// Inserts `key`.
  void Add(std::string_view key);

  /// True if `key` may be present; false means definitely absent.
  bool MayContain(std::string_view key) const;

  /// Serializes to bytes (header + bit array) for embedding in a table
  /// file.
  std::string Serialize() const;

  /// Reconstructs a filter from Serialize() output.
  static Result<BloomFilter> Deserialize(std::string_view data);

  size_t bit_count() const { return bits_.size() * 8; }
  int probe_count() const { return probes_; }

  /// Measured fill fraction of the bit array (diagnostics).
  double FillRatio() const;

 private:
  BloomFilter() = default;

  std::vector<uint8_t> bits_;
  int probes_ = 1;
};

}  // namespace authidx

#endif  // AUTHIDX_INDEX_BLOOM_H_
