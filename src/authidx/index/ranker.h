#ifndef AUTHIDX_INDEX_RANKER_H_
#define AUTHIDX_INDEX_RANKER_H_

#include <string>
#include <vector>

#include "authidx/index/inverted.h"
#include "authidx/model/record.h"

namespace authidx {

/// A ranked document.
struct ScoredDoc {
  EntryId doc = 0;
  double score = 0.0;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// BM25 parameters (Robertson/Sparck Jones defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Scores documents matching any query term with Okapi BM25 over `index`
/// and returns the top `k`, highest score first (doc id breaks ties for
/// determinism). Terms must be pre-analyzed with the index's analyzer.
std::vector<ScoredDoc> RankBm25(const InvertedIndex& index,
                                const std::vector<std::string>& terms,
                                size_t k, const Bm25Params& params = {});

}  // namespace authidx

#endif  // AUTHIDX_INDEX_RANKER_H_
