#ifndef AUTHIDX_INDEX_RANKER_H_
#define AUTHIDX_INDEX_RANKER_H_

#include <string>
#include <vector>

#include "authidx/index/inverted.h"
#include "authidx/model/record.h"

namespace authidx {

/// A ranked document.
struct ScoredDoc {
  EntryId doc = 0;
  double score = 0.0;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// BM25 parameters (Robertson/Sparck Jones defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

// Shared scoring primitives. Both rankers (exhaustive and pruned) go
// through these exact functions, and they are noinline on purpose: one
// machine-code rounding sequence per formula, so per-call-site FP
// contraction cannot make the two paths disagree in the last bit. The
// pruned ranker's bit-identical-results guarantee rests on this.

/// BM25+-style idf with a positivity floor: log(1 + (n-df+0.5)/(df+0.5)).
[[gnu::noinline]] double Bm25Idf(double n, double df);

/// One term's BM25 contribution to one document's score.
[[gnu::noinline]] double Bm25Contribution(double idf, double tf,
                                          double doc_len, double avg_len,
                                          const Bm25Params& params);

/// Upper bound on Bm25Contribution for any posting with tf <= max_freq
/// and doc_len >= min_doc_len: the numerator is evaluated at max_freq,
/// the denominator at tf = 1 and doc_len = min_doc_len. Slightly looser
/// than the classic f(max_freq, min_len) bound but provably >= every
/// floating-point-evaluated contribution (each IEEE op is monotone), so
/// pruning on it can never drop a true top-k document.
[[gnu::noinline]] double Bm25ImpactBound(double idf, double max_freq,
                                         double min_doc_len, double avg_len,
                                         const Bm25Params& params);

/// Scores documents matching any query term with Okapi BM25 over `index`
/// and returns the top `k`, highest score first (doc id breaks ties for
/// determinism). Terms must be pre-analyzed with the index's analyzer.
std::vector<ScoredDoc> RankBm25(const InvertedIndex& index,
                                const std::vector<std::string>& terms,
                                size_t k, const Bm25Params& params = {});

/// Work accounting for RankBm25TopKConjunctive.
struct TopKStats {
  /// Postings actually decoded (block granularity).
  uint64_t postings_decoded = 0;
  /// Postings provably skipped without decoding.
  uint64_t postings_skipped = 0;
  /// Conjunctive matches that were aligned and scored. Exact match
  /// count when `pruned` is false; a lower bound otherwise.
  uint64_t matches_seen = 0;
  /// True when any candidate range was skipped unscored (so counts
  /// derived from this run are lower bounds).
  bool pruned = false;
};

/// Block-Max-WAND-style conjunctive top-k: documents containing *every*
/// term, scored with BM25, top `k` by (score desc, doc asc). Produces
/// bit-identical (ids and fixed64 scores) output to ranking the full
/// conjunction through RankBm25, but decodes only postings blocks whose
/// max-impact bound can still enter the top k — whole blocks are
/// skipped via the index's skip metadata once the heap threshold rises
/// above their bound. `stats` (optional) receives work accounting.
std::vector<ScoredDoc> RankBm25TopKConjunctive(
    const InvertedIndex& index, const std::vector<std::string>& terms,
    size_t k, const Bm25Params& params = {}, TopKStats* stats = nullptr);

}  // namespace authidx

#endif  // AUTHIDX_INDEX_RANKER_H_
