#include "authidx/index/inverted.h"

#include <algorithm>

#include "authidx/common/coding.h"

namespace authidx {

bool InvertedIndex::AddDocument(EntryId doc,
                                const std::vector<std::string>& tokens) {
  if (any_doc_ && doc < max_doc_) {
    return false;
  }
  // Aggregate term frequencies within the document.
  std::unordered_map<std::string_view, uint32_t> freqs;
  for (const std::string& token : tokens) {
    ++freqs[token];
  }
  for (const auto& [token, freq] : freqs) {
    TermEntry& entry = terms_[std::string(token)];
    uint32_t gap = entry.doc_freq == 0 ? doc : doc - entry.last_doc;
    if (entry.doc_freq > 0 && gap == 0) {
      continue;  // Same doc re-added for this term; keep first freq.
    }
    if (entry.open_count == 0) {
      entry.open_offset = static_cast<uint32_t>(entry.encoded.size());
    }
    PutVarint32(&entry.encoded, gap);
    PutVarint32(&entry.encoded, freq);
    entry.last_doc = doc;
    ++entry.doc_freq;
    entry.max_freq = std::max(entry.max_freq, freq);
    entry.open_max_freq = std::max(entry.open_max_freq, freq);
    if (++entry.open_count == kPostingsBlockSize) {
      // Close the block: its skip entry is what lets Cursor bound and
      // skip it without decoding.
      entry.blocks.push_back(
          BlockInfo{doc, entry.open_max_freq, entry.open_offset});
      entry.open_count = 0;
      entry.open_max_freq = 0;
    }
  }
  doc_lengths_[doc] = static_cast<uint32_t>(tokens.size());
  total_tokens_ += tokens.size();
  min_doc_tokens_ =
      std::min(min_doc_tokens_, static_cast<uint32_t>(tokens.size()));
  ++doc_count_;
  max_doc_ = doc;
  any_doc_ = true;
  return true;
}

std::vector<Posting> InvertedIndex::GetPostings(std::string_view term) const {
  auto it = terms_.find(std::string(term));
  if (it == terms_.end()) {
    return {};
  }
  const TermEntry& entry = it->second;
  std::vector<Posting> postings;
  postings.reserve(entry.doc_freq);
  std::string_view data = entry.encoded;
  EntryId prev = 0;
  for (uint32_t i = 0; i < entry.doc_freq; ++i) {
    uint32_t gap = 0, freq = 0;
    // Encoded in-process; decode failures would indicate memory
    // corruption, so treat them as "stop early".
    if (!GetVarint32(&data, &gap).ok() || !GetVarint32(&data, &freq).ok()) {
      break;
    }
    EntryId doc = (i == 0) ? gap : prev + gap;
    postings.push_back(Posting{doc, freq});
    prev = doc;
  }
  if (postings_decoded_ != nullptr) {
    postings_decoded_->Inc(postings.size());
  }
  return postings;
}

void InvertedIndex::BindMetrics(obs::Counter* postings_decoded) {
  postings_decoded_ = postings_decoded;
}

std::vector<EntryId> InvertedIndex::GetDocs(std::string_view term) const {
  std::vector<Posting> postings = GetPostings(term);
  std::vector<EntryId> docs;
  docs.reserve(postings.size());
  for (const Posting& p : postings) {
    docs.push_back(p.doc);
  }
  return docs;
}

size_t InvertedIndex::DocFreq(std::string_view term) const {
  auto it = terms_.find(std::string(term));
  return it == terms_.end() ? 0 : it->second.doc_freq;
}

uint32_t InvertedIndex::DocLength(EntryId doc) const {
  auto it = doc_lengths_.find(doc);
  return it == doc_lengths_.end() ? 0 : it->second;
}

size_t InvertedIndex::CompressedBytes() const {
  size_t total = 0;
  for (const auto& [term, entry] : terms_) {
    total += entry.encoded.size();
  }
  return total;
}

InvertedIndex::Cursor InvertedIndex::OpenCursor(std::string_view term) const {
  auto it = terms_.find(std::string(term));
  if (it == terms_.end()) {
    return Cursor();
  }
  return Cursor(&it->second, postings_decoded_);
}

size_t InvertedIndex::Cursor::block_count() const {
  if (entry_ == nullptr) {
    return 0;
  }
  return entry_->blocks.size() + (entry_->open_count > 0 ? 1 : 0);
}

EntryId InvertedIndex::Cursor::block_last_doc(size_t b) const {
  return b < entry_->blocks.size() ? entry_->blocks[b].last_doc
                                   : entry_->last_doc;
}

uint32_t InvertedIndex::Cursor::block_max_freq(size_t b) const {
  return b < entry_->blocks.size() ? entry_->blocks[b].max_freq
                                   : entry_->open_max_freq;
}

bool InvertedIndex::Cursor::ShallowSeek(EntryId target) {
  const size_t blocks = block_count();
  size_t b = block_;
  while (b < blocks && block_last_doc(b) < target) {
    ++b;
  }
  if (b >= blocks) {
    block_ = blocks;
    return false;
  }
  if (b != block_) {
    block_ = b;
    decoded_ = false;  // Position moved to a block not yet decoded.
  }
  return true;
}

void InvertedIndex::Cursor::DecodeCurrentBlock() {
  if (decoded_) {
    return;
  }
  const size_t closed = entry_->blocks.size();
  const bool partial = block_ >= closed;
  const size_t begin =
      partial ? entry_->open_offset : entry_->blocks[block_].offset;
  size_t end = entry_->encoded.size();
  if (!partial && block_ + 1 < closed) {
    end = entry_->blocks[block_ + 1].offset;
  } else if (!partial && entry_->open_count > 0) {
    end = entry_->open_offset;
  }
  const uint32_t count = partial ? entry_->open_count : kPostingsBlockSize;
  std::string_view data(entry_->encoded);
  data = data.substr(begin, end - begin);
  buf_.clear();
  buf_.reserve(count);
  EntryId prev = block_ == 0 ? 0 : block_last_doc(block_ - 1);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t gap = 0, freq = 0;
    // Encoded in-process; decode failures would indicate memory
    // corruption, so treat them as "stop early" (like GetPostings).
    if (!GetVarint32(&data, &gap).ok() || !GetVarint32(&data, &freq).ok()) {
      break;
    }
    prev += gap;
    buf_.push_back(Posting{prev, freq});
  }
  decoded_ = true;
  pos_ = 0;
  decoded_postings_ += buf_.size();
  if (counter_ != nullptr) {
    counter_->Inc(buf_.size());
  }
}

void InvertedIndex::Cursor::Seek(EntryId target) {
  DecodeCurrentBlock();
  if (pos_ < buf_.size() && buf_[pos_].doc >= target) {
    // Already there (repeated Seek at the same alignment target).
  } else {
    auto it = std::lower_bound(
        buf_.begin(), buf_.end(), target,
        [](const Posting& p, EntryId t) { return p.doc < t; });
    pos_ = static_cast<size_t>(it - buf_.begin());
  }
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(terms_.size());
  for (const auto& [term, entry] : terms_) {
    out.push_back(term);
  }
  return out;
}

}  // namespace authidx
