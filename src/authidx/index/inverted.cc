#include "authidx/index/inverted.h"

#include <algorithm>

#include "authidx/common/coding.h"

namespace authidx {

bool InvertedIndex::AddDocument(EntryId doc,
                                const std::vector<std::string>& tokens) {
  if (any_doc_ && doc < max_doc_) {
    return false;
  }
  // Aggregate term frequencies within the document.
  std::unordered_map<std::string_view, uint32_t> freqs;
  for (const std::string& token : tokens) {
    ++freqs[token];
  }
  for (const auto& [token, freq] : freqs) {
    TermEntry& entry = terms_[std::string(token)];
    uint32_t gap = entry.doc_freq == 0 ? doc : doc - entry.last_doc;
    if (entry.doc_freq > 0 && gap == 0) {
      continue;  // Same doc re-added for this term; keep first freq.
    }
    PutVarint32(&entry.encoded, gap);
    PutVarint32(&entry.encoded, freq);
    entry.last_doc = doc;
    ++entry.doc_freq;
  }
  doc_lengths_[doc] = static_cast<uint32_t>(tokens.size());
  total_tokens_ += tokens.size();
  ++doc_count_;
  max_doc_ = doc;
  any_doc_ = true;
  return true;
}

std::vector<Posting> InvertedIndex::GetPostings(std::string_view term) const {
  auto it = terms_.find(std::string(term));
  if (it == terms_.end()) {
    return {};
  }
  const TermEntry& entry = it->second;
  std::vector<Posting> postings;
  postings.reserve(entry.doc_freq);
  std::string_view data = entry.encoded;
  EntryId prev = 0;
  for (uint32_t i = 0; i < entry.doc_freq; ++i) {
    uint32_t gap = 0, freq = 0;
    // Encoded in-process; decode failures would indicate memory
    // corruption, so treat them as "stop early".
    if (!GetVarint32(&data, &gap).ok() || !GetVarint32(&data, &freq).ok()) {
      break;
    }
    EntryId doc = (i == 0) ? gap : prev + gap;
    postings.push_back(Posting{doc, freq});
    prev = doc;
  }
  if (postings_decoded_ != nullptr) {
    postings_decoded_->Inc(postings.size());
  }
  return postings;
}

void InvertedIndex::BindMetrics(obs::Counter* postings_decoded) {
  postings_decoded_ = postings_decoded;
}

std::vector<EntryId> InvertedIndex::GetDocs(std::string_view term) const {
  std::vector<Posting> postings = GetPostings(term);
  std::vector<EntryId> docs;
  docs.reserve(postings.size());
  for (const Posting& p : postings) {
    docs.push_back(p.doc);
  }
  return docs;
}

size_t InvertedIndex::DocFreq(std::string_view term) const {
  auto it = terms_.find(std::string(term));
  return it == terms_.end() ? 0 : it->second.doc_freq;
}

uint32_t InvertedIndex::DocLength(EntryId doc) const {
  auto it = doc_lengths_.find(doc);
  return it == doc_lengths_.end() ? 0 : it->second;
}

size_t InvertedIndex::CompressedBytes() const {
  size_t total = 0;
  for (const auto& [term, entry] : terms_) {
    total += entry.encoded.size();
  }
  return total;
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(terms_.size());
  for (const auto& [term, entry] : terms_) {
    out.push_back(term);
  }
  return out;
}

}  // namespace authidx
