#include "authidx/index/btree.h"

#include <algorithm>
#include <cassert>

namespace authidx {
namespace {

// Fanout: keys per node before a split. 64 keeps nodes around one or two
// cache pages for short keys while keeping the tree shallow.
constexpr size_t kMaxKeys = 64;

}  // namespace

struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  bool is_leaf;
};

struct BPlusTree::LeafNode final : Node {
  LeafNode() : Node(true) {}
  std::vector<std::string> keys;
  std::vector<uint64_t> values;
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode final : Node {
  InternalNode() : Node(false) {}
  ~InternalNode() override {
    for (Node* child : children) {
      delete child;
    }
  }
  // children.size() == keys.size() + 1. children[i] holds keys k with
  // keys[i-1] <= k < keys[i] (bounds omitted at the ends).
  std::vector<std::string> keys;
  std::vector<Node*> children;
};

BPlusTree::BPlusTree() {
  first_leaf_ = new LeafNode();
  root_ = first_leaf_;
}

BPlusTree::~BPlusTree() { delete root_; }

BPlusTree::LeafNode* BPlusTree::FindLeaf(std::string_view key) const {
  Node* node = root_;
  uint64_t visited = 1;  // The root counts as a page read.
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    size_t i = static_cast<size_t>(
        std::upper_bound(internal->keys.begin(), internal->keys.end(), key) -
        internal->keys.begin());
    node = internal->children[i];
    ++visited;
  }
  if (page_reads_ != nullptr) {
    page_reads_->Inc(visited);
  }
  return static_cast<LeafNode*>(node);
}

void BPlusTree::BindMetrics(obs::Counter* page_reads) {
  page_reads_ = page_reads;
}

void BPlusTree::SplitChild(InternalNode* parent, size_t child_idx) {
  Node* child = parent->children[child_idx];
  if (child->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(child);
    auto* right = new LeafNode();
    size_t mid = leaf->keys.size() / 2;
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                       std::make_move_iterator(leaf->keys.end()));
    right->values.assign(leaf->values.begin() + mid, leaf->values.end());
    leaf->keys.resize(mid);
    leaf->values.resize(mid);
    right->next = leaf->next;
    leaf->next = right;
    parent->keys.insert(parent->keys.begin() + child_idx, right->keys.front());
    parent->children.insert(parent->children.begin() + child_idx + 1, right);
  } else {
    auto* internal = static_cast<InternalNode*>(child);
    auto* right = new InternalNode();
    size_t mid = internal->keys.size() / 2;
    std::string up_key = std::move(internal->keys[mid]);
    right->keys.assign(std::make_move_iterator(internal->keys.begin() + mid + 1),
                       std::make_move_iterator(internal->keys.end()));
    right->children.assign(internal->children.begin() + mid + 1,
                           internal->children.end());
    internal->keys.resize(mid);
    internal->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + child_idx, std::move(up_key));
    parent->children.insert(parent->children.begin() + child_idx + 1, right);
  }
}

bool BPlusTree::InsertNonFull(Node* node, std::string_view key,
                              uint64_t value) {
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    size_t i = static_cast<size_t>(
        std::upper_bound(internal->keys.begin(), internal->keys.end(), key) -
        internal->keys.begin());
    Node* child = internal->children[i];
    size_t child_keys = child->is_leaf
                            ? static_cast<LeafNode*>(child)->keys.size()
                            : static_cast<InternalNode*>(child)->keys.size();
    if (child_keys >= kMaxKeys) {
      SplitChild(internal, i);
      if (key >= internal->keys[i]) {
        ++i;
      }
      child = internal->children[i];
    }
    node = child;
  }
  auto* leaf = static_cast<LeafNode*>(node);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    leaf->values[pos] = value;  // Overwrite.
    return false;
  }
  leaf->keys.insert(it, std::string(key));
  leaf->values.insert(leaf->values.begin() + pos, value);
  return true;
}

bool BPlusTree::Insert(std::string_view key, uint64_t value) {
  size_t root_keys = root_->is_leaf
                         ? static_cast<LeafNode*>(root_)->keys.size()
                         : static_cast<InternalNode*>(root_)->keys.size();
  if (root_keys >= kMaxKeys) {
    auto* new_root = new InternalNode();
    new_root->children.push_back(root_);
    SplitChild(new_root, 0);
    root_ = new_root;
    ++height_;
  }
  bool inserted = InsertNonFull(root_, key, value);
  if (inserted) {
    ++size_;
  }
  return inserted;
}

std::optional<uint64_t> BPlusTree::Get(std::string_view key) const {
  const LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
  }
  return std::nullopt;
}

bool BPlusTree::Erase(std::string_view key) {
  LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return false;
  }
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + pos);
  --size_;
  return true;
}

bool BPlusTree::Iterator::Valid() const {
  return leaf_ != nullptr &&
         pos_ < static_cast<const LeafNode*>(leaf_)->keys.size();
}

std::string_view BPlusTree::Iterator::key() const {
  return static_cast<const LeafNode*>(leaf_)->keys[pos_];
}

uint64_t BPlusTree::Iterator::value() const {
  return static_cast<const LeafNode*>(leaf_)->values[pos_];
}

void BPlusTree::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  ++pos_;
  // Skip over leaves emptied by lazy deletion.
  while (leaf != nullptr && pos_ >= leaf->keys.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BPlusTree::Iterator BPlusTree::Seek(std::string_view key) const {
  const LeafNode* leaf = FindLeaf(key);
  size_t pos = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  while (leaf != nullptr && pos >= leaf->keys.size()) {
    leaf = leaf->next;
    pos = 0;
  }
  Iterator it;
  it.leaf_ = leaf;
  it.pos_ = pos;
  return it;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const LeafNode* leaf = first_leaf_;
  while (leaf != nullptr && leaf->keys.empty()) {
    leaf = leaf->next;
  }
  Iterator it;
  it.leaf_ = leaf;
  it.pos_ = 0;
  return it;
}

std::vector<std::pair<std::string, uint64_t>> BPlusTree::PrefixScan(
    std::string_view prefix, size_t limit) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (Iterator it = Seek(prefix); it.Valid() && out.size() < limit;
       it.Next()) {
    std::string_view key = it.key();
    if (key.size() < prefix.size() ||
        key.substr(0, prefix.size()) != prefix) {
      break;
    }
    out.emplace_back(std::string(key), it.value());
  }
  return out;
}

bool BPlusTree::CheckInvariants(std::string* why) const {
  // Walk the tree checking order/bounds, then the leaf chain.
  struct Checker {
    static bool Check(const Node* node, const std::string* lo,
                      const std::string* hi, std::string* why) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        if (leaf->keys.size() != leaf->values.size()) {
          *why = "leaf keys/values size mismatch";
          return false;
        }
        if (!std::is_sorted(leaf->keys.begin(), leaf->keys.end())) {
          *why = "leaf keys unsorted";
          return false;
        }
        for (const std::string& k : leaf->keys) {
          if (lo != nullptr && k < *lo) {
            *why = "leaf key below lower bound";
            return false;
          }
          if (hi != nullptr && k >= *hi) {
            *why = "leaf key at/above upper bound";
            return false;
          }
        }
        return true;
      }
      const auto* internal = static_cast<const InternalNode*>(node);
      if (internal->children.size() != internal->keys.size() + 1) {
        *why = "internal fanout mismatch";
        return false;
      }
      if (internal->keys.size() > kMaxKeys) {
        *why = "internal overflow";
        return false;
      }
      if (!std::is_sorted(internal->keys.begin(), internal->keys.end())) {
        *why = "internal keys unsorted";
        return false;
      }
      for (size_t i = 0; i < internal->children.size(); ++i) {
        const std::string* child_lo = (i == 0) ? lo : &internal->keys[i - 1];
        const std::string* child_hi =
            (i == internal->keys.size()) ? hi : &internal->keys[i];
        if (!Check(internal->children[i], child_lo, child_hi, why)) {
          return false;
        }
      }
      return true;
    }
  };
  if (!Checker::Check(root_, nullptr, nullptr, why)) {
    return false;
  }
  // Leaf chain must be globally sorted and cover `size_` pairs.
  size_t total = 0;
  std::string prev;
  bool have_prev = false;
  for (const LeafNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (const std::string& k : leaf->keys) {
      if (have_prev && !(prev < k)) {
        *why = "leaf chain out of order";
        return false;
      }
      prev = k;
      have_prev = true;
      ++total;
    }
  }
  if (total != size_) {
    *why = "leaf chain count != size()";
    return false;
  }
  return true;
}

}  // namespace authidx
