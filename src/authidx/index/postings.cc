#include "authidx/index/postings.h"

#include <algorithm>

#include "authidx/common/coding.h"

namespace authidx {

std::string EncodePostings(const std::vector<Posting>& postings) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(postings.size()));
  EntryId prev = 0;
  bool first = true;
  for (const Posting& p : postings) {
    uint32_t gap = first ? p.doc : p.doc - prev;
    PutVarint32(&out, gap);
    PutVarint32(&out, p.freq);
    prev = p.doc;
    first = false;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(std::string_view data) {
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &count));
  // Each posting takes at least 2 bytes; reject counts the buffer cannot
  // hold so corruption does not trigger giant allocations.
  if (static_cast<uint64_t>(count) * 2 > data.size()) {
    return Status::Corruption("postings count exceeds buffer");
  }
  std::vector<Posting> postings;
  postings.reserve(count);
  EntryId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t gap = 0, freq = 0;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &gap));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &freq));
    EntryId doc = (i == 0) ? gap : prev + gap;
    if (i > 0 && gap == 0) {
      return Status::Corruption("postings doc ids not strictly increasing");
    }
    postings.push_back(Posting{doc, freq});
    prev = doc;
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes after postings");
  }
  return postings;
}

std::string EncodeBlockMaxPostings(const std::vector<Posting>& postings) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(postings.size()));
  const size_t block_count =
      (postings.size() + kPostingsBlockSize - 1) / kPostingsBlockSize;
  PutVarint32(&out, static_cast<uint32_t>(block_count));
  // Skip table, then payloads; both need one pass over the blocks.
  std::string payload;
  EntryId prev_last = 0;
  EntryId prev = 0;
  bool first = true;
  for (size_t b = 0; b < block_count; ++b) {
    const size_t begin = b * kPostingsBlockSize;
    const size_t end = std::min(begin + kPostingsBlockSize, postings.size());
    const size_t payload_begin = payload.size();
    uint32_t max_freq = 0;
    for (size_t i = begin; i < end; ++i) {
      const Posting& p = postings[i];
      uint32_t gap = first ? p.doc : p.doc - prev;
      PutVarint32(&payload, gap);
      PutVarint32(&payload, p.freq);
      max_freq = std::max(max_freq, p.freq);
      prev = p.doc;
      first = false;
    }
    const EntryId last_doc = postings[end - 1].doc;
    PutVarint32(&out, static_cast<uint32_t>(end - begin));
    PutVarint32(&out, b == 0 ? last_doc : last_doc - prev_last);
    PutVarint32(&out, max_freq);
    PutVarint32(&out, static_cast<uint32_t>(payload.size() - payload_begin));
    prev_last = last_doc;
  }
  out += payload;
  return out;
}

Result<BlockMaxReader> BlockMaxReader::Open(std::string_view data) {
  BlockMaxReader reader;
  uint32_t block_count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &reader.total_count_));
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &block_count));
  // Sizing sanity before any reserve: each posting takes >= 2 payload
  // bytes and each skip entry >= 4 header bytes, so forged counts are
  // rejected without attacker-controlled allocations.
  if (static_cast<uint64_t>(reader.total_count_) * 2 > data.size()) {
    return Status::Corruption("block-max postings count exceeds buffer");
  }
  if (static_cast<uint64_t>(block_count) * 4 > data.size()) {
    return Status::Corruption("block-max block count exceeds buffer");
  }
  const uint64_t min_blocks =
      (static_cast<uint64_t>(reader.total_count_) + kPostingsBlockSize - 1) /
      kPostingsBlockSize;
  if (block_count != min_blocks) {
    return Status::Corruption("block-max block count inconsistent");
  }
  reader.blocks_.reserve(block_count);
  reader.offsets_.reserve(block_count);
  uint64_t seen = 0;
  uint64_t payload_bytes = 0;
  EntryId prev_last = 0;
  for (uint32_t b = 0; b < block_count; ++b) {
    PostingsBlock block;
    uint32_t last_gap = 0;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &block.count));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &last_gap));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &block.max_freq));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &block.bytes));
    if (block.count == 0 || block.count > kPostingsBlockSize) {
      return Status::Corruption("block-max block length out of range");
    }
    if (b + 1 < block_count && block.count != kPostingsBlockSize) {
      return Status::Corruption("block-max interior block not full");
    }
    if (b > 0 && last_gap == 0) {
      return Status::Corruption("block-max last docs not increasing");
    }
    block.last_doc = b == 0 ? last_gap : prev_last + last_gap;
    if (static_cast<uint64_t>(block.bytes) <
        static_cast<uint64_t>(block.count) * 2) {
      return Status::Corruption("block-max block bytes too small");
    }
    prev_last = block.last_doc;
    seen += block.count;
    payload_bytes += block.bytes;
    reader.offsets_.push_back(static_cast<size_t>(payload_bytes) -
                              block.bytes);
    reader.blocks_.push_back(block);
  }
  if (seen != reader.total_count_) {
    return Status::Corruption("block-max block lengths disagree with count");
  }
  if (payload_bytes != data.size()) {
    return Status::Corruption("block-max payload size mismatch");
  }
  reader.payload_ = data;
  return reader;
}

Status BlockMaxReader::DecodeBlock(size_t b, std::vector<Posting>* out) const {
  const PostingsBlock& block = blocks_[b];
  std::string_view data = payload_.substr(offsets_[b], block.bytes);
  out->clear();
  out->reserve(block.count);
  EntryId prev = b == 0 ? 0 : blocks_[b - 1].last_doc;
  uint32_t max_freq = 0;
  for (uint32_t i = 0; i < block.count; ++i) {
    uint32_t gap = 0, freq = 0;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &gap));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &freq));
    // The very first posting of the list is an absolute id and may be
    // doc 0; every other gap must advance.
    if (gap == 0 && !(b == 0 && i == 0)) {
      return Status::Corruption("block-max doc ids not strictly increasing");
    }
    prev += gap;
    max_freq = std::max(max_freq, freq);
    out->push_back(Posting{prev, freq});
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes after block-max block");
  }
  if (prev != block.last_doc) {
    return Status::Corruption("block-max skip last_doc disagrees with block");
  }
  if (max_freq != block.max_freq) {
    return Status::Corruption("block-max skip max_freq disagrees with block");
  }
  return Status::OK();
}

Result<std::vector<Posting>> DecodeBlockMaxPostings(std::string_view data) {
  AUTHIDX_ASSIGN_OR_RETURN(BlockMaxReader reader, BlockMaxReader::Open(data));
  std::vector<Posting> postings;
  postings.reserve(reader.total_count());
  std::vector<Posting> block;
  for (size_t b = 0; b < reader.block_count(); ++b) {
    AUTHIDX_RETURN_NOT_OK(reader.DecodeBlock(b, &block));
    postings.insert(postings.end(), block.begin(), block.end());
  }
  return postings;
}

std::vector<EntryId> IntersectLinear(const std::vector<EntryId>& a,
                                     const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

// Finds the first index >= `from` in `v` with v[idx] >= target, probing
// exponentially then binary-searching the final window.
size_t GallopTo(const std::vector<EntryId>& v, size_t from, EntryId target) {
  size_t lo = from;
  size_t step = 1;
  size_t hi = from;
  while (hi < v.size() && v[hi] < target) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > v.size()) {
    hi = v.size();
  }
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), target) -
      v.begin());
}

}  // namespace

std::vector<EntryId> IntersectGalloping(const std::vector<EntryId>& a,
                                        const std::vector<EntryId>& b) {
  // Iterate the smaller list, gallop in the larger.
  const std::vector<EntryId>& small = a.size() <= b.size() ? a : b;
  const std::vector<EntryId>& large = a.size() <= b.size() ? b : a;
  std::vector<EntryId> out;
  out.reserve(small.size());
  size_t pos = 0;
  for (EntryId id : small) {
    pos = GallopTo(large, pos, id);
    if (pos == large.size()) {
      break;
    }
    if (large[pos] == id) {
      out.push_back(id);
      ++pos;
    }
  }
  return out;
}

std::vector<EntryId> Intersect(const std::vector<EntryId>& a,
                               const std::vector<EntryId>& b) {
  size_t lo = std::min(a.size(), b.size());
  size_t hi = std::max(a.size(), b.size());
  // Galloping pays off once the length ratio covers its log factor.
  if (lo > 0 && hi / lo >= 32) {
    return IntersectGalloping(a, b);
  }
  return IntersectLinear(a, b);
}

std::vector<EntryId> Union(const std::vector<EntryId>& a,
                           const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<EntryId> Difference(const std::vector<EntryId>& a,
                                const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace authidx
