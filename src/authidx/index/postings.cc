#include "authidx/index/postings.h"

#include <algorithm>

#include "authidx/common/coding.h"

namespace authidx {

std::string EncodePostings(const std::vector<Posting>& postings) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(postings.size()));
  EntryId prev = 0;
  bool first = true;
  for (const Posting& p : postings) {
    uint32_t gap = first ? p.doc : p.doc - prev;
    PutVarint32(&out, gap);
    PutVarint32(&out, p.freq);
    prev = p.doc;
    first = false;
  }
  return out;
}

Result<std::vector<Posting>> DecodePostings(std::string_view data) {
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &count));
  // Each posting takes at least 2 bytes; reject counts the buffer cannot
  // hold so corruption does not trigger giant allocations.
  if (static_cast<uint64_t>(count) * 2 > data.size()) {
    return Status::Corruption("postings count exceeds buffer");
  }
  std::vector<Posting> postings;
  postings.reserve(count);
  EntryId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t gap = 0, freq = 0;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &gap));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&data, &freq));
    EntryId doc = (i == 0) ? gap : prev + gap;
    if (i > 0 && gap == 0) {
      return Status::Corruption("postings doc ids not strictly increasing");
    }
    postings.push_back(Posting{doc, freq});
    prev = doc;
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes after postings");
  }
  return postings;
}

std::vector<EntryId> IntersectLinear(const std::vector<EntryId>& a,
                                     const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

// Finds the first index >= `from` in `v` with v[idx] >= target, probing
// exponentially then binary-searching the final window.
size_t GallopTo(const std::vector<EntryId>& v, size_t from, EntryId target) {
  size_t lo = from;
  size_t step = 1;
  size_t hi = from;
  while (hi < v.size() && v[hi] < target) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > v.size()) {
    hi = v.size();
  }
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), target) -
      v.begin());
}

}  // namespace

std::vector<EntryId> IntersectGalloping(const std::vector<EntryId>& a,
                                        const std::vector<EntryId>& b) {
  // Iterate the smaller list, gallop in the larger.
  const std::vector<EntryId>& small = a.size() <= b.size() ? a : b;
  const std::vector<EntryId>& large = a.size() <= b.size() ? b : a;
  std::vector<EntryId> out;
  out.reserve(small.size());
  size_t pos = 0;
  for (EntryId id : small) {
    pos = GallopTo(large, pos, id);
    if (pos == large.size()) {
      break;
    }
    if (large[pos] == id) {
      out.push_back(id);
      ++pos;
    }
  }
  return out;
}

std::vector<EntryId> Intersect(const std::vector<EntryId>& a,
                               const std::vector<EntryId>& b) {
  size_t lo = std::min(a.size(), b.size());
  size_t hi = std::max(a.size(), b.size());
  // Galloping pays off once the length ratio covers its log factor.
  if (lo > 0 && hi / lo >= 32) {
    return IntersectGalloping(a, b);
  }
  return IntersectLinear(a, b);
}

std::vector<EntryId> Union(const std::vector<EntryId>& a,
                           const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<EntryId> Difference(const std::vector<EntryId>& a,
                                const std::vector<EntryId>& b) {
  std::vector<EntryId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace authidx
