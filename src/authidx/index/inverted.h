#ifndef AUTHIDX_INDEX_INVERTED_H_
#define AUTHIDX_INDEX_INVERTED_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "authidx/index/postings.h"
#include "authidx/model/record.h"
#include "authidx/obs/metrics.h"

namespace authidx {

/// In-memory inverted index: term -> compressed postings. Documents are
/// added with pre-analyzed tokens (the caller runs text::Tokenize so
/// indexing and querying share one analyzer). Doc ids must be added in
/// non-decreasing order, which ingest order guarantees.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes `tokens` under `doc`. Duplicate tokens raise the term
  /// frequency. Returns false (and indexes nothing) if `doc` is below a
  /// previously added doc id.
  bool AddDocument(EntryId doc, const std::vector<std::string>& tokens);

  /// Doc ids containing `term` (empty vector if absent).
  std::vector<EntryId> GetDocs(std::string_view term) const;

  /// Full postings with term frequencies.
  std::vector<Posting> GetPostings(std::string_view term) const;

  /// Number of documents containing `term`.
  size_t DocFreq(std::string_view term) const;

  /// Total number of documents added.
  size_t doc_count() const { return doc_count_; }

  /// Number of distinct terms.
  size_t term_count() const { return terms_.size(); }

  /// Sum of document lengths (tokens); used by BM25's length norm.
  uint64_t total_tokens() const { return total_tokens_; }

  /// Token count of document `doc` (0 if unknown).
  uint32_t DocLength(EntryId doc) const;

  /// Total compressed postings bytes (diagnostics/benchmarks).
  size_t CompressedBytes() const;

  /// All terms (unsorted); mainly for tests and stats.
  std::vector<std::string> Terms() const;

  /// Points the index at a registry counter (may be null) counting
  /// postings decoded by GetPostings/GetDocs. See docs/OBSERVABILITY.md.
  void BindMetrics(obs::Counter* postings_decoded);

 private:
  struct TermEntry {
    // Encoded (gap, freq) varint postings, appended incrementally.
    std::string encoded;
    uint32_t doc_freq = 0;
    EntryId last_doc = 0;
  };

  std::unordered_map<std::string, TermEntry> terms_;
  std::unordered_map<EntryId, uint32_t> doc_lengths_;
  size_t doc_count_ = 0;
  uint64_t total_tokens_ = 0;
  EntryId max_doc_ = 0;
  bool any_doc_ = false;
  obs::Counter* postings_decoded_ = nullptr;
};

}  // namespace authidx

#endif  // AUTHIDX_INDEX_INVERTED_H_
