#ifndef AUTHIDX_INDEX_INVERTED_H_
#define AUTHIDX_INDEX_INVERTED_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "authidx/index/postings.h"
#include "authidx/model/record.h"
#include "authidx/obs/metrics.h"

namespace authidx {

/// In-memory inverted index: term -> compressed postings. Documents are
/// added with pre-analyzed tokens (the caller runs text::Tokenize so
/// indexing and querying share one analyzer). Doc ids must be added in
/// non-decreasing order, which ingest order guarantees.
///
/// Postings are stored as one continuous delta-varint run per term with
/// a per-block skip table (kPostingsBlockSize postings per block,
/// tracking last doc id + max term frequency) maintained incrementally
/// on add — the in-memory mirror of the EncodeBlockMaxPostings format.
/// Cursor (below) uses the skip table to decode only the blocks a
/// top-k pruning loop actually visits.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes `tokens` under `doc`. Duplicate tokens raise the term
  /// frequency. Returns false (and indexes nothing) if `doc` is below a
  /// previously added doc id.
  bool AddDocument(EntryId doc, const std::vector<std::string>& tokens);

  /// Doc ids containing `term` (empty vector if absent).
  std::vector<EntryId> GetDocs(std::string_view term) const;

  /// Full postings with term frequencies.
  std::vector<Posting> GetPostings(std::string_view term) const;

  /// Number of documents containing `term`.
  size_t DocFreq(std::string_view term) const;

  /// Total number of documents added.
  size_t doc_count() const { return doc_count_; }

  /// Number of distinct terms.
  size_t term_count() const { return terms_.size(); }

  /// Sum of document lengths (tokens); used by BM25's length norm.
  uint64_t total_tokens() const { return total_tokens_; }

  /// Token count of document `doc` (0 if unknown).
  uint32_t DocLength(EntryId doc) const;

  /// Smallest token count any added document had (0 before the first
  /// add). A lower bound on every DocLength a posting can refer to —
  /// the doc-length side of the BM25 impact upper bound.
  uint32_t min_doc_tokens() const {
    return doc_count_ == 0 ? 0 : min_doc_tokens_;
  }

  /// Total compressed postings bytes (diagnostics/benchmarks).
  size_t CompressedBytes() const;

  /// All terms (unsorted); mainly for tests and stats.
  std::vector<std::string> Terms() const;

  /// Points the index at a registry counter (may be null) counting
  /// postings decoded by GetPostings/GetDocs and by Cursor block
  /// decodes. See docs/OBSERVABILITY.md.
  void BindMetrics(obs::Counter* postings_decoded);

 private:
  // One closed (full) block of kPostingsBlockSize postings. The
  // trailing partial block lives in TermEntry's open_* fields until it
  // fills up.
  struct BlockInfo {
    EntryId last_doc = 0;
    uint32_t max_freq = 0;
    // Byte offset of the block's first varint within `encoded`.
    uint32_t offset = 0;
  };

  struct TermEntry {
    // Encoded (gap, freq) varint postings, appended incrementally.
    std::string encoded;
    uint32_t doc_freq = 0;
    EntryId last_doc = 0;
    // Largest term frequency across the whole list.
    uint32_t max_freq = 0;
    // Closed blocks, each exactly kPostingsBlockSize postings.
    std::vector<BlockInfo> blocks;
    // Trailing partial block: posting count, its max freq, and the
    // byte offset where it starts.
    uint32_t open_count = 0;
    uint32_t open_max_freq = 0;
    uint32_t open_offset = 0;
  };

 public:
  /// Skip-aware read cursor over one term's postings. Supports the
  /// two-phase access pattern of block-max top-k pruning: ShallowSeek
  /// advances over whole blocks consulting only skip metadata (last doc
  /// id, max freq — no decoding), Seek then decodes just the block the
  /// caller decided to look into. Decoded postings are charged to the
  /// index's postings-decoded counter exactly once per decoded block.
  /// Reading positions only; never mutates the index. Invalidated by
  /// AddDocument (same contract as any reference into the index).
  class Cursor {
   public:
    /// Empty cursor (no postings).
    Cursor() = default;

    /// True when there are no (more) postings to read.
    bool empty() const { return entry_ == nullptr || entry_->doc_freq == 0; }

    /// Document frequency of the term (postings in the list).
    uint32_t doc_freq() const { return entry_ == nullptr ? 0 : entry_->doc_freq; }

    /// Largest term frequency across the whole list.
    uint32_t max_freq() const { return entry_ == nullptr ? 0 : entry_->max_freq; }

    /// Number of blocks (closed + the trailing partial one).
    size_t block_count() const;

    /// Last doc id of block `b`.
    EntryId block_last_doc(size_t b) const;

    /// Max term frequency within block `b`.
    uint32_t block_max_freq(size_t b) const;

    /// Advances the block position (without decoding) to the first
    /// block whose last doc id >= target. Returns false when every
    /// remaining doc id is < target (list exhausted).
    bool ShallowSeek(EntryId target);

    /// Last doc id of the current block (after a true ShallowSeek).
    EntryId current_block_last_doc() const { return block_last_doc(block_); }

    /// Max term frequency of the current block.
    uint32_t current_block_max_freq() const { return block_max_freq(block_); }

    /// Decodes the current block if needed and positions on the first
    /// posting with doc id >= target. Requires a preceding
    /// ShallowSeek(target) that returned true (which guarantees such a
    /// posting exists in the current block).
    void Seek(EntryId target);

    /// Doc id at the current position (after Seek).
    EntryId doc() const { return buf_[pos_].doc; }

    /// Term frequency at the current position (after Seek).
    uint32_t freq() const { return buf_[pos_].freq; }

    /// Postings decoded through this cursor so far.
    uint64_t decoded_postings() const { return decoded_postings_; }

   private:
    friend class InvertedIndex;
    Cursor(const TermEntry* entry, obs::Counter* counter)
        : entry_(entry), counter_(counter) {}

    // Decodes block `block_` into buf_ (no-op if already decoded).
    void DecodeCurrentBlock();

    const TermEntry* entry_ = nullptr;
    obs::Counter* counter_ = nullptr;
    size_t block_ = 0;
    bool decoded_ = false;
    std::vector<Posting> buf_;
    size_t pos_ = 0;
    uint64_t decoded_postings_ = 0;
  };

  /// Opens a skip-aware cursor over `term`'s postings (empty() cursor
  /// for unknown terms).
  Cursor OpenCursor(std::string_view term) const;

 private:
  std::unordered_map<std::string, TermEntry> terms_;
  std::unordered_map<EntryId, uint32_t> doc_lengths_;
  size_t doc_count_ = 0;
  uint64_t total_tokens_ = 0;
  EntryId max_doc_ = 0;
  uint32_t min_doc_tokens_ = UINT32_MAX;
  bool any_doc_ = false;
  obs::Counter* postings_decoded_ = nullptr;
};

}  // namespace authidx

#endif  // AUTHIDX_INDEX_INVERTED_H_
