#include "authidx/parse/bibtex.h"

#include <cctype>

#include "authidx/common/strings.h"
#include "authidx/parse/name.h"

namespace authidx {
namespace {

// Simple cursor over the document with line tracking for errors.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Take() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Take();
      } else if (c == '%') {
        while (!AtEnd() && Peek() != '\n') {
          Take();
        }
      } else {
        return;
      }
    }
  }

  size_t line() const { return line_; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("bibtex line %zu: %s", line_, what.c_str()));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == ':' || c == '.' || c == '+' || c == '/';
}

std::string TakeName(Cursor* cur) {
  std::string out;
  while (!cur->AtEnd() && IsNameChar(cur->Peek())) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(cur->Take()))));
  }
  return out;
}

// Reads a `{...}` balanced value (outer braces consumed, inner kept),
// a `"..."` value, or a bare number/word.
Result<std::string> TakeValue(Cursor* cur) {
  cur->SkipWhitespaceAndComments();
  if (cur->AtEnd()) {
    return cur->Error("expected value");
  }
  char c = cur->Peek();
  std::string out;
  if (c == '{') {
    cur->Take();
    int depth = 1;
    while (!cur->AtEnd()) {
      char b = cur->Take();
      if (b == '{') {
        ++depth;
      } else if (b == '}') {
        if (--depth == 0) {
          return out;
        }
      }
      out.push_back(b);
    }
    return cur->Error("unterminated braced value");
  }
  if (c == '"') {
    cur->Take();
    int depth = 0;
    while (!cur->AtEnd()) {
      char b = cur->Take();
      if (b == '{') {
        ++depth;
      } else if (b == '}') {
        --depth;
      } else if (b == '"' && depth == 0) {
        return out;
      }
      out.push_back(b);
    }
    return cur->Error("unterminated quoted value");
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    while (!cur->AtEnd() &&
           std::isdigit(static_cast<unsigned char>(cur->Peek()))) {
      out.push_back(cur->Take());
    }
    return out;
  }
  if (std::isalpha(static_cast<unsigned char>(c))) {
    // Bare identifier: would be an @string macro, which we don't expand.
    return Status::NotSupported("bibtex @string macros are not supported");
  }
  return cur->Error(std::string("unexpected character '") + c +
                    "' in value");
}

// Strips braces, collapses whitespace, drops TeX non-breaking space '~'.
std::string CleanValue(std::string_view raw) {
  std::string out;
  bool pending_space = false;
  for (char c : raw) {
    if (c == '{' || c == '}') {
      continue;
    }
    if (c == '~') {
      c = ' ';
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

// Splits an author field on the word "and" at brace depth 0.
std::vector<std::string> SplitAuthors(std::string_view field) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  size_t i = 0;
  while (i < field.size()) {
    if (field[i] == '{') {
      ++depth;
    } else if (field[i] == '}') {
      --depth;
    }
    if (depth == 0 && (i == 0 || std::isspace(static_cast<unsigned char>(
                                     field[i - 1]))) &&
        field.compare(i, 3, "and") == 0 &&
        (i + 3 == field.size() ||
         std::isspace(static_cast<unsigned char>(field[i + 3])))) {
      out.push_back(current);
      current.clear();
      i += 3;
      continue;
    }
    current.push_back(field[i]);
    ++i;
  }
  out.push_back(current);
  for (std::string& name : out) {
    name = CleanValue(name);
  }
  std::erase_if(out, [](const std::string& s) { return s.empty(); });
  return out;
}

// "Given M. Surname" or "Surname, Given M." -> AuthorName.
Result<AuthorName> ParseBibAuthor(const std::string& text) {
  if (text.find(',') != std::string::npos) {
    return ParseAuthorName(text);
  }
  size_t last_space = text.rfind(' ');
  AuthorName name;
  if (last_space == std::string::npos) {
    name.surname = text;
  } else {
    name.surname = text.substr(last_space + 1);
    name.given = text.substr(0, last_space);
  }
  if (name.surname.empty()) {
    return Status::InvalidArgument("empty author name in bibtex");
  }
  return name;
}

}  // namespace

std::string_view BibTexEntry::Field(std::string_view name) const {
  for (const auto& [field_name, value] : fields) {
    if (field_name == name) {
      return value;
    }
  }
  return {};
}

Result<std::vector<BibTexEntry>> ParseBibTex(std::string_view text) {
  Cursor cur(text);
  std::vector<BibTexEntry> entries;
  while (true) {
    // Free text between entries is ignored (standard BibTeX behavior).
    while (!cur.AtEnd() && cur.Peek() != '@') {
      cur.Take();
    }
    if (cur.AtEnd()) {
      return entries;
    }
    cur.Take();  // '@'
    BibTexEntry entry;
    entry.type = TakeName(&cur);
    if (entry.type.empty()) {
      return cur.Error("missing entry type after '@'");
    }
    if (entry.type == "comment" || entry.type == "preamble") {
      // Skip a balanced { ... } group.
      cur.SkipWhitespaceAndComments();
      if (!cur.AtEnd() && cur.Peek() == '{') {
        AUTHIDX_RETURN_NOT_OK(TakeValue(&cur).status());
      }
      continue;
    }
    cur.SkipWhitespaceAndComments();
    if (cur.AtEnd() || cur.Peek() != '{') {
      return cur.Error("expected '{' after entry type");
    }
    cur.Take();
    cur.SkipWhitespaceAndComments();
    entry.key = TakeName(&cur);
    cur.SkipWhitespaceAndComments();
    // Field list.
    while (true) {
      cur.SkipWhitespaceAndComments();
      if (cur.AtEnd()) {
        return cur.Error("unterminated entry");
      }
      if (cur.Peek() == '}') {
        cur.Take();
        break;
      }
      if (cur.Peek() == ',') {
        cur.Take();
        continue;
      }
      std::string field_name = TakeName(&cur);
      if (field_name.empty()) {
        return cur.Error("expected field name");
      }
      cur.SkipWhitespaceAndComments();
      if (cur.AtEnd() || cur.Peek() != '=') {
        return cur.Error("expected '=' after field '" + field_name + "'");
      }
      cur.Take();
      AUTHIDX_ASSIGN_OR_RETURN(std::string value, TakeValue(&cur));
      entry.fields.emplace_back(std::move(field_name), std::move(value));
    }
    entries.push_back(std::move(entry));
  }
}

Result<std::vector<Entry>> BibTexToEntries(
    const std::vector<BibTexEntry>& bib_entries) {
  std::vector<Entry> out;
  for (const BibTexEntry& bib : bib_entries) {
    std::string_view author_field = bib.Field("author");
    std::string_view title = bib.Field("title");
    std::string_view year = bib.Field("year");
    if (author_field.empty() || title.empty() || year.empty()) {
      return Status::InvalidArgument(
          "bibtex entry '" + bib.key +
          "' is missing author, title, or year");
    }
    std::vector<std::string> authors = SplitAuthors(author_field);
    if (authors.empty()) {
      return Status::InvalidArgument("bibtex entry '" + bib.key +
                                     "' has no parsable authors");
    }
    std::vector<AuthorName> parsed;
    for (const std::string& a : authors) {
      AUTHIDX_ASSIGN_OR_RETURN(AuthorName name, ParseBibAuthor(a));
      parsed.push_back(std::move(name));
    }
    Entry base;
    base.title = CleanValue(title);
    AUTHIDX_ASSIGN_OR_RETURN(uint64_t year_num,
                             ParseUint64(StripAsciiWhitespace(year)));
    base.citation.year = static_cast<uint32_t>(year_num);
    std::string_view volume = bib.Field("volume");
    base.citation.volume = 1;
    if (!volume.empty()) {
      Result<uint64_t> v = ParseUint64(StripAsciiWhitespace(volume));
      if (v.ok()) {
        base.citation.volume = static_cast<uint32_t>(*v);
      }
    }
    base.citation.page = 1;
    std::string_view pages = bib.Field("pages");
    if (!pages.empty()) {
      // "123--456" or "123-456" or "123": first page number.
      size_t dash = pages.find('-');
      Result<uint64_t> p = ParseUint64(
          StripAsciiWhitespace(pages.substr(0, dash)));
      if (p.ok() && *p > 0) {
        base.citation.page = static_cast<uint32_t>(*p);
      }
    }
    // One Entry per author, others as coauthors (printed-index form).
    for (size_t i = 0; i < parsed.size(); ++i) {
      Entry entry = base;
      entry.author = parsed[i];
      for (size_t j = 0; j < parsed.size(); ++j) {
        if (j != i) {
          entry.coauthors.push_back(parsed[j].ToIndexForm());
        }
      }
      AUTHIDX_RETURN_NOT_OK(
          ValidateEntry(entry).WithContext("bibtex entry '" + bib.key + "'"));
      out.push_back(std::move(entry));
    }
  }
  return out;
}

Result<std::vector<Entry>> ParseBibTexToEntries(std::string_view text) {
  AUTHIDX_ASSIGN_OR_RETURN(std::vector<BibTexEntry> raw, ParseBibTex(text));
  return BibTexToEntries(raw);
}

}  // namespace authidx
