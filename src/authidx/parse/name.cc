#include "authidx/parse/name.h"

#include "authidx/common/strings.h"

namespace authidx {
namespace {

// True if `piece` (already stripped) is a generational suffix.
bool IsSuffix(std::string_view piece) {
  std::string p;
  for (char c : piece) {
    if (c != '.') {
      p.push_back(static_cast<char>(
          c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    }
  }
  return p == "jr" || p == "sr" || p == "ii" || p == "iii" || p == "iv" ||
         p == "v";
}

}  // namespace

Result<AuthorName> ParseAuthorName(std::string_view text) {
  std::string_view s = StripAsciiWhitespace(text);
  AuthorName name;
  if (!s.empty() && s.back() == '*') {
    name.student_material = true;
    s.remove_suffix(1);
    s = StripAsciiWhitespace(s);
  }
  if (s.empty()) {
    return Status::InvalidArgument("empty author name");
  }
  std::vector<std::string_view> pieces = SplitString(s, ',');
  for (auto& piece : pieces) {
    piece = StripAsciiWhitespace(piece);
  }
  if (pieces[0].empty()) {
    return Status::InvalidArgument("author name has empty surname: " +
                                   std::string(text));
  }
  name.surname = pieces[0];
  // The remaining comma-separated pieces are given names and, possibly,
  // one generational suffix in the final position.
  size_t end = pieces.size();
  if (end >= 2 && IsSuffix(pieces[end - 1])) {
    name.suffix = pieces[end - 1];
    --end;
  }
  std::vector<std::string> given_parts;
  for (size_t i = 1; i < end; ++i) {
    if (!pieces[i].empty()) {
      given_parts.emplace_back(pieces[i]);
    }
  }
  name.given = JoinStrings(given_parts, ", ");
  return name;
}

}  // namespace authidx
