#include "authidx/parse/tsv.h"

#include "authidx/common/strings.h"
#include "authidx/parse/citation.h"
#include "authidx/parse/name.h"

namespace authidx {

std::string EntryToTsvLine(const Entry& entry) {
  std::string out = entry.author.ToIndexForm();
  out += '\t';
  out += entry.title;
  out += '\t';
  out += entry.citation.ToString();
  if (!entry.coauthors.empty()) {
    out += '\t';
    out += JoinStrings(entry.coauthors, ";");
  }
  return out;
}

Result<Entry> ParseTsvLine(std::string_view line) {
  std::vector<std::string_view> fields = SplitString(line, '\t');
  if (fields.size() < 3 || fields.size() > 4) {
    return Status::InvalidArgument(
        StringPrintf("expected 3 or 4 tab-separated fields, got %zu",
                     fields.size()));
  }
  Entry entry;
  AUTHIDX_ASSIGN_OR_RETURN(entry.author, ParseAuthorName(fields[0]));
  entry.title = StripAsciiWhitespace(fields[1]);
  AUTHIDX_ASSIGN_OR_RETURN(entry.citation, ParseCitation(fields[2]));
  if (fields.size() == 4) {
    for (std::string_view coauthor : SplitString(fields[3], ';')) {
      coauthor = StripAsciiWhitespace(coauthor);
      if (!coauthor.empty()) {
        entry.coauthors.emplace_back(coauthor);
      }
    }
  }
  AUTHIDX_RETURN_NOT_OK(ValidateEntry(entry));
  return entry;
}

Result<std::vector<Entry>> ParseTsv(std::string_view text) {
  std::vector<Entry> entries;
  size_t line_number = 0;
  for (std::string_view line : SplitString(text, '\n')) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    Result<Entry> entry = ParseTsvLine(line);
    if (!entry.ok()) {
      return entry.status().WithContext(
          StringPrintf("line %zu", line_number));
    }
    entries.push_back(std::move(entry).value());
  }
  return entries;
}

std::string EntriesToTsv(const std::vector<Entry>& entries) {
  std::string out;
  for (const Entry& entry : entries) {
    out += EntryToTsvLine(entry);
    out += '\n';
  }
  return out;
}

}  // namespace authidx
