#include "authidx/parse/citation.h"

#include "authidx/common/strings.h"

namespace authidx {
namespace {

// Consumes a decimal run from the front of *s into *value.
Status TakeNumber(std::string_view* s, uint32_t* value) {
  size_t len = 0;
  while (len < s->size() && (*s)[len] >= '0' && (*s)[len] <= '9') {
    ++len;
  }
  if (len == 0) {
    return Status::InvalidArgument("expected number in citation");
  }
  AUTHIDX_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(s->substr(0, len)));
  if (v > UINT32_MAX) {
    return Status::OutOfRange("citation number too large");
  }
  *value = static_cast<uint32_t>(v);
  s->remove_prefix(len);
  return Status::OK();
}

void SkipSpaces(std::string_view* s) {
  while (!s->empty() && (s->front() == ' ' || s->front() == '\t')) {
    s->remove_prefix(1);
  }
}

}  // namespace

Result<Citation> ParseCitation(std::string_view text) {
  std::string_view s = StripAsciiWhitespace(text);
  Citation c;
  AUTHIDX_RETURN_NOT_OK(TakeNumber(&s, &c.volume));
  if (s.empty() || s.front() != ':') {
    return Status::InvalidArgument("expected ':' in citation: " +
                                   std::string(text));
  }
  s.remove_prefix(1);
  AUTHIDX_RETURN_NOT_OK(TakeNumber(&s, &c.page));
  SkipSpaces(&s);
  if (s.empty() || s.front() != '(') {
    return Status::InvalidArgument("expected '(' in citation: " +
                                   std::string(text));
  }
  s.remove_prefix(1);
  SkipSpaces(&s);
  AUTHIDX_RETURN_NOT_OK(TakeNumber(&s, &c.year));
  SkipSpaces(&s);
  if (s.empty() || s.front() != ')') {
    return Status::InvalidArgument("expected ')' in citation: " +
                                   std::string(text));
  }
  s.remove_prefix(1);
  if (!StripAsciiWhitespace(s).empty()) {
    return Status::InvalidArgument("trailing text after citation: " +
                                   std::string(text));
  }
  return c;
}

}  // namespace authidx
